//! Plan-cache and session-reuse integration tests for the compile-once
//! execution API (`compile` → `CompiledProgram` → `Session`).
//!
//! Pinned properties:
//!
//! * hit/miss accounting: structurally identical (SDFG, symbols) pairs share
//!   one lowered plan; different symbols or different programs miss;
//! * repeated `GradientEngine::run` calls and a whole finite-difference
//!   validation sweep perform **exactly one** gradient lowering and one
//!   forward lowering (asserted via the cache counters);
//! * cold and cached runs produce bit-identical outputs, gradients and
//!   memory instrumentation;
//! * a session stays correct after a failed run: the reused slab is reset,
//!   and the next run matches a fresh session bit for bit.

use std::collections::HashMap;

use dace_ad_repro::ad::engine::finite_difference_gradient;
use dace_ad_repro::frontend::lit;
use dace_ad_repro::prelude::*;
use dace_ad_repro::sdfg::{CmpOp, CondExpr, CondOperand};

fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// `OUT = sum(sin(X) * 2)` — a small differentiable program.  The `name`
/// parameter keeps fingerprints distinct across tests sharing the process.
fn small_program(name: &str) -> Sdfg {
    let mut b = ProgramBuilder::new(name);
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_transient("T", vec![n.clone()]).unwrap();
    b.add_scalar("OUT").unwrap();
    b.assign("T", ArrayExpr::a("X").sin().mul(ArrayExpr::s(2.0)));
    b.sum_into("OUT", "T", false);
    b.build().unwrap()
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn compile_hits_cache_for_identical_programs() {
    let sdfg = small_program("cache_hit_prog");
    let syms = symbols(&[("N", 5)]);

    let p1 = compile(&sdfg, &syms).unwrap();
    assert!(!p1.cache_hit(), "first compile must lower");
    assert_eq!(p1.cache_stats().misses, 1);
    assert_eq!(p1.cache_stats().hits, 0);

    // Same SDFG value: hit.
    let p2 = compile(&sdfg, &syms).unwrap();
    assert!(p2.cache_hit());
    // A structurally identical SDFG built from scratch: also a hit.
    let p3 = compile(&small_program("cache_hit_prog"), &syms).unwrap();
    assert!(p3.cache_hit());
    assert_eq!(p3.fingerprint(), p1.fingerprint());
    assert_eq!(p3.cache_stats().misses, 1, "still exactly one lowering");
    assert_eq!(p3.cache_stats().hits, 2);

    // Different symbol values specialise differently: miss.
    let p4 = compile(&sdfg, &symbols(&[("N", 6)])).unwrap();
    assert!(!p4.cache_hit());
    assert_eq!(p4.fingerprint(), p1.fingerprint());

    // A different program: miss under a different fingerprint.
    let p5 = compile(&small_program("cache_hit_prog_b"), &syms).unwrap();
    assert!(!p5.cache_hit());
    assert_ne!(p5.fingerprint(), p1.fingerprint());

    // Global counters are monotone and visible.
    let totals = dace_ad_repro::runtime::plan_cache_stats();
    assert!(totals.misses >= 3);
    assert!(totals.hits >= 2);
}

#[test]
fn gradient_engine_lowers_once_across_runs() {
    let fwd = small_program("engine_reuse_prog");
    let syms = symbols(&[("N", 8)]);
    let mut inputs = HashMap::new();
    inputs.insert(
        "X".to_string(),
        dace_ad_repro::tensor::random::uniform(&[8], 17),
    );

    let mut engine =
        GradientEngine::new(&fwd, "OUT", &["X"], &syms, &AdOptions::default()).unwrap();
    let first = engine.run(&inputs).unwrap();
    let second = engine.run(&inputs).unwrap();
    let third = engine.run(&inputs).unwrap();

    // Exactly one gradient lowering across all runs, visible both on the
    // per-run reports and on the program handle.
    assert_eq!(first.report.plan_cache_misses, 1);
    assert_eq!(third.report.plan_cache_misses, 1);
    assert_eq!(engine.gradient_program().cache_stats().misses, 1);

    // Cold and cached runs are bit-identical, including instrumentation.
    for r in [&second, &third] {
        assert_eq!(first.output_value.to_bits(), r.output_value.to_bits());
        assert_eq!(bits(&first.gradients["X"]), bits(&r.gradients["X"]));
        assert_eq!(first.report.peak_bytes, r.report.peak_bytes);
        assert_eq!(
            first.report.tasklet_invocations,
            r.report.tasklet_invocations
        );
    }

    // A second engine over the same forward program reuses the cached
    // gradient plan (backward generation is deterministic).
    let mut engine2 =
        GradientEngine::new(&fwd, "OUT", &["X"], &syms, &AdOptions::default()).unwrap();
    assert!(
        engine2.gradient_program().cache_hit(),
        "second engine must reuse the cached gradient plan"
    );
    let cached = engine2.run(&inputs).unwrap();
    assert_eq!(first.output_value.to_bits(), cached.output_value.to_bits());
    assert_eq!(bits(&first.gradients["X"]), bits(&cached.gradients["X"]));
}

#[test]
fn fd_validation_lowers_forward_once() {
    let fwd = small_program("fd_once_prog");
    let syms = symbols(&[("N", 6)]);
    let mut inputs = HashMap::new();
    inputs.insert(
        "X".to_string(),
        dace_ad_repro::tensor::random::uniform(&[6], 23),
    );

    // Free-function sweep: 2 × 6 forward evaluations, one lowering.  The
    // follow-up `compile` of the same pair must therefore be a hit whose
    // entry records exactly one miss.
    let fd = finite_difference_gradient(&fwd, "OUT", "X", &syms, &inputs, 1e-6).unwrap();
    let probe = compile(&fwd, &syms).unwrap();
    assert!(probe.cache_hit());
    assert_eq!(
        probe.cache_stats().misses,
        1,
        "the FD sweep must lower the forward SDFG exactly once"
    );

    // Engine-cached sweep agrees with the free function and with AD.
    let mut engine =
        GradientEngine::new(&fwd, "OUT", &["X"], &syms, &AdOptions::default()).unwrap();
    let engine_fd = engine.finite_difference("X", &inputs, 1e-6).unwrap();
    assert!(allclose(&fd, &engine_fd, 1e-10, 1e-12));
    assert_eq!(engine.forward_program().unwrap().cache_stats().misses, 1);
    let ad = engine.run(&inputs).unwrap();
    assert!(allclose(&ad.gradients["X"], &fd, 1e-4, 1e-7));
}

#[test]
fn session_recovers_after_failed_run() {
    // if P[0] > 0 { T = 3*X; T[99] = 1 (out of bounds) } else { T = 2*X };
    // OUT = sum(T).  The failing arm dirties T before erroring, so the next
    // run exercises the in-place slab reset.
    let build = || {
        let mut b = ProgramBuilder::new("failing_prog");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("P", vec![SymExpr::int(1)]).unwrap();
        b.add_transient("T", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.branch(
            CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            |b| {
                b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::s(3.0)));
                b.assign_element("T", vec![SymExpr::int(99)], lit(1.0));
            },
            Some(Box::new(|b: &mut ProgramBuilder| {
                b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)))
            })),
        );
        b.sum_into("OUT", "T", false);
        b.build().unwrap()
    };
    let sdfg = build();
    let syms = symbols(&[("N", 4)]);
    let x = dace_ad_repro::tensor::random::uniform(&[4], 31);

    let program = compile(&sdfg, &syms).unwrap();
    let mut session = program.session();
    session.set_input("X", x.clone()).unwrap();
    session
        .set_input("P", Tensor::from_vec(vec![1.0], &[1]).unwrap())
        .unwrap();
    assert!(session.run().is_err(), "the failing arm must error");

    // Same session, healthy arm: the reused slab must behave like new.
    session
        .set_input("P", Tensor::from_vec(vec![-1.0], &[1]).unwrap())
        .unwrap();
    let recovered = session.run().unwrap();
    let recovered_out = session.array("OUT").unwrap().data()[0];

    let mut fresh = program.session();
    fresh.set_input("X", x).unwrap();
    fresh
        .set_input("P", Tensor::from_vec(vec![-1.0], &[1]).unwrap())
        .unwrap();
    let fresh_report = fresh.run().unwrap();
    let fresh_out = fresh.array("OUT").unwrap().data()[0];

    assert_eq!(
        recovered_out.to_bits(),
        fresh_out.to_bits(),
        "post-failure run must match a fresh session bit for bit"
    );
    assert_eq!(
        bits(session.array("T").unwrap()),
        bits(fresh.array("T").unwrap())
    );
    assert_eq!(recovered.peak_bytes, fresh_report.peak_bytes);

    // And repeated successful runs stay stable.
    let again = session.run().unwrap();
    assert_eq!(again.peak_bytes, fresh_report.peak_bytes);
    assert_eq!(
        session.array("OUT").unwrap().data()[0].to_bits(),
        fresh_out.to_bits()
    );
}

#[test]
fn clear_bindings_resets_inputs_between_runs() {
    let sdfg = small_program("rebind_prog");
    let syms = symbols(&[("N", 4)]);
    let mut session = compile(&sdfg, &syms).unwrap().session();
    session.set_input("X", Tensor::full(&[4], 0.5)).unwrap();
    session.run().unwrap();
    let with_input = session.array("OUT").unwrap().data()[0];
    assert!(with_input != 0.0);

    // After clearing, the stale X tensor is zeroed in place, so OUT becomes
    // sum(sin(0) * 2) = 0 — the same as a fresh session with no inputs.
    session.clear_bindings();
    session.run().unwrap();
    assert_eq!(session.array("OUT").unwrap().data()[0], 0.0);
}
