//! Batched concurrent execution: determinism, session-pool reuse, panic
//! isolation and edge cases of `BatchDriver` / `GradientEngine::run_batch`.

use std::collections::HashMap;

use dace_ad_repro::prelude::*;
use dace_tensor::Tensor;
use npbench::runner::batch_inputs;
use npbench::Preset;

fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// `Y = sin(X) * X + 2`, N = 32: element-wise, distinct per input.
fn elementwise_program() -> (dace_sdfg::Sdfg, HashMap<String, i64>) {
    let mut b = ProgramBuilder::new("serve");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    b.assign(
        "Y",
        ArrayExpr::a("X")
            .sin()
            .mul(ArrayExpr::a("X"))
            .add(ArrayExpr::s(2.0)),
    );
    (b.build().unwrap(), symbols(&[("N", 32)]))
}

fn item(i: usize) -> HashMap<String, Tensor> {
    let data: Vec<f64> = (0..32).map(|j| (i * 31 + j) as f64 * 0.125 - 1.5).collect();
    HashMap::from([("X".to_string(), Tensor::from_vec(data, &[32]).unwrap())])
}

/// Batched results are bit-identical to serial per-item runs on fresh
/// sessions, independent of batch size and worker cap.
#[test]
fn batched_results_bit_identical_to_serial() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();

    // Serial reference: one session, rebound per item.
    let mut serial = Vec::new();
    let mut session = program.session();
    for i in 0..8 {
        session.clear_bindings();
        for (k, v) in item(i) {
            session.set_input(&k, v).unwrap();
        }
        session.run().unwrap();
        serial.push(session.array("Y").unwrap().clone());
    }

    for workers in [1, 3, 8] {
        let driver = BatchDriver::new(program.clone()).with_workers(workers);
        let items: Vec<_> = (0..8).map(item).collect();
        let out = driver.run_batch(&items, &["Y"]);
        assert_eq!(out.report.items, 8);
        assert_eq!(out.report.succeeded, 8);
        for (i, result) in out.items.iter().enumerate() {
            let batched = &result.as_ref().unwrap().outputs["Y"];
            assert_eq!(batched.shape(), serial[i].shape());
            for (a, b) in batched.data().iter().zip(serial[i].data()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "item {i} diverged (workers={workers})"
                );
            }
        }
    }
}

/// Engine-level batched gradients are bit-identical to looping
/// `GradientEngine::run` over the same input sets.
#[test]
fn batched_gradients_match_serial_engine_runs() {
    let kernel = npbench::kernel_by_name("atax").unwrap();
    let sizes = kernel.sizes(Preset::Test);
    let items = batch_inputs(kernel.as_ref(), &sizes, 6);
    let sdfg = kernel.build_dace(&sizes);
    let syms = kernel.symbols(&sizes);
    let wrt = kernel.wrt();

    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &syms, &AdOptions::default()).unwrap();
    engine.set_batch_workers(2);
    let serial: Vec<_> = items.iter().map(|i| engine.run(i).unwrap()).collect();
    let batched = engine.run_batch(&items).unwrap();

    assert_eq!(batched.items.len(), serial.len());
    assert_eq!(batched.batch.succeeded, serial.len());
    assert!(
        batched.batch.workers <= 2,
        "engine-level worker cap applies"
    );
    for (s, b) in serial.iter().zip(&batched.items) {
        assert_eq!(s.output_value.to_bits(), b.output_value.to_bits());
        assert_eq!(s.gradients.len(), b.gradients.len());
        for (name, sg) in &s.gradients {
            let bg = &b.gradients[name];
            for (x, y) in sg.data().iter().zip(bg.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "gradient of {name} diverged");
            }
        }
    }
    // The whole batch (and the serial loop before it) shares one lowering.
    assert_eq!(batched.batch.plan_cache.misses, 1);
}

/// After warmup the pool serves batches without creating sessions or
/// missing the plan cache.
#[test]
fn session_pool_reuses_after_warmup() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let driver = BatchDriver::new(program).with_workers(2);
    let items: Vec<_> = (0..6).map(item).collect();

    let first = driver.run_batch(&items, &["Y"]);
    assert_eq!(first.report.succeeded, 6);
    let created_after_warmup = driver.sessions_created();
    assert!(
        (1..=6).contains(&created_after_warmup),
        "pool should create at most one session per in-flight item, created {created_after_warmup}"
    );

    for _ in 0..3 {
        let next = driver.run_batch(&items, &["Y"]);
        assert_eq!(next.report.succeeded, 6);
        assert_eq!(
            driver.sessions_created(),
            created_after_warmup,
            "warm batches must not create sessions"
        );
        // Compiling happened exactly once for this (SDFG, symbols) pair —
        // serving any number of batches adds no plan-cache traffic.
        assert_eq!(next.report.plan_cache.misses, 1);
    }
    assert!(driver.sessions_reused() > 0);
    assert_eq!(driver.pooled_sessions() as u64, created_after_warmup);
}

/// `warm` pre-creates sessions so the first batch checks out warm ones.
#[test]
fn warm_prefills_the_pool() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let driver = BatchDriver::new(program).with_workers(2);
    driver.warm(3);
    assert_eq!(driver.pooled_sessions(), 3);
    assert_eq!(driver.sessions_created(), 3);
    // Warming to a smaller target is a no-op.
    driver.warm(2);
    assert_eq!(driver.pooled_sessions(), 3);

    let items: Vec<_> = (0..3).map(item).collect();
    let out = driver.run_batch(&items, &["Y"]);
    assert_eq!(out.report.succeeded, 3);
    assert_eq!(
        driver.sessions_created(),
        3,
        "warm sessions served the batch"
    );
    assert!(driver.sessions_reused() >= 1);
}

/// A panicking item is reported for that item only: its session is
/// discarded, every other item completes, and the driver keeps serving.
#[test]
fn panic_in_one_item_does_not_poison_the_pool() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let driver = BatchDriver::new(program).with_workers(2);
    let items: Vec<_> = (0..5).map(item).collect();

    let out = driver.run_batch_with(5, |i, session| -> Result<f64, String> {
        if i == 3 {
            panic!("boom in item 3");
        }
        session.clear_bindings();
        for (k, v) in &items[i] {
            session.set_input(k, v.clone()).map_err(|e| e.to_string())?;
        }
        session.run().map_err(|e| e.to_string())?;
        Ok(session.array("Y").unwrap().data()[0])
    });
    assert_eq!(out.report.items, 5);
    assert_eq!(out.report.succeeded, 4);
    assert_eq!(out.report.failed, 1);
    match &out.items[3] {
        Err(BatchError::Panicked(msg)) => assert!(msg.contains("boom in item 3")),
        other => panic!("expected a panic report, got {other:?}"),
    }
    for (i, result) in out.items.iter().enumerate() {
        if i != 3 {
            assert!(result.is_ok(), "item {i} should be unaffected");
        }
    }

    // The pool survives: a follow-up batch succeeds for every item.
    let next = driver.run_batch(&items, &["Y"]);
    assert_eq!(next.report.succeeded, 5);
    assert_eq!(next.report.failed, 0);
}

/// Engine-level panic surface: `EngineError::BatchItemPanicked` names the
/// item, and the engine (with its pooled driver) keeps serving.
#[test]
fn engine_reports_panicked_item_and_survives() {
    let kernel = npbench::kernel_by_name("atax").unwrap();
    let sizes = kernel.sizes(Preset::Test);
    let items = batch_inputs(kernel.as_ref(), &sizes, 3);
    let sdfg = kernel.build_dace(&sizes);
    let syms = kernel.symbols(&sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &syms, &AdOptions::default()).unwrap();

    // An unknown input name fails only its own item; the engine returns the
    // first item error (typed, not a panic).
    let mut bad = items.clone();
    bad[1].insert("NOPE".to_string(), Tensor::zeros(&[2]));
    match engine.run_batch(&bad) {
        Err(EngineError::UnknownInput(name)) => assert_eq!(name, "NOPE"),
        other => panic!("expected UnknownInput, got {other:?}"),
    }
    // The pooled driver still serves clean batches afterwards.
    let ok = engine.run_batch(&items).unwrap();
    assert_eq!(ok.batch.succeeded, 3);
}

/// One item failing with a runtime error leaves the rest of the batch
/// intact and recycles its session.
#[test]
fn item_errors_are_isolated() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let driver = BatchDriver::new(program).with_workers(2);
    let mut items: Vec<_> = (0..4).map(item).collect();
    // Wrong shape for item 2.
    items[2].insert("X".to_string(), Tensor::zeros(&[7]));

    let out = driver.run_batch(&items, &["Y"]);
    assert_eq!(out.report.succeeded, 3);
    assert_eq!(out.report.failed, 1);
    assert!(matches!(&out.items[2], Err(BatchError::Item(_))));
    let created = driver.sessions_created();

    // The erroring item's session went back to the pool: serving again
    // creates nothing new.
    items[2] = item(2);
    let next = driver.run_batch(&items, &["Y"]);
    assert_eq!(next.report.succeeded, 4);
    assert_eq!(driver.sessions_created(), created);

    // An item that fails *before* running, on a warm session that served a
    // previous tenant, must contribute nothing to the batch totals.
    let per_item = next.report.total_tasklet_invocations / 4;
    assert!(per_item > 0);
    items[2].insert("X".to_string(), Tensor::zeros(&[7]));
    let third = driver.run_batch(&items, &["Y"]);
    assert_eq!(third.report.succeeded, 3);
    assert_eq!(
        third.report.total_tasklet_invocations,
        3 * per_item,
        "a failed-before-run item must not leak its session's previous run into the totals"
    );
}

/// Free-hint changes reach sessions already parked in the idle pool: the
/// pool is warmed *without* hints, hints are set afterwards, and the very
/// next batch must honour them on the reused sessions (regression test —
/// `set_free_hints` used to affect only sessions created after the call,
/// so warm pools silently kept stale hints).
#[test]
fn warm_pool_sessions_pick_up_free_hint_changes() {
    // X -> T (transient, state 0) -> Y (state 1); hint frees T after
    // state 1, which is visible as a drop in `final_bytes`.
    let mut b = ProgramBuilder::new("hint_refresh");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_transient("T", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
    b.assign("Y", ArrayExpr::a("T").mul(ArrayExpr::s(2.0)));
    let sdfg = b.build().unwrap();
    let syms = symbols(&[("N", 16)]);
    let program = compile(&sdfg, &syms).unwrap();
    let inputs = |i: usize| {
        HashMap::from([(
            "X".to_string(),
            Tensor::from_vec(vec![i as f64 + 1.0; 16], &[16]).unwrap(),
        )])
    };
    let items: Vec<_> = (0..4).map(inputs).collect();

    let mut driver = BatchDriver::new(program).with_workers(2);
    // Warm the pool with hint-less sessions: T survives every run.
    let cold = driver.run_batch(&items, &["Y"]);
    assert_eq!(cold.report.succeeded, 4);
    let created = driver.sessions_created();
    let unhinted_final = cold.items[0].as_ref().unwrap().report.final_bytes;

    // Change the hints under a warm pool…
    let hints = HashMap::from([(1usize, vec!["T".to_string()])]);
    driver.set_free_hints(&hints);

    // …and the next batch must honour them on the *reused* sessions.
    let warm = driver.run_batch(&items, &["Y"]);
    assert_eq!(warm.report.succeeded, 4);
    assert_eq!(
        driver.sessions_created(),
        created,
        "the batch must reuse the warm pool, not hide the bug behind fresh sessions"
    );
    for (i, item) in warm.items.iter().enumerate() {
        let item = item.as_ref().unwrap();
        assert!(
            item.report.final_bytes < unhinted_final,
            "item {i}: warm session kept stale hints (final_bytes {} !< {unhinted_final})",
            item.report.final_bytes
        );
        assert_eq!(item.outputs["Y"].data()[0], (i as f64 + 1.0) * 4.0);
    }

    // Clearing the hints also reaches the warm pool.
    driver.set_free_hints(&HashMap::new());
    let cleared = driver.run_batch(&items, &["Y"]);
    assert_eq!(
        cleared.items[0].as_ref().unwrap().report.final_bytes,
        unhinted_final,
        "clearing hints must restore the unhinted footprint on pooled sessions"
    );
}

/// An empty batch is a cheap no-op with a well-formed report.
#[test]
fn empty_batch_is_a_no_op() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let driver = BatchDriver::new(program);
    let out = driver.run_batch(&[], &["Y"]);
    assert!(out.items.is_empty());
    assert_eq!(out.report.items, 0);
    assert_eq!(out.report.succeeded, 0);
    assert_eq!(out.report.failed, 0);
    assert_eq!(
        out.report.items_per_sec, None,
        "an empty batch has no throughput figure, not a fake zero"
    );
    assert_eq!(out.report.total_tasklet_invocations, 0);
    assert_eq!(driver.sessions_created(), 0);

    let mut engine = {
        let kernel = npbench::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        GradientEngine::new(
            &kernel.build_dace(&sizes),
            "OUT",
            &kernel.wrt(),
            &kernel.symbols(&sizes),
            &AdOptions::default(),
        )
        .unwrap()
    };
    let out = engine.run_batch(&[]).unwrap();
    assert!(out.items.is_empty());
    assert_eq!(out.batch.items, 0);
}

/// The acceptance target of the batched-serving layer: >= 2x items/sec over
/// the serial single-session loop on atax at bench sizes, when the machine
/// actually has >= 4 workers to fan out to.  On narrower machines (the CI
/// container exposes a single CPU) inter-request parallelism cannot beat a
/// serial loop, so the assertion degrades to "no pathological slowdown".
#[test]
fn batched_serving_beats_serial_with_enough_workers() {
    let kernel = npbench::kernel_by_name("atax").unwrap();
    let sizes = kernel.sizes(Preset::Bench);
    let t = npbench::runner::time_batch(kernel.as_ref(), &sizes, 8, 3, 0).unwrap();
    if t.workers >= 4 {
        assert!(
            t.speedup >= 2.0,
            "expected >= 2x batched speedup with {} workers, got {:.2}x",
            t.workers,
            t.speedup
        );
    } else {
        eprintln!(
            "only {} worker(s) available; batched speedup {:.2}x (parity expected)",
            t.workers, t.speedup
        );
        assert!(
            t.speedup >= 0.5,
            "batched serving should never be pathologically slower than serial, got {:.2}x",
            t.speedup
        );
    }
}
