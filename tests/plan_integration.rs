//! Plan-compilation integration tests.
//!
//! The executor lowers every SDFG into a compiled execution plan before
//! running it (interned ids, register-compiled expressions, precomputed
//! orders).  These tests pin down the properties the plan layer must
//! preserve on the golden-gradient kernels of the paper's evaluation
//! (atax / gemm / mvt / seidel2d):
//!
//! * plan-compiled execution is **deterministic to the bit**: two runs of
//!   the same engine produce bit-identical outputs and gradients;
//! * the memory instrumentation is unchanged: `peak_bytes` is identical
//!   across runs and strictly positive;
//! * the gradients still cross-validate against the independent jax-rs
//!   baseline implementation (`allclose`, §V-A of the paper);
//! * execution counters are reproducible across runs.

use dace_ad_repro::npbench::{kernel_by_name, Preset};
use dace_ad_repro::prelude::*;
use dace_ad_repro::runtime::MapPath;

const KERNELS: [&str; 4] = ["atax", "gemm", "mvt", "seidel2d"];

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn plan_execution_is_bit_deterministic_on_golden_kernels() {
    for name in KERNELS {
        for strategy in [
            CheckpointStrategy::StoreAll,
            CheckpointStrategy::RecomputeAll,
        ] {
            let kernel = kernel_by_name(name).unwrap();
            let sizes = kernel.sizes(Preset::Test);
            let symbols = kernel.symbols(&sizes);
            let inputs = kernel.inputs(&sizes);
            let forward = kernel.build_dace(&sizes);
            let mut engine = GradientEngine::new(
                &forward,
                "OUT",
                &kernel.wrt(),
                &symbols,
                &AdOptions {
                    strategy: strategy.clone(),
                },
            )
            .unwrap_or_else(|e| panic!("{name}: engine construction failed: {e}"));

            let first = engine.run(&inputs).unwrap();
            let second = engine.run(&inputs).unwrap();

            assert_eq!(
                first.output_value.to_bits(),
                second.output_value.to_bits(),
                "{name} [{strategy:?}]: forward outputs are not bit-identical"
            );
            for wrt in kernel.wrt() {
                assert_eq!(
                    bits(&first.gradients[wrt]),
                    bits(&second.gradients[wrt]),
                    "{name} [{strategy:?}]: gradient of {wrt} is not bit-identical across runs"
                );
            }
            assert!(first.report.peak_bytes > 0);
            assert_eq!(
                first.report.peak_bytes, second.report.peak_bytes,
                "{name} [{strategy:?}]: peak_bytes changed across runs"
            );
            assert_eq!(
                first.report.tasklet_invocations, second.report.tasklet_invocations,
                "{name} [{strategy:?}]: tasklet counters changed across runs"
            );
            assert_eq!(first.report.map_points, second.report.map_points);
            assert_eq!(
                first.report.state_executions,
                second.report.state_executions
            );
            assert_eq!(first.report.library_calls, second.report.library_calls);
        }
    }
}

#[test]
fn plan_execution_cross_validates_against_jax_baseline() {
    for name in KERNELS {
        let kernel = kernel_by_name(name).unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let symbols = kernel.symbols(&sizes);
        let inputs = kernel.inputs(&sizes);
        let forward = kernel.build_dace(&sizes);
        let mut engine = GradientEngine::new(
            &forward,
            "OUT",
            &kernel.wrt(),
            &symbols,
            &AdOptions::default(),
        )
        .unwrap();
        let dace = engine.run(&inputs).unwrap();
        let jax = kernel.run_jax(&sizes, &inputs);
        assert!(
            (dace.output_value - jax.output).abs() <= 1e-6 * (1.0 + jax.output.abs()),
            "{name}: forward outputs differ"
        );
        for wrt in kernel.wrt() {
            assert!(
                allclose(&dace.gradients[wrt], &jax.gradients[wrt], 1e-5, 1e-7),
                "{name}: gradient of {wrt} deviates from the jax-rs baseline"
            );
        }
    }
}

/// The forced sequential path must agree bit-for-bit with the auto-selected
/// (element-wise / parallel) paths on a full forward SDFG, and report the
/// same memory peak.
#[test]
fn forced_sequential_path_matches_auto_on_golden_forward_passes() {
    for name in KERNELS {
        let kernel = kernel_by_name(name).unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let symbols = kernel.symbols(&sizes);
        let inputs = kernel.inputs(&sizes);
        let forward = kernel.build_dace(&sizes);

        let run_with = |path: MapPath| {
            let mut session = compile(&forward, &symbols).unwrap().session();
            session.force_map_path(path);
            for (n, t) in &inputs {
                session.set_input(n, t.clone()).unwrap();
            }
            let report = session.run().unwrap();
            let out = session.array("OUT").unwrap().data()[0];
            (out, report)
        };
        let (auto_out, auto_report) = run_with(MapPath::Auto);
        let (seq_out, seq_report) = run_with(MapPath::Sequential);
        assert_eq!(
            auto_out.to_bits(),
            seq_out.to_bits(),
            "{name}: sequential path disagrees with auto path"
        );
        assert_eq!(auto_report.peak_bytes, seq_report.peak_bytes);
        assert_eq!(auto_report.map_points, seq_report.map_points);
        assert_eq!(
            auto_report.tasklet_invocations,
            seq_report.tasklet_invocations
        );
    }
}
