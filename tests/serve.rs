//! Dynamic-admission serving: coalescing, determinism, deadlines,
//! cancellation, concurrent submission and drop-drain semantics of
//! `ServeDriver` / `GradientEngine::serve`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use dace_ad_repro::prelude::*;
use dace_tensor::Tensor;
use npbench::Preset;

fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// `Y = sin(X) * X + 2`, N = 32: element-wise, distinct per input.
fn elementwise_program() -> (dace_ad_repro::sdfg::Sdfg, HashMap<String, i64>) {
    let mut b = ProgramBuilder::new("serve_dyn");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    b.assign(
        "Y",
        ArrayExpr::a("X")
            .sin()
            .mul(ArrayExpr::a("X"))
            .add(ArrayExpr::s(2.0)),
    );
    (b.build().unwrap(), symbols(&[("N", 32)]))
}

fn item(i: usize) -> HashMap<String, Tensor> {
    let data: Vec<f64> = (0..32).map(|j| (i * 31 + j) as f64 * 0.125 - 1.5).collect();
    HashMap::from([("X".to_string(), Tensor::from_vec(data, &[32]).unwrap())])
}

/// Serial single-session reference outputs for `item(0..n)`.
fn serial_reference(program: &CompiledProgram, n: usize) -> Vec<Tensor> {
    let mut session = program.session();
    (0..n)
        .map(|i| {
            session.clear_bindings();
            for (k, v) in item(i) {
                session.set_input(&k, v).unwrap();
            }
            session.run().unwrap();
            session.array("Y").unwrap().clone()
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Individually submitted requests are coalesced into one dispatch (the
/// admission queue fills to `max_batch` well inside the linger window) and
/// every result is bit-identical to a serial session loop.
#[test]
fn submitted_requests_coalesce_and_match_serial() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let reference = serial_reference(&program, 6);

    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: 6,
            max_wait: Duration::from_millis(500),
            workers: 0,
        },
    );
    let handles: Vec<_> = (0..6).map(|i| server.submit(item(i), &["Y"])).collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let response = handle.wait().unwrap();
        assert_eq!(
            bits(&response.outputs["Y"]),
            bits(&reference[i]),
            "served item {i} diverged from the serial reference"
        );
        assert_eq!(
            response.batched_with, 6,
            "all six requests must ride one coalesced dispatch"
        );
        assert!(response.latency > Duration::ZERO);
    }
    let stats = server.stats();
    assert_eq!(stats.admitted, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.batches, 1, "one dispatch served the whole burst");
    assert_eq!(stats.largest_batch, 6);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.p95_latency >= stats.p50_latency);
    assert!(stats.p50_latency > Duration::ZERO);
}

/// Deadline-expired requests are rejected with `DeadlineExceeded` without
/// ever occupying a worker — asserted both for a zero budget (rejected at
/// admission) and for a queued request whose deadline passes mid-linger
/// (rejected at batch formation).  No session is ever created for them.
#[test]
fn deadline_expired_requests_never_execute() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: 8,
            max_wait: Duration::from_millis(150),
            workers: 0,
        },
    );

    // Zero budget: expired at admission, never enqueued.
    let handle = server.submit_with_deadline(item(0), &["Y"], Duration::ZERO);
    match handle.wait() {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Queued expiry: the deadline (20ms) passes while the lone request
    // lingers (150ms) waiting for peers that never come.  The rejection
    // must arrive when the deadline fires, not at the end of the linger.
    let submitted = std::time::Instant::now();
    let handle = server.submit_with_deadline(item(1), &["Y"], Duration::from_millis(20));
    match handle.wait() {
        Err(ServeError::DeadlineExceeded { missed_by }) => {
            assert!(missed_by > Duration::ZERO);
            assert!(
                submitted.elapsed() < Duration::from_millis(120),
                "rejection must be delivered at the deadline, not after the \
                 full {:?} linger (took {:?})",
                Duration::from_millis(150),
                submitted.elapsed()
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let stats = server.stats();
    assert_eq!(stats.expired, 2);
    assert_eq!(stats.completed, 0);
    assert_eq!(
        stats.batches, 0,
        "no dispatch may fire for expired requests"
    );
    assert_eq!(
        server.batch_driver().sessions_created(),
        0,
        "an expired request must never occupy a worker session"
    );
}

/// Cancellation succeeds on queued requests (completing them with
/// `Cancelled`), is idempotent-false afterwards, and does not disturb other
/// requests in the same linger window.
#[test]
fn cancel_works_on_queued_requests() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let reference = serial_reference(&program, 2);
    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: 8,
            max_wait: Duration::from_millis(250),
            workers: 0,
        },
    );

    let doomed = server.submit(item(0), &["Y"]);
    let survivor = server.submit(item(1), &["Y"]);
    assert!(doomed.cancel(), "a queued request must be cancellable");
    assert!(!doomed.cancel(), "a second cancel is a no-op");
    assert!(doomed.is_done());
    match doomed.try_wait() {
        Some(Err(ServeError::Cancelled)) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    match doomed.wait() {
        Err(ServeError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    let response = survivor.wait().unwrap();
    assert_eq!(bits(&response.outputs["Y"]), bits(&reference[1]));
    assert_eq!(
        response.batched_with, 1,
        "the cancelled peer must not count into the dispatch"
    );
    let stats = server.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

/// `try_wait` polls without consuming: repeated polls and the final `wait`
/// all observe the same completed result.
#[test]
fn try_wait_polls_then_wait_takes() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let reference = serial_reference(&program, 1);
    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            workers: 0,
        },
    );
    let handle = server.submit(item(0), &["Y"]);
    let polled = loop {
        if let Some(result) = handle.try_wait() {
            break result;
        }
        std::thread::yield_now();
    };
    let polled = polled.unwrap();
    let polled_again = handle.try_wait().expect("still done").unwrap();
    let taken = handle.wait().unwrap();
    for response in [&polled, &polled_again, &taken] {
        assert_eq!(bits(&response.outputs["Y"]), bits(&reference[0]));
    }
}

/// N threads submitting concurrently with mixed deadlines and
/// cancellations: every handle resolves exactly once (no lost, no
/// double-completed), completed results are bit-identical to serial runs,
/// and the session pool never exceeds the dispatch bound.
#[test]
fn concurrent_mixed_submissions_are_exact_and_bounded() {
    const THREADS: usize = 6;
    const PER_THREAD: usize = 8;
    const MAX_BATCH: usize = 4;
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let reference = serial_reference(&program, THREADS * PER_THREAD);
    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: MAX_BATCH,
            max_wait: Duration::from_millis(1),
            workers: 0,
        },
    );

    enum Outcome {
        Completed(usize, Vec<u64>),
        Cancelled,
    }
    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let server = &server;
            let outcomes = &outcomes;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let idx = t * PER_THREAD + i;
                    // Every third request carries a generous deadline (it
                    // must still complete); every fourth race-cancels.
                    let handle = if idx.is_multiple_of(3) {
                        server.submit_with_deadline(item(idx), &["Y"], Duration::from_secs(60))
                    } else {
                        server.submit(item(idx), &["Y"])
                    };
                    let cancelled = idx.is_multiple_of(4) && handle.cancel();
                    let outcome = match handle.wait() {
                        Ok(response) => {
                            assert!(!cancelled, "a cancelled handle must not complete");
                            Outcome::Completed(idx, bits(&response.outputs["Y"]))
                        }
                        Err(ServeError::Cancelled) => {
                            assert!(cancelled, "only race-cancelled requests may cancel");
                            Outcome::Cancelled
                        }
                        Err(e) => panic!("request {idx} failed unexpectedly: {e}"),
                    };
                    outcomes.lock().unwrap().push(outcome);
                }
            });
        }
    });

    let outcomes = outcomes.into_inner().unwrap();
    assert_eq!(
        outcomes.len(),
        THREADS * PER_THREAD,
        "every handle must resolve exactly once"
    );
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for outcome in &outcomes {
        match outcome {
            Outcome::Completed(idx, got) => {
                completed += 1;
                assert_eq!(
                    got,
                    &bits(&reference[*idx]),
                    "served item {idx} diverged from the serial reference"
                );
            }
            Outcome::Cancelled => cancelled += 1,
        }
    }
    let stats = server.stats();
    assert_eq!(stats.admitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.cancelled, cancelled);
    assert_eq!(stats.completed + stats.cancelled, stats.admitted);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.failed, 0);
    assert!(stats.largest_batch <= MAX_BATCH);
    // The dispatcher serves one batch at a time, so the pool can never
    // outgrow the dispatch bound — however many threads submit.
    assert!(
        server.batch_driver().sessions_created() <= MAX_BATCH as u64,
        "session pool exceeded the dispatch bound: created {}",
        server.batch_driver().sessions_created()
    );
    assert!(stats.pooled_sessions <= MAX_BATCH);
}

/// `ServeDriver::run_batch` (submit-all-then-wait-all) reproduces the
/// static `BatchDriver::run_batch` results bit for bit — the layering
/// proof at the driver level.
#[test]
fn serve_run_batch_matches_static_batch_driver() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let items: Vec<_> = (0..10).map(item).collect();

    let static_driver = BatchDriver::new(program.clone());
    let static_out = static_driver.run_batch(&items, &["Y"]);

    let server = ServeDriver::new(program);
    let served = server.run_batch(&items, &["Y"]);

    assert_eq!(served.len(), static_out.items.len());
    for (i, (dynamic, fixed)) in served.iter().zip(&static_out.items).enumerate() {
        let dynamic = dynamic.as_ref().unwrap();
        let fixed = fixed.as_ref().unwrap();
        assert_eq!(
            bits(&dynamic.outputs["Y"]),
            bits(&fixed.outputs["Y"]),
            "item {i} diverged between static and dynamic batching"
        );
    }
}

/// Dropping the driver drains the queue: outstanding handles all resolve
/// (drop never strands a request), and submissions after shutdown are
/// rejected with `ShuttingDown`.
#[test]
fn drop_drains_outstanding_requests() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let reference = serial_reference(&program, 4);
    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: 8,
            max_wait: Duration::from_secs(5), // far longer than the test
            workers: 0,
        },
    );
    let handles: Vec<_> = (0..4).map(|i| server.submit(item(i), &["Y"])).collect();
    server.shutdown();
    for (i, handle) in handles.into_iter().enumerate() {
        let response = handle.wait().unwrap();
        assert_eq!(bits(&response.outputs["Y"]), bits(&reference[i]));
    }
    let late = server.submit(item(0), &["Y"]);
    match late.wait() {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

/// Engine-level serving: handle-based gradient requests are bit-identical
/// to `GradientEngine::run`, input validation fires at submit time, and a
/// zero budget surfaces as a typed serve error.
#[test]
fn engine_serve_matches_blocking_run() {
    let kernel = npbench::kernel_by_name("atax").unwrap();
    let sizes = kernel.sizes(Preset::Test);
    let inputs_list = npbench::runner::batch_inputs(kernel.as_ref(), &sizes, 5);
    let sdfg = kernel.build_dace(&sizes);
    let syms = kernel.symbols(&sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &syms, &AdOptions::default()).unwrap();

    let blocking: Vec<_> = inputs_list.iter().map(|i| engine.run(i).unwrap()).collect();
    let server = engine.serve();
    let handles: Vec<_> = inputs_list
        .iter()
        .map(|i| server.submit(i).unwrap())
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().unwrap();
        assert_eq!(
            served.result.output_value.to_bits(),
            blocking[i].output_value.to_bits()
        );
        assert_eq!(served.result.gradients.len(), blocking[i].gradients.len());
        for (name, expected) in &blocking[i].gradients {
            assert_eq!(
                bits(&served.result.gradients[name]),
                bits(expected),
                "gradient of {name} diverged for served item {i}"
            );
        }
        assert!(served.batched_with >= 1);
    }
    // The serial runs and every served request share one gradient lowering.
    assert_eq!(engine.gradient_program().cache_stats().misses, 1);

    // Validation fires synchronously at submit, exactly like `run`.
    let mut typo = inputs_list[0].clone();
    typo.insert("NOPE".to_string(), Tensor::zeros(&[2]));
    match server.submit(&typo) {
        Err(EngineError::UnknownInput(name)) => assert_eq!(name, "NOPE"),
        other => panic!("expected UnknownInput, got {other:?}"),
    }

    // A zero latency budget is a typed serve rejection.
    let handle = server
        .submit_with_deadline(&inputs_list[0], Duration::ZERO)
        .unwrap();
    match handle.wait() {
        Err(EngineError::Serve(ServeError::DeadlineExceeded { .. })) => {}
        other => panic!("expected Serve(DeadlineExceeded), got {other:?}"),
    }

    // Serving statistics are visible through the engine server.
    let stats = server.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.expired, 1);
}

/// Conservation stress: while submitter threads race plain submissions,
/// tight deadlines and cancellations against the dispatcher, a sampler
/// thread takes `stats()` snapshots continuously.  The request-conservation
/// invariant
///
/// `admitted == queue_depth + in_flight + completed + failed + cancelled
///             + expired + rejected`
///
/// must hold on *every* snapshot — a torn snapshot (counters read at
/// different instants) shows up here as a transient imbalance.
#[test]
fn stats_snapshots_conserve_requests_under_load() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const THREADS: usize = 4;
    const PER_THREAD: usize = 12;
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let server = ServeDriver::with_options(
        program,
        ServeOptions {
            max_batch: 3,
            max_wait: Duration::from_millis(1),
            workers: 0,
        },
    );

    let check = |stats: &ServeStats, when: &str| {
        let accounted = stats.queue_depth as u64
            + stats.in_flight
            + stats.completed
            + stats.failed
            + stats.cancelled
            + stats.expired
            + stats.rejected;
        assert_eq!(
            stats.admitted,
            accounted,
            "torn snapshot ({when}): admitted {} != accounted {accounted} \
             (queued {} + in-flight {} + completed {} + failed {} + \
             cancelled {} + expired {} + rejected {})",
            stats.admitted,
            stats.queue_depth,
            stats.in_flight,
            stats.completed,
            stats.failed,
            stats.cancelled,
            stats.expired,
            stats.rejected,
        );
    };

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Sampler: hammer `stats()` for the whole run, checking every
        // snapshot.  A coherent implementation never shows an imbalance,
        // however the sample interleaves with lifecycle transitions.
        let sampler = {
            let server = &server;
            let done = &done;
            scope.spawn(move || {
                let mut samples = 0u64;
                while !done.load(Ordering::Acquire) {
                    check(&server.stats(), "during load");
                    samples += 1;
                }
                samples
            })
        };

        let submitters: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let idx = t * PER_THREAD + i;
                        // Mix the lifecycle paths: zero budgets expire at
                        // admission, 1 ms budgets may expire in the queue or
                        // complete, the rest are plain; every fifth
                        // race-cancels.
                        let handle = match idx % 3 {
                            0 => server.submit_with_deadline(item(idx), &["Y"], Duration::ZERO),
                            1 => server.submit_with_deadline(
                                item(idx),
                                &["Y"],
                                Duration::from_millis(1),
                            ),
                            _ => server.submit(item(idx), &["Y"]),
                        };
                        if idx.is_multiple_of(5) {
                            handle.cancel();
                        }
                        // Every terminal outcome is legal here; waiting
                        // keeps the handles resolved so the final snapshot
                        // is total.
                        match handle.wait() {
                            Ok(_)
                            | Err(ServeError::Cancelled)
                            | Err(ServeError::DeadlineExceeded { .. }) => {}
                            Err(e) => panic!("request {idx} failed unexpectedly: {e}"),
                        }
                    }
                })
            })
            .collect();

        for submitter in submitters {
            submitter.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let samples = sampler.join().unwrap();
        assert!(samples > 0, "the sampler must have observed the run");
    });

    // Quiescent snapshot: everything admitted reached a terminal state.
    let stats = server.stats();
    check(&stats, "at quiescence");
    assert_eq!(stats.admitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.queue_depth, 0, "no request may remain queued");
    assert_eq!(stats.in_flight, 0, "no request may remain in flight");
    assert_eq!(stats.failed, 0);
}

/// `wait_timeout` covers both sides of the expired-then-completed race:
/// `None` while pending (the caller keeps the handle), `Some` once done,
/// and a subsequent `wait` still consumes the result exactly once.
#[test]
fn wait_timeout_reports_pending_then_completion() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let server = ServeDriver::with_options(
        program.clone(),
        ServeOptions {
            max_batch: 8,
            // Long linger: the request stays pending until we've sampled it.
            max_wait: Duration::from_millis(100),
            workers: 0,
        },
    );

    let handle = server.submit(item(0), &["Y"]);
    // Pending: a zero-ish timeout must return None without consuming.
    assert!(
        handle.wait_timeout(Duration::ZERO).is_none(),
        "a pending request must time out, not resolve"
    );
    assert!(!handle.is_done());
    // Completion: a generous timeout observes the result...
    let observed = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("request must complete within the linger window");
    let expected = serial_reference(&program, 1);
    assert_eq!(bits(&observed.unwrap().outputs["Y"]), bits(&expected[0]));
    // ...and does not consume it: the handle still resolves through the
    // one-shot paths afterwards.
    assert!(handle.is_done());
    assert!(handle.try_wait().is_some());
    assert!(handle.wait().is_ok());
}

/// `set_max_batch` can *lower* a live driver's cap (clamped to >= 1): new
/// dispatches respect the narrower bound and the warm pool is trimmed to
/// it, while `raise_max_batch` still only widens.
#[test]
fn set_max_batch_lowers_cap_and_trims_pool() {
    let (sdfg, syms) = elementwise_program();
    let program = compile(&sdfg, &syms).unwrap();
    let server = ServeDriver::with_options(
        program.clone(),
        ServeOptions {
            max_batch: 6,
            max_wait: Duration::from_millis(2),
            workers: 0,
        },
    );
    server.warm(6);
    assert_eq!(server.batch_driver().pooled_sessions(), 6);

    server.set_max_batch(2);
    assert_eq!(server.options().max_batch, 2);
    assert_eq!(
        server.batch_driver().pooled_sessions(),
        2,
        "lowering the cap must trim idle warm sessions down with it"
    );
    // raise_max_batch never narrows; set_max_batch(0) clamps to 1.
    server.raise_max_batch(1);
    assert_eq!(server.options().max_batch, 2);
    server.set_max_batch(0);
    assert_eq!(server.options().max_batch, 1);

    // The narrowed cap binds dispatch width: with serial workers and a
    // linger window, 5 requests can never ride in one batch of > 1.
    let handles: Vec<_> = (0..5).map(|i| server.submit(item(i), &["Y"])).collect();
    let expected = serial_reference(&program, 5);
    for (i, handle) in handles.into_iter().enumerate() {
        let response = handle.wait().unwrap();
        assert_eq!(bits(&response.outputs["Y"]), bits(&expected[i]));
        assert_eq!(
            response.batched_with, 1,
            "a cap of 1 must serialise dispatches"
        );
    }
}
