//! Specialization-tier integration tests.
//!
//! The plan compiler recognizes dominant kernel shapes (affine elementwise
//! bodies, fixed-radius stencils, reduction/contraction bodies) in unit-step
//! innermost loops and dispatches them to monomorphized native loops after a
//! profile-guided warm-up (see `crates/runtime/src/spec.rs`).  These tests
//! pin down the tier's contract:
//!
//! * the specialized path is **bit-identical** to the register VM on every
//!   loop kernel of the paper's evaluation and on randomly generated affine
//!   stencil/reduction bodies (random shapes, offsets, scale factors and
//!   aliasing, including reads of the written array);
//! * execution counters (`tasklet_invocations`, `state_executions`,
//!   `map_points`) are identical across `SpecMode::{Auto, ForceOn,
//!   ForceOff}`, mirroring the `MapPath` parity guarantees;
//! * `ForceOn` actually dispatches specialized kernels on the figure loop
//!   kernels (the recognizer covers them), and `Auto` self-upgrades after
//!   the warm-up threshold without changing results.

use std::collections::HashMap;

use dace_ad_repro::frontend::{elem, lit};
use dace_ad_repro::npbench::{kernel_by_name, Preset};
use dace_ad_repro::prelude::*;
use dace_ad_repro::runtime::SpecMode;
use dace_ad_repro::sdfg::Sdfg;

const LOOP_KERNELS: [&str; 6] = ["seidel2d", "jacobi2d", "syrk", "syr2k", "trmm", "conv2d"];
const MAP_KERNELS: [&str; 3] = ["atax", "gemm", "mvt"];

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Run a kernel's forward SDFG under one specialization mode and return the
/// bit patterns of every named array plus the execution report.
fn run_forward(
    sdfg: &Sdfg,
    symbols: &HashMap<String, i64>,
    inputs: &HashMap<String, Tensor>,
    mode: SpecMode,
) -> (HashMap<String, Vec<u64>>, ExecutionReport) {
    let mut session = compile(sdfg, symbols).unwrap().session();
    session.force_specialization(mode);
    for (n, t) in inputs {
        session.set_input(n, t.clone()).unwrap();
    }
    let report = session.run().unwrap();
    let mut arrays = HashMap::new();
    for name in inputs.keys().map(String::as_str).chain(["OUT"]) {
        arrays.insert(name.to_string(), bits(session.array(name).unwrap()));
    }
    (arrays, report)
}

/// The specialized path must agree bit-for-bit with the pure VM on every
/// loop kernel of the evaluation, with identical execution counters, and it
/// must actually fire: these bodies are exactly the shapes the recognizer
/// exists for.
#[test]
fn specialized_path_is_bit_identical_on_loop_kernels() {
    for name in LOOP_KERNELS {
        let kernel = kernel_by_name(name).unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let symbols = kernel.symbols(&sizes);
        let inputs = kernel.inputs(&sizes);
        let sdfg = kernel.build_dace(&sizes);

        let (off_arrays, off_report) = run_forward(&sdfg, &symbols, &inputs, SpecMode::ForceOff);
        let (on_arrays, on_report) = run_forward(&sdfg, &symbols, &inputs, SpecMode::ForceOn);
        let (auto_arrays, auto_report) = run_forward(&sdfg, &symbols, &inputs, SpecMode::Auto);

        assert_eq!(
            off_report.specialized_dispatches, 0,
            "{name}: ForceOff dispatched"
        );
        assert!(
            on_report.specialized_dispatches > 0,
            "{name}: ForceOn never dispatched a specialized kernel"
        );
        for (arr, off_bits) in &off_arrays {
            assert_eq!(
                off_bits, &on_arrays[arr],
                "{name}: specialized {arr} differs from the VM"
            );
            assert_eq!(
                off_bits, &auto_arrays[arr],
                "{name}: auto-mode {arr} differs from the VM"
            );
        }
        for (label, report) in [("ForceOn", &on_report), ("Auto", &auto_report)] {
            assert_eq!(
                off_report.tasklet_invocations, report.tasklet_invocations,
                "{name}: {label} tasklet counter diverged"
            );
            assert_eq!(
                off_report.state_executions, report.state_executions,
                "{name}: {label} state counter diverged"
            );
            assert_eq!(
                off_report.map_points, report.map_points,
                "{name}: {label} map-point counter diverged"
            );
        }
    }
}

/// The map/library kernels of the figure set must be unaffected by the
/// force knob: identical outputs and counters whether specialization is
/// forced on, forced off, or profile-guided.
#[test]
fn force_knob_is_inert_on_map_kernels() {
    for name in MAP_KERNELS {
        let kernel = kernel_by_name(name).unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let symbols = kernel.symbols(&sizes);
        let inputs = kernel.inputs(&sizes);
        let sdfg = kernel.build_dace(&sizes);

        let (off_arrays, off_report) = run_forward(&sdfg, &symbols, &inputs, SpecMode::ForceOff);
        for mode in [SpecMode::ForceOn, SpecMode::Auto] {
            let (arrays, report) = run_forward(&sdfg, &symbols, &inputs, mode);
            for (arr, off_bits) in &off_arrays {
                assert_eq!(off_bits, &arrays[arr], "{name} [{mode:?}]: {arr} differs");
            }
            assert_eq!(off_report.tasklet_invocations, report.tasklet_invocations);
            assert_eq!(off_report.state_executions, report.state_executions);
            assert_eq!(off_report.map_points, report.map_points);
        }
    }
}

/// `Auto` mode keeps a site on the VM for its first
/// `SPEC_UPGRADE_THRESHOLD` dispatch opportunities, then self-upgrades —
/// without changing results or counters across the transition.
#[test]
fn auto_mode_upgrades_after_warmup() {
    // One dispatch opportunity per run: a single innermost control-flow loop.
    let mut b = ProgramBuilder::new("spec_warmup");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    let i = SymExpr::sym("i");
    b.for_range("i", 0, n.clone(), |b| {
        b.assign_element(
            "Y",
            vec![i.clone()],
            elem("X", vec![i.clone()]).mul(lit(3.0)),
        );
    });
    let sdfg = b.build().unwrap();
    let symbols = HashMap::from([("N".to_string(), 16i64)]);
    let x = Tensor::from_vec((0..16).map(|v| v as f64 * 0.25).collect(), &[16]).unwrap();

    let mut session = compile(&sdfg, &symbols).unwrap().session();
    // Pin Auto explicitly: the default comes from `DACE_SPEC`, and the CI
    // matrix runs this suite with the tier force-disabled and force-enabled.
    session.force_specialization(SpecMode::Auto);
    session.set_input("X", x.clone()).unwrap();
    let mut reference: Option<Vec<u64>> = None;
    let mut counters: Option<(u64, u64)> = None;
    for run in 0..5 {
        let report = session.run().unwrap();
        // SPEC_UPGRADE_THRESHOLD is 3: runs 0-2 stay on the VM, 3+ dispatch.
        let expected = u64::from(run >= 3);
        assert_eq!(
            report.specialized_dispatches, expected,
            "run {run}: unexpected dispatch count"
        );
        let y = bits(session.array("Y").unwrap());
        match &reference {
            None => reference = Some(y),
            Some(r) => assert_eq!(r, &y, "run {run}: result changed across the upgrade"),
        }
        match counters {
            None => counters = Some((report.tasklet_invocations, report.state_executions)),
            Some((t, s)) => {
                assert_eq!(
                    report.tasklet_invocations, t,
                    "run {run}: tasklet counter changed"
                );
                assert_eq!(
                    report.state_executions, s,
                    "run {run}: state counter changed"
                );
            }
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A randomly generated affine loop body: `W[i+wo_r, j+wo_c] (=|+=)
    /// f(reads)` inside a `for i / for j` nest, where each read is
    /// `R[i+or_r, j+or_c]` and `R` may alias the written array.
    #[derive(Clone, Debug)]
    struct SpecCase {
        n: i64,
        in_place: bool,
        accumulate: bool,
        /// (read from written array, row offset, col offset) per read.
        reads: Vec<(bool, i64, i64)>,
        /// Write offsets (row, col).
        wo: (i64, i64),
        /// Expression shape: 0 = sum of reads, 1 = product of first two,
        /// 2 = sum scaled by a constant, 3 = sum divided by a constant.
        shape: u8,
        scale: f64,
    }

    fn arb_case() -> impl Strategy<Value = SpecCase> {
        let flag = || (0u8..2).prop_map(|v| v == 1);
        (
            6i64..11,
            flag(),
            flag(),
            proptest::collection::vec((flag(), -1i64..2, -1i64..2), 1..5),
            (-1i64..2, -1i64..2),
            0u8..4,
            0.25f64..4.0,
        )
            .prop_map(
                |(n, in_place, accumulate, reads, wo, shape, scale)| SpecCase {
                    n,
                    in_place,
                    accumulate,
                    reads,
                    wo,
                    shape,
                    scale,
                },
            )
    }

    fn build_case(case: &SpecCase) -> Sdfg {
        let mut b = ProgramBuilder::new("spec_prop");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), n.clone()]).unwrap();
        let (i, j) = (SymExpr::sym("i"), SymExpr::sym("j"));
        let one = SymExpr::int(1);
        let target = if case.in_place { "A" } else { "B" };
        b.for_range("i", 1, n.sub(&one), |b| {
            b.for_range("j", 1, n.sub(&one), |b| {
                let rd = |&(alias, ro, co): &(bool, i64, i64)| {
                    let arr = if alias { target } else { "A" };
                    elem(arr, vec![i.add_int(ro), j.add_int(co)])
                };
                let mut expr = rd(&case.reads[0]);
                match case.shape {
                    1 if case.reads.len() >= 2 => expr = expr.mul(rd(&case.reads[1])),
                    _ => {
                        for r in &case.reads[1..] {
                            expr = expr.add(rd(r));
                        }
                        if case.shape == 2 {
                            expr = expr.mul(lit(case.scale));
                        } else if case.shape == 3 {
                            expr = expr.div(lit(case.scale));
                        }
                    }
                }
                let idx = vec![i.add_int(case.wo.0), j.add_int(case.wo.1)];
                if case.accumulate {
                    b.accumulate_element(target, idx, expr);
                } else {
                    b.assign_element(target, idx, expr);
                }
            });
        });
        b.build().unwrap()
    }

    fn run_case(sdfg: &Sdfg, n: i64, mode: SpecMode) -> (Vec<u64>, Vec<u64>, ExecutionReport) {
        let symbols = HashMap::from([("N".to_string(), n)]);
        let dim = n as usize;
        let fill = |seed: f64| {
            Tensor::from_vec(
                (0..dim * dim)
                    .map(|k| (k as f64 * 0.37 + seed).sin())
                    .collect(),
                &[dim, dim],
            )
            .unwrap()
        };
        let mut session = compile(sdfg, &symbols).unwrap().session();
        session.force_specialization(mode);
        session.set_input("A", fill(0.1)).unwrap();
        session.set_input("B", fill(2.3)).unwrap();
        let report = session.run().unwrap();
        (
            bits(session.array("A").unwrap()),
            bits(session.array("B").unwrap()),
            report,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Whatever the recognizer decides (dispatch or VM fallback), the
        /// results must be bit-identical to pure-VM execution and the
        /// execution counters must not diverge — for random offsets, scale
        /// factors, reductions and aliasing patterns, including bodies that
        /// read the array they write (Gauss–Seidel order).
        #[test]
        fn specialized_execution_is_bit_identical(case in arb_case()) {
            let sdfg = build_case(&case);
            let (a_off, b_off, r_off) = run_case(&sdfg, case.n, SpecMode::ForceOff);
            let (a_on, b_on, r_on) = run_case(&sdfg, case.n, SpecMode::ForceOn);
            prop_assert_eq!(r_off.specialized_dispatches, 0);
            prop_assert_eq!(&a_off, &a_on, "A diverged for {:?}", &case);
            prop_assert_eq!(&b_off, &b_on, "B diverged for {:?}", &case);
            prop_assert_eq!(r_off.tasklet_invocations, r_on.tasklet_invocations);
            prop_assert_eq!(r_off.state_executions, r_on.state_executions);
            prop_assert_eq!(r_off.map_points, r_on.map_points);
        }
    }
}
