//! Finite-difference golden-gradient validation of NPBench kernels.
//!
//! The paper's central claim is *correct* gradients for arbitrary programs;
//! the canonical way to establish correctness of a reverse-mode engine
//! (Baydin et al., "Automatic differentiation in machine learning: a survey")
//! is to validate every reverse path against central finite differences.
//! Each kernel below is checked twice — once per checkpoint strategy — so the
//! tape-forwarding (store-all) and rematerialisation (recompute-all) code
//! paths are both held to the same golden gradients.

use std::collections::HashMap;

use dace_ad_repro::ad::engine::finite_difference_gradient;
use dace_ad_repro::npbench::{kernel_by_name, Preset};
use dace_ad_repro::prelude::*;

/// Run `kernel` under `strategy` and compare the gradient of every `wrt`
/// input against central finite differences at the test-preset sizes.
fn check_kernel_against_fd(name: &str, strategy: CheckpointStrategy) {
    let kernel = kernel_by_name(name).unwrap_or_else(|| panic!("unknown kernel {name}"));
    let sizes = kernel.sizes(Preset::Test);
    let symbols = kernel.symbols(&sizes);
    let inputs = kernel.inputs(&sizes);
    let forward = kernel.build_dace(&sizes);
    let mut engine = GradientEngine::new(
        &forward,
        "OUT",
        &kernel.wrt(),
        &symbols,
        &AdOptions {
            strategy: strategy.clone(),
        },
    )
    .unwrap_or_else(|e| panic!("{name} [{strategy:?}]: engine construction failed: {e}"));
    let result = engine
        .run(&inputs)
        .unwrap_or_else(|e| panic!("{name} [{strategy:?}]: gradient run failed: {e}"));
    for wrt in kernel.wrt() {
        let fd = finite_difference_gradient(&forward, "OUT", wrt, &symbols, &inputs, 1e-6)
            .unwrap_or_else(|e| panic!("{name}: finite differences for {wrt} failed: {e}"));
        let ad = &result.gradients[wrt];
        assert!(
            allclose(ad, &fd, 1e-4, 1e-7),
            "{name} [{strategy:?}]: gradient of {wrt} deviates from finite differences\n\
             ad = {:?}\nfd = {:?}",
            ad.data(),
            fd.data(),
        );
    }
}

// Vectorized (whole-array, BLAS-style) kernels — Fig. 10 population.

#[test]
fn fd_golden_atax_store_all() {
    check_kernel_against_fd("atax", CheckpointStrategy::StoreAll);
}

#[test]
fn fd_golden_atax_recompute_all() {
    check_kernel_against_fd("atax", CheckpointStrategy::RecomputeAll);
}

#[test]
fn fd_golden_gemm_store_all() {
    check_kernel_against_fd("gemm", CheckpointStrategy::StoreAll);
}

#[test]
fn fd_golden_gemm_recompute_all() {
    check_kernel_against_fd("gemm", CheckpointStrategy::RecomputeAll);
}

#[test]
fn fd_golden_mvt_store_all() {
    check_kernel_against_fd("mvt", CheckpointStrategy::StoreAll);
}

#[test]
fn fd_golden_mvt_recompute_all() {
    check_kernel_against_fd("mvt", CheckpointStrategy::RecomputeAll);
}

// Loop (sequential control flow, element accesses) kernel — Fig. 11
// population.  Seidel-2d is the paper's running stencil example, with a
// loop-carried dependency that exercises the compact loop reversal.

#[test]
fn fd_golden_seidel2d_store_all() {
    check_kernel_against_fd("seidel2d", CheckpointStrategy::StoreAll);
}

#[test]
fn fd_golden_seidel2d_recompute_all() {
    check_kernel_against_fd("seidel2d", CheckpointStrategy::RecomputeAll);
}

/// The two strategies must agree with each other bit-for-bit modulo float
/// noise, not just with finite differences (which have looser tolerance).
#[test]
fn store_all_and_recompute_all_agree_tightly() {
    for name in ["atax", "gemm", "mvt", "seidel2d"] {
        let kernel = kernel_by_name(name).unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let symbols = kernel.symbols(&sizes);
        let inputs = kernel.inputs(&sizes);
        let forward = kernel.build_dace(&sizes);
        let mut results: Vec<HashMap<String, Tensor>> = Vec::new();
        for strategy in [
            CheckpointStrategy::StoreAll,
            CheckpointStrategy::RecomputeAll,
        ] {
            let mut engine = GradientEngine::new(
                &forward,
                "OUT",
                &kernel.wrt(),
                &symbols,
                &AdOptions { strategy },
            )
            .unwrap();
            results.push(engine.run(&inputs).unwrap().gradients.into_iter().collect());
        }
        for wrt in kernel.wrt() {
            assert!(
                allclose(&results[0][wrt], &results[1][wrt], 1e-10, 1e-12),
                "{name}: strategies disagree on gradient of {wrt}"
            );
        }
    }
}
