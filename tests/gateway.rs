//! Multi-tenant gateway: WDRR fairness, backpressure, retries, circuit
//! breaking, graceful reload, fault injection, shutdown-under-load and the
//! exactly-once handle contract of `Gateway` /
//! `GradientEngine::register_with`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dace_ad_repro::prelude::*;
use dace_tensor::Tensor;
use npbench::Preset;

const N: usize = 16;

fn symbols() -> HashMap<String, i64> {
    HashMap::from([("N".to_string(), N as i64)])
}

/// `Y = 2X + 1` — tenant "alpha"'s program.
fn alpha_program() -> CompiledProgram {
    let mut b = ProgramBuilder::new("gw_alpha");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    b.assign(
        "Y",
        ArrayExpr::a("X")
            .mul(ArrayExpr::s(2.0))
            .add(ArrayExpr::s(1.0)),
    );
    compile(&b.build().unwrap(), &symbols()).unwrap()
}

/// `Y = X·X − 3` — tenant "beta"'s program.
fn beta_program() -> CompiledProgram {
    let mut b = ProgramBuilder::new("gw_beta");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    b.assign(
        "Y",
        ArrayExpr::a("X")
            .mul(ArrayExpr::a("X"))
            .sub(ArrayExpr::s(3.0)),
    );
    compile(&b.build().unwrap(), &symbols()).unwrap()
}

/// `Y = 3X` — the program "alpha" hot-swaps to in the reload test.
fn alpha_v2_program() -> CompiledProgram {
    let mut b = ProgramBuilder::new("gw_alpha_v2");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_input("Y", vec![n.clone()]).unwrap();
    b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(3.0)));
    compile(&b.build().unwrap(), &symbols()).unwrap()
}

fn item(i: usize) -> HashMap<String, Tensor> {
    let data: Vec<f64> = (0..N).map(|j| (i * 17 + j) as f64 * 0.25 - 2.0).collect();
    HashMap::from([("X".to_string(), Tensor::from_vec(data, &[N]).unwrap())])
}

/// Serial single-session reference for `item(i)` on `program`.
fn reference(program: &CompiledProgram, i: usize) -> Tensor {
    let mut session = program.session();
    for (k, v) in item(i) {
        session.set_input(&k, v).unwrap();
    }
    session.run().unwrap();
    session.array("Y").unwrap().clone()
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Wait with a generous bound: a handle that does not resolve within it is
/// a *lost* handle — exactly the contract violation this suite polices.
fn must_resolve(handle: GatewayHandle) -> Result<ServeResponse, ServeError> {
    let _ = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("handle lost: no resolution within 30s");
    handle.wait()
}

/// Poll `stats()` until `pred` holds (or panic after a generous bound).
fn wait_for(gateway: &Gateway, pred: impl Fn(&GatewayStats) -> bool, what: &str) {
    let start = Instant::now();
    loop {
        if pred(&gateway.stats()) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "timed out waiting for: {what}"
        );
        std::thread::yield_now();
    }
}

/// Two tenants, interleaved submissions: every result is bit-identical to
/// a serial session run of the right tenant's program, and both tenants'
/// counters conserve.
#[test]
fn two_tenants_serve_bit_identical_results() {
    let alpha = alpha_program();
    let beta = beta_program();
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        ..GatewayOptions::default()
    });
    gateway.register("alpha", alpha.clone()).unwrap();
    gateway.register("beta", beta.clone()).unwrap();

    let handles: Vec<(usize, &CompiledProgram, GatewayHandle)> = (0..12)
        .map(|i| {
            let (name, program) = if i % 2 == 0 {
                ("alpha", &alpha)
            } else {
                ("beta", &beta)
            };
            (i, program, gateway.submit(name, item(i), &["Y"]).unwrap())
        })
        .collect();
    for (i, program, handle) in handles {
        let response = must_resolve(handle).unwrap();
        assert_eq!(
            bits(&response.outputs["Y"]),
            bits(&reference(program, i)),
            "item {i} diverged from its tenant's serial reference"
        );
        assert!(response.batched_with >= 1);
    }
    let stats = gateway.stats();
    assert!(stats.conserves(), "counters must conserve: {stats:?}");
    assert_eq!(stats.tenants["alpha"].completed, 6);
    assert_eq!(stats.tenants["beta"].completed, 6);
    assert_eq!(stats.tenants["alpha"].failed, 0);
    assert!(stats.dispatches >= 2, "each tenant dispatches separately");
}

/// Equal-weight WDRR: a tenant with a small backlog drains while a hot
/// tenant with 4× the backlog is still being served — the hot tenant
/// cannot starve the small one.
#[test]
fn wdrr_small_tenant_is_not_starved_by_hot_tenant() {
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 2,
        max_wait: Duration::ZERO,
        queue_capacity: 64,
        ..GatewayOptions::default()
    });
    gateway.register("hot", alpha_program()).unwrap();
    gateway.register("small", beta_program()).unwrap();
    // Make each dispatch take real time so scheduling order is observable.
    for t in ["hot", "small"] {
        gateway
            .inject_faults(
                t,
                FaultPlan {
                    delay: Duration::from_millis(5),
                    ..FaultPlan::default()
                },
            )
            .unwrap();
    }

    let hot: Vec<_> = (0..16)
        .map(|i| gateway.submit("hot", item(i), &["Y"]).unwrap())
        .collect();
    let small: Vec<_> = (0..4)
        .map(|i| gateway.submit("small", item(i), &["Y"]).unwrap())
        .collect();
    for handle in small {
        must_resolve(handle).unwrap();
    }
    // Round-robin alternates tenants batch for batch, so when the small
    // tenant's 2 batches have completed the hot tenant can have consumed
    // only a comparable number of its 8 — most of its backlog remains.
    let hot_done = hot.iter().filter(|h| h.is_done()).count();
    assert!(
        hot_done < hot.len(),
        "fair scheduling must interleave: the hot tenant finished all \
         {} requests before the small tenant's 4 completed",
        hot.len()
    );
    for handle in hot {
        must_resolve(handle).unwrap();
    }
    assert!(gateway.stats().conserves());
}

/// Weighted WDRR: with equal backlogs, a weight-3 tenant earns three
/// consecutive batches per round-robin visit and drains well before its
/// weight-1 peer.
#[test]
fn wdrr_weight_skews_dispatch_share() {
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 2,
        max_wait: Duration::ZERO,
        ..GatewayOptions::default()
    });
    gateway
        .register_with(
            "heavy",
            alpha_program(),
            TenantConfig {
                weight: 3,
                queue_capacity: None,
            },
        )
        .unwrap();
    gateway.register("light", beta_program()).unwrap();
    for t in ["heavy", "light"] {
        gateway
            .inject_faults(
                t,
                FaultPlan {
                    delay: Duration::from_millis(3),
                    ..FaultPlan::default()
                },
            )
            .unwrap();
    }

    let heavy: Vec<_> = (0..12)
        .map(|i| gateway.submit("heavy", item(i), &["Y"]).unwrap())
        .collect();
    let light: Vec<_> = (0..12)
        .map(|i| gateway.submit("light", item(i), &["Y"]).unwrap())
        .collect();
    for handle in heavy {
        must_resolve(handle).unwrap();
    }
    let light_done = light.iter().filter(|h| h.is_done()).count();
    assert!(
        light_done < 12,
        "a weight-3 tenant must drain its backlog before its weight-1 \
         peer with an equal backlog (light had finished all 12)"
    );
    for handle in light {
        must_resolve(handle).unwrap();
    }
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["heavy"].weight, 3);
}

/// A full admission queue rejects immediately with a typed `Overloaded`
/// carrying a non-zero retry hint; queued peers are unaffected.
#[test]
fn overload_sheds_with_typed_hint() {
    const CAP: usize = 3;
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 64,                     // never fills
        max_wait: Duration::from_secs(30), // never lingers out in-test
        queue_capacity: CAP,
        ..GatewayOptions::default()
    });
    gateway.register("alpha", alpha_program()).unwrap();

    let queued: Vec<_> = (0..CAP)
        .map(|i| gateway.submit("alpha", item(i), &["Y"]).unwrap())
        .collect();
    for i in 0..3 {
        let rejected = gateway.submit("alpha", item(CAP + i), &["Y"]).unwrap();
        match rejected.try_wait() {
            Some(Err(ServeError::Overloaded { retry_after_hint })) => {
                assert!(
                    retry_after_hint >= Duration::from_millis(1),
                    "the hint must never tell clients to hammer immediately"
                );
            }
            other => panic!("expected an immediate Overloaded, got {other:?}"),
        }
    }
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["alpha"].overloaded, 3);
    assert_eq!(stats.tenants["alpha"].queue_depth, CAP);
    // Shutdown drains the queue: the admitted requests all complete.
    gateway.shutdown();
    for handle in queued {
        must_resolve(handle).unwrap();
    }
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["alpha"].completed, CAP as u64);
}

/// An injected panic on the first dispatch quarantines the session and the
/// idempotent request is retried to a bit-identical result; a
/// non-idempotent request resolves with the panic instead.
#[test]
fn panic_is_retried_for_idempotent_requests_only() {
    let program = alpha_program();
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 1,
        max_wait: Duration::ZERO,
        retry_budget: 2,
        retry_backoff: Duration::from_micros(100),
        breaker_threshold: 10, // keep the breaker out of this test
        ..GatewayOptions::default()
    });
    gateway.register("alpha", program.clone()).unwrap();
    gateway
        .inject_faults(
            "alpha",
            FaultPlan {
                panic_on: vec![1, 3],
                ..FaultPlan::default()
            },
        )
        .unwrap();

    // Dispatch #1 panics, the retry (dispatch #2) succeeds.
    let handle = gateway.submit("alpha", item(0), &["Y"]).unwrap();
    let response = must_resolve(handle).unwrap();
    assert_eq!(bits(&response.outputs["Y"]), bits(&reference(&program, 0)));

    // Dispatch #3 panics and the request opted out of retries.
    let fragile = gateway
        .submit_with(
            "alpha",
            item(1),
            &["Y"],
            SubmitOptions {
                deadline: None,
                idempotent: false,
            },
        )
        .unwrap();
    match must_resolve(fragile) {
        Err(ServeError::Panicked(msg)) => {
            assert!(msg.contains("injected fault"), "unexpected panic: {msg}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }

    let stats = gateway.stats();
    assert!(stats.conserves());
    let t = &stats.tenants["alpha"];
    assert_eq!(t.completed, 1);
    assert_eq!(t.failed, 1);
    assert_eq!(t.retried, 1);
    assert_eq!(t.panics, 2);
    assert_eq!(t.breaker, BreakerState::Closed);
    assert!(
        t.sessions_discarded >= 2,
        "each panic must quarantine its session (saw {})",
        t.sessions_discarded
    );
}

/// Repeated infrastructure failures trip the breaker: admissions are shed
/// early with `Degraded`, a half-open probe after the cooldown restores
/// the tenant, and other tenants keep serving throughout.
#[test]
fn breaker_trips_sheds_and_recovers_via_probe() {
    let cooldown = Duration::from_millis(40);
    let program = alpha_program();
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 1,
        max_wait: Duration::ZERO,
        retry_budget: 0, // failures resolve immediately
        breaker_threshold: 2,
        breaker_cooldown: cooldown,
        ..GatewayOptions::default()
    });
    gateway.register("alpha", program.clone()).unwrap();
    gateway.register("beta", beta_program()).unwrap();
    gateway
        .inject_faults(
            "alpha",
            FaultPlan {
                panic_every: Some(1), // every dispatch fails
                ..FaultPlan::default()
            },
        )
        .unwrap();

    // Two consecutive failures trip the breaker.
    for i in 0..2 {
        let handle = gateway.submit("alpha", item(i), &["Y"]).unwrap();
        match must_resolve(handle) {
            Err(ServeError::Panicked(_)) => {}
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
    let stats = gateway.stats();
    assert_eq!(stats.tenants["alpha"].breaker, BreakerState::Open);
    assert_eq!(stats.tenants["alpha"].breaker_trips, 1);

    // While open: load is shed at admission with a typed hint.
    let shed = gateway.submit("alpha", item(2), &["Y"]).unwrap();
    match shed.try_wait() {
        Some(Err(ServeError::Degraded { retry_after_hint })) => {
            assert!(retry_after_hint > Duration::ZERO);
            assert!(retry_after_hint <= cooldown);
        }
        other => panic!("expected an immediate Degraded, got {other:?}"),
    }
    // The healthy tenant is unaffected by its neighbour's outage.
    let healthy = gateway.submit("beta", item(0), &["Y"]).unwrap();
    must_resolve(healthy).unwrap();

    // Heal the backend, wait out the cooldown: the next request is the
    // half-open probe and its success closes the breaker.
    gateway
        .inject_faults("alpha", FaultPlan::default())
        .unwrap();
    std::thread::sleep(cooldown + Duration::from_millis(5));
    let probe = gateway.submit("alpha", item(3), &["Y"]).unwrap();
    let response = must_resolve(probe).unwrap();
    assert_eq!(bits(&response.outputs["Y"]), bits(&reference(&program, 3)));

    let stats = gateway.stats();
    assert!(stats.conserves());
    let t = &stats.tenants["alpha"];
    assert_eq!(t.breaker, BreakerState::Closed);
    assert_eq!(t.degraded, 1);
    assert_eq!(t.completed, 1);
    assert_eq!(t.failed, 2);
}

/// A failed half-open probe re-opens the breaker (and counts a second
/// trip); the next cooldown's probe then restores the tenant.
#[test]
fn failed_probe_reopens_breaker() {
    let cooldown = Duration::from_millis(30);
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 1,
        max_wait: Duration::ZERO,
        retry_budget: 0,
        breaker_threshold: 1, // first failure trips
        breaker_cooldown: cooldown,
        ..GatewayOptions::default()
    });
    gateway.register("alpha", alpha_program()).unwrap();
    gateway
        .inject_faults(
            "alpha",
            FaultPlan {
                panic_on: vec![1, 2], // the trip AND the first probe fail
                ..FaultPlan::default()
            },
        )
        .unwrap();

    let first = gateway.submit("alpha", item(0), &["Y"]).unwrap();
    assert!(must_resolve(first).is_err());
    assert_eq!(gateway.stats().tenants["alpha"].breaker, BreakerState::Open);

    std::thread::sleep(cooldown + Duration::from_millis(5));
    let probe = gateway.submit("alpha", item(1), &["Y"]).unwrap();
    assert!(
        must_resolve(probe).is_err(),
        "dispatch #2 is the failing probe"
    );
    let stats = gateway.stats();
    assert_eq!(stats.tenants["alpha"].breaker, BreakerState::Open);
    assert_eq!(stats.tenants["alpha"].breaker_trips, 2);

    std::thread::sleep(cooldown + Duration::from_millis(5));
    let retry = gateway.submit("alpha", item(2), &["Y"]).unwrap();
    must_resolve(retry).unwrap();
    assert_eq!(
        gateway.stats().tenants["alpha"].breaker,
        BreakerState::Closed
    );
}

/// Forced session-checkout failure is a typed, retryable infrastructure
/// error: with budget it recovers, without it the handle carries
/// `ServeError::Checkout`.
#[test]
fn checkout_failure_is_typed_and_retryable() {
    let program = alpha_program();
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 1,
        max_wait: Duration::ZERO,
        retry_budget: 1,
        retry_backoff: Duration::from_micros(100),
        breaker_threshold: 10,
        ..GatewayOptions::default()
    });
    gateway.register("alpha", program.clone()).unwrap();
    gateway
        .inject_faults(
            "alpha",
            FaultPlan {
                checkout_fail_on: vec![1, 3, 4],
                ..FaultPlan::default()
            },
        )
        .unwrap();

    // Dispatch #1 fails checkout, the retry (#2) succeeds.
    let recovered = gateway.submit("alpha", item(0), &["Y"]).unwrap();
    let response = must_resolve(recovered).unwrap();
    assert_eq!(bits(&response.outputs["Y"]), bits(&reference(&program, 0)));

    // Dispatches #3 and #4 both fail: the budget (1 retry) is exhausted.
    let doomed = gateway.submit("alpha", item(1), &["Y"]).unwrap();
    match must_resolve(doomed) {
        Err(ServeError::Checkout(msg)) => {
            assert!(msg.contains("injected fault"), "unexpected message: {msg}")
        }
        other => panic!("expected Checkout, got {other:?}"),
    }

    let stats = gateway.stats();
    assert!(stats.conserves());
    let t = &stats.tenants["alpha"];
    assert_eq!(t.checkout_failures, 3);
    assert_eq!(t.retried, 2);
    assert_eq!(t.completed, 1);
    assert_eq!(t.failed, 1);
    assert_eq!(
        t.sessions_discarded, 0,
        "a checkout failure never touches (so never quarantines) a session"
    );
}

/// A request whose retry is waiting out its backoff is still cancellable —
/// `cancel` succeeds, the handle resolves `Cancelled`, counters conserve.
#[test]
fn cancel_succeeds_mid_retry_backoff() {
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 1,
        max_wait: Duration::ZERO,
        retry_budget: 2,
        retry_backoff: Duration::from_millis(500), // long enough to race
        breaker_threshold: 10,
        ..GatewayOptions::default()
    });
    gateway.register("alpha", alpha_program()).unwrap();
    gateway
        .inject_faults(
            "alpha",
            FaultPlan {
                panic_on: vec![1],
                ..FaultPlan::default()
            },
        )
        .unwrap();

    let handle = gateway.submit("alpha", item(0), &["Y"]).unwrap();
    wait_for(
        &gateway,
        |s| s.tenants["alpha"].retried == 1,
        "the first dispatch to panic and requeue",
    );
    assert!(
        handle.cancel(),
        "a request awaiting its retry backoff must be cancellable"
    );
    match must_resolve(handle) {
        Err(ServeError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["alpha"].cancelled, 1);
    assert_eq!(stats.tenants["alpha"].completed, 0);
}

/// A deadline expires *in the gateway queue* on time (not at the end of
/// the linger window), with the typed `DeadlineExceeded` rejection.
#[test]
fn deadline_expires_in_queue_on_time() {
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 64,
        max_wait: Duration::from_secs(30), // linger far longer than the test
        ..GatewayOptions::default()
    });
    gateway.register("alpha", alpha_program()).unwrap();
    let submitted = Instant::now();
    let handle = gateway
        .submit_with(
            "alpha",
            item(0),
            &["Y"],
            SubmitOptions {
                deadline: Some(Duration::from_millis(20)),
                idempotent: true,
            },
        )
        .unwrap();
    match must_resolve(handle) {
        Err(ServeError::DeadlineExceeded { missed_by }) => {
            assert!(missed_by > Duration::ZERO);
            assert!(
                submitted.elapsed() < Duration::from_secs(5),
                "rejection must arrive at the deadline, not the linger end"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["alpha"].expired, 1);
    assert_eq!(stats.tenants["alpha"].batches, 0);
}

/// Graceful reload: the call blocks until in-flight requests drained
/// against the old plan, already-queued and new requests run on the new
/// one, and no handle is lost across the swap.
#[test]
fn reload_drains_old_plan_and_swaps() {
    let v1 = alpha_program();
    let v2 = alpha_v2_program();
    let gateway = Gateway::new(GatewayOptions {
        max_batch: 4,
        max_wait: Duration::ZERO,
        ..GatewayOptions::default()
    });
    gateway.register("alpha", v1.clone()).unwrap();
    // Slow dispatches down so requests are genuinely in flight at reload.
    gateway
        .inject_faults(
            "alpha",
            FaultPlan {
                delay: Duration::from_millis(10),
                ..FaultPlan::default()
            },
        )
        .unwrap();

    let old_handles: Vec<_> = (0..4)
        .map(|i| gateway.submit("alpha", item(i), &["Y"]).unwrap())
        .collect();
    // Wait until the whole wave is dispatched (claimed, in flight) so the
    // reload below must actually drain it.
    wait_for(
        &gateway,
        |s| s.tenants["alpha"].in_flight > 0 && s.tenants["alpha"].queue_depth == 0,
        "the first wave to be dispatched",
    );
    gateway.reload("alpha", v2.clone()).unwrap();
    // The drain guarantee: by the time reload returns, everything that was
    // in flight on the old plan has resolved.
    for (i, handle) in old_handles.into_iter().enumerate() {
        let response = handle
            .try_wait()
            .expect("reload must have drained all in-flight requests")
            .unwrap();
        assert_eq!(
            bits(&response.outputs["Y"]),
            bits(&reference(&v1, i)),
            "drained item {i} must have run on the old program"
        );
    }
    let stats = gateway.stats();
    assert_eq!(stats.tenants["alpha"].epoch, 2);
    assert_eq!(stats.tenants["alpha"].completed, 4);

    // New submissions land on the recompiled program.
    let new_handles: Vec<_> = (0..4)
        .map(|i| gateway.submit("alpha", item(i), &["Y"]).unwrap())
        .collect();
    for (i, handle) in new_handles.into_iter().enumerate() {
        let response = must_resolve(handle).unwrap();
        assert_eq!(
            bits(&response.outputs["Y"]),
            bits(&reference(&v2, i)),
            "post-reload item {i} must run on the new program"
        );
    }
    assert!(gateway.stats().conserves());
    // Reloading an unknown tenant is a typed error.
    assert_eq!(
        gateway.reload("nope", v2).unwrap_err(),
        GatewayError::UnknownTenant("nope".to_string())
    );
}

/// Old-plan results are bit-exact against the old program even when
/// reloads race the dispatcher from another thread.
#[test]
fn concurrent_reloads_never_tear_results() {
    let v1 = alpha_program();
    let v2 = alpha_v2_program();
    let ref_v1 = bits(&reference(&v1, 0));
    let ref_v2 = bits(&reference(&v2, 0));
    let gateway = Arc::new(Gateway::new(GatewayOptions {
        max_batch: 2,
        max_wait: Duration::ZERO,
        ..GatewayOptions::default()
    }));
    gateway.register("alpha", v1.clone()).unwrap();

    std::thread::scope(|scope| {
        let reloader = {
            let gateway = Arc::clone(&gateway);
            let (v1, v2) = (v1.clone(), v2.clone());
            scope.spawn(move || {
                for round in 0..6 {
                    let next = if round % 2 == 0 {
                        v2.clone()
                    } else {
                        v1.clone()
                    };
                    gateway.reload("alpha", next).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        // Every submission uses item(0): whichever plan a request lands
        // on, its result must be bit-exact for *that* plan — never a blend.
        for _ in 0..40 {
            let handle = gateway.submit("alpha", item(0), &["Y"]).unwrap();
            let response = must_resolve(handle).unwrap();
            let got = bits(&response.outputs["Y"]);
            assert!(
                got == ref_v1 || got == ref_v2,
                "reload tore a result: matches neither plan's reference"
            );
        }
        reloader.join().unwrap();
    });
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["alpha"].epoch, 7, "1 + 6 reloads");
    assert_eq!(stats.tenants["alpha"].completed, 40);
}

/// Satellite: shutdown under load with injected faults.  A tenant is
/// mid-retry when the gateway drops; every handle resolves exactly once
/// with a typed outcome, and a sampler asserts counter conservation on
/// every snapshot it takes while the drain races on.
#[test]
fn shutdown_under_load_resolves_every_handle_exactly_once() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const THREADS: usize = 4;
    const PER_THREAD: usize = 10;
    let gateway = Arc::new(Gateway::new(GatewayOptions {
        max_batch: 2,
        max_wait: Duration::from_millis(1),
        queue_capacity: 16,
        retry_budget: 3,
        retry_backoff: Duration::from_millis(20), // long: shutdown races it
        breaker_threshold: 100,                   // keep admissions open under the fault storm
        ..GatewayOptions::default()
    }));
    gateway.register("alpha", alpha_program()).unwrap();
    gateway.register("beta", beta_program()).unwrap();
    // Panic storms on both tenants keep retries permanently in the air.
    for t in ["alpha", "beta"] {
        gateway
            .inject_faults(
                t,
                FaultPlan {
                    panic_every: Some(3),
                    delay: Duration::from_micros(200),
                    ..FaultPlan::default()
                },
            )
            .unwrap();
    }

    let done = AtomicBool::new(false);
    let resolved = std::sync::Mutex::new(0usize);
    std::thread::scope(|scope| {
        let sampler = {
            let gateway = Arc::clone(&gateway);
            let done = &done;
            scope.spawn(move || {
                let mut samples = 0u64;
                while !done.load(Ordering::Acquire) {
                    let stats = gateway.stats();
                    assert!(
                        stats.conserves(),
                        "torn snapshot under faulted shutdown: {stats:?}"
                    );
                    samples += 1;
                }
                samples
            })
        };
        let submitters: Vec<_> = (0..THREADS)
            .map(|t| {
                let gateway = Arc::clone(&gateway);
                let resolved = &resolved;
                scope.spawn(move || {
                    let tenant = if t % 2 == 0 { "alpha" } else { "beta" };
                    for i in 0..PER_THREAD {
                        let idx = t * PER_THREAD + i;
                        let deadline = idx.is_multiple_of(3).then(|| Duration::from_millis(50));
                        let Ok(handle) = gateway.submit_with(
                            tenant,
                            item(idx),
                            &["Y"],
                            SubmitOptions {
                                deadline,
                                idempotent: true,
                            },
                        ) else {
                            panic!("registered tenants must accept submissions");
                        };
                        // Exactly-once: the bounded wait flags a lost
                        // handle; any typed outcome is legal under the
                        // storm (completed, panicked after budget,
                        // overloaded, expired, shutdown...).
                        let _ = must_resolve(handle);
                        *resolved.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        // Let the storm develop, then yank the gateway mid-retry.
        std::thread::sleep(Duration::from_millis(15));
        gateway.shutdown();
        for submitter in submitters {
            submitter.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let samples = sampler.join().unwrap();
        assert!(samples > 0, "the sampler must have observed the run");
    });

    assert_eq!(
        *resolved.lock().unwrap(),
        THREADS * PER_THREAD,
        "every submitted handle must resolve exactly once"
    );
    let stats = gateway.stats();
    assert!(stats.conserves(), "final snapshot must conserve: {stats:?}");
    for (name, t) in &stats.tenants {
        assert_eq!(t.queue_depth, 0, "{name}: queue must be drained");
        assert_eq!(t.in_flight, 0, "{name}: nothing may remain in flight");
    }
}

/// Gateway-level registry errors are typed: unknown tenant on submit,
/// duplicate registration, and post-shutdown registration/submission.
#[test]
fn registry_errors_are_typed() {
    let gateway = Gateway::new(GatewayOptions::default());
    gateway.register("alpha", alpha_program()).unwrap();
    assert_eq!(
        gateway.submit("ghost", item(0), &["Y"]).unwrap_err(),
        GatewayError::UnknownTenant("ghost".to_string())
    );
    assert_eq!(
        gateway.register("alpha", beta_program()).unwrap_err(),
        GatewayError::DuplicateTenant("alpha".to_string())
    );
    assert_eq!(
        gateway
            .inject_faults("ghost", FaultPlan::default())
            .unwrap_err(),
        GatewayError::UnknownTenant("ghost".to_string())
    );
    gateway.shutdown();
    assert_eq!(
        gateway.register("late", beta_program()).unwrap_err(),
        GatewayError::ShuttingDown
    );
    assert_eq!(
        gateway.reload("alpha", beta_program()).unwrap_err(),
        GatewayError::ShuttingDown
    );
    // Submission to a *known* tenant after shutdown resolves through the
    // handle (one place to observe request fate), not as a call error.
    let late = gateway.submit("alpha", item(0), &["Y"]).unwrap();
    match late.try_wait() {
        Some(Err(ServeError::ShuttingDown)) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    let stats = gateway.stats();
    assert!(stats.conserves());
    assert_eq!(stats.tenants["alpha"].rejected, 1);
}

/// Engine integration: gradients served through a shared gateway are
/// bit-identical to blocking `GradientEngine::run`, submit-time validation
/// matches, and per-tenant stats flow through the client.
#[test]
fn engine_register_with_matches_blocking_run() {
    let kernel = npbench::kernel_by_name("atax").unwrap();
    let sizes = kernel.sizes(Preset::Test);
    let inputs_list = npbench::runner::batch_inputs(kernel.as_ref(), &sizes, 4);
    let sdfg = kernel.build_dace(&sizes);
    let syms = kernel.symbols(&sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &syms, &AdOptions::default()).unwrap();
    let blocking: Vec<_> = inputs_list.iter().map(|i| engine.run(i).unwrap()).collect();

    let gateway = Arc::new(Gateway::new(GatewayOptions {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        ..GatewayOptions::default()
    }));
    let client = engine
        .register_with(&gateway, "atax", TenantConfig::default())
        .unwrap();
    assert_eq!(client.tenant(), "atax");

    let handles: Vec<_> = inputs_list
        .iter()
        .map(|i| client.submit(i).unwrap())
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        assert!(
            handle.wait_timeout(Duration::from_secs(30)).is_some(),
            "gateway gradient handle lost"
        );
        let served = handle.wait().unwrap();
        assert_eq!(
            served.result.output_value.to_bits(),
            blocking[i].output_value.to_bits()
        );
        for (name, expected) in &blocking[i].gradients {
            assert_eq!(
                bits(&served.result.gradients[name]),
                bits(expected),
                "gradient of {name} diverged for gateway item {i}"
            );
        }
    }
    // Validation fires synchronously at submit, exactly like `run`.
    let mut typo = inputs_list[0].clone();
    typo.insert("NOPE".to_string(), Tensor::zeros(&[2]));
    match client.submit(&typo) {
        Err(EngineError::UnknownInput(name)) => assert_eq!(name, "NOPE"),
        other => panic!("expected UnknownInput, got {other:?}"),
    }
    // Duplicate tenant registration surfaces as a typed engine error.
    match engine.register_with(&gateway, "atax", TenantConfig::default()) {
        Err(EngineError::Gateway(GatewayError::DuplicateTenant(name))) => {
            assert_eq!(name, "atax")
        }
        other => panic!("expected DuplicateTenant, got {other:?}"),
    }
    let t = client.stats().expect("registered tenant has stats");
    assert!(t.conserves());
    assert_eq!(t.completed, 4);
    assert_eq!(t.breaker, BreakerState::Closed);
}
