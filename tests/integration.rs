//! Cross-crate integration tests: frontend → SDFG → AD engine → runtime,
//! validated against both the jax-rs baseline and finite differences.

use std::collections::HashMap;

use dace_ad_repro::ad::engine::finite_difference_gradient;
use dace_ad_repro::frontend::{elem, lit};
use dace_ad_repro::prelude::*;

fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// The paper's Fig. 2 running example: a time-step loop where only part of
/// the computation contributes to the dependent output.
fn fig2_program() -> Sdfg {
    let mut b = ProgramBuilder::new("fig2");
    let s = b.symbol("S");
    let tsteps = b.symbol("TSTEPS");
    for name in ["M", "N", "O", "E"] {
        b.add_input(name, vec![s.clone()]).unwrap();
    }
    for name in ["A", "B", "C"] {
        b.add_transient(name, vec![s.clone()]).unwrap();
    }
    b.add_scalar("OUT").unwrap();
    b.for_range("t", 0, tsteps.clone(), |b| {
        b.assign("A", ArrayExpr::a("M").mul(ArrayExpr::s(2.0)));
        b.assign("B", ArrayExpr::a("M").mul(ArrayExpr::s(3.0)));
        b.assign("C", ArrayExpr::a("N").mul(ArrayExpr::s(4.0)));
        b.accumulate("E", ArrayExpr::a("C"));
        b.accumulate("O", ArrayExpr::a("A").add(ArrayExpr::a("B")).sin());
    });
    b.sum_into("OUT", "O", false);
    b.build().unwrap()
}

#[test]
fn fig2_gradients_flow_only_through_the_ccs() {
    let fwd = fig2_program();
    let syms = symbols(&[("S", 6), ("TSTEPS", 3)]);
    let mut inputs = HashMap::new();
    for (name, seed) in [("M", 1u64), ("N", 2), ("O", 3), ("E", 4)] {
        inputs.insert(
            name.to_string(),
            dace_ad_repro::tensor::random::uniform(&[6], seed).scale(0.3),
        );
    }
    let mut engine =
        GradientEngine::new(&fwd, "OUT", &["M", "N"], &syms, &AdOptions::default()).unwrap();
    // N does not contribute to O, so its gradient container should not even
    // exist; M's gradient must match finite differences.
    assert!(engine.plan().gradient_of("M").is_some());
    assert!(engine.plan().gradient_of("N").is_none());
    let result = engine.run(&inputs).unwrap();
    let fd = finite_difference_gradient(&fwd, "OUT", "M", &syms, &inputs, 1e-6).unwrap();
    assert!(allclose(&result.gradients["M"], &fd, 1e-4, 1e-7));
}

#[test]
fn gradient_program_is_a_single_valid_sdfg() {
    let fwd = fig2_program();
    let engine = GradientEngine::new(
        &fwd,
        "OUT",
        &["M"],
        &symbols(&[("S", 4), ("TSTEPS", 2)]),
        &AdOptions::default(),
    )
    .unwrap();
    let plan = engine.plan();
    plan.sdfg.validate_strict().unwrap();
    assert!(plan.backward_start_index > 0);
    assert_eq!(plan.output, "OUT");
}

#[test]
fn npbench_kernel_matches_baseline_end_to_end() {
    // One vectorized and one loop kernel through the full public API.
    for name in ["k2mm", "trmm"] {
        let kernel = dace_ad_repro::npbench::kernel_by_name(name).unwrap();
        let sizes = kernel.sizes(dace_ad_repro::npbench::Preset::Test);
        let inputs = kernel.inputs(&sizes);
        let dace =
            dace_ad_repro::npbench::runner::run_dace_gradients(kernel.as_ref(), &sizes, &inputs)
                .unwrap();
        let jax = kernel.run_jax(&sizes, &inputs);
        for wrt in kernel.wrt() {
            assert!(
                allclose(&dace.gradients[wrt], &jax.gradients[wrt], 1e-5, 1e-7),
                "{name}: gradient of {wrt} differs"
            );
        }
    }
}

#[test]
fn ilp_checkpointing_respects_measured_memory_limit() {
    // Listing-1 style chain; limit set below the store-all measured peak.
    let mut b = ProgramBuilder::new("chain");
    let n = b.symbol("N");
    b.add_input("X", vec![n.clone(), n.clone()]).unwrap();
    for t in ["T1", "T2", "T3", "T4", "S1", "S2", "S3"] {
        b.add_transient(t, vec![n.clone(), n.clone()]).unwrap();
    }
    b.add_scalar("OUT").unwrap();
    b.assign("T1", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
    b.assign("S1", ArrayExpr::a("T1").sin());
    b.assign("T2", ArrayExpr::a("T1").mul(ArrayExpr::s(3.0)));
    b.assign("S2", ArrayExpr::a("T2").sin());
    b.assign("T3", ArrayExpr::a("T2").mul(ArrayExpr::s(4.0)));
    b.assign("S3", ArrayExpr::a("T3").sin());
    b.assign(
        "T4",
        ArrayExpr::a("S1")
            .add(ArrayExpr::a("S2"))
            .add(ArrayExpr::a("S3")),
    );
    b.sum_into("OUT", "T4", false);
    // The sin() sites force T1/T2/T3 to be forwarded to the backward pass;
    // all three are store/recompute candidates whose producer chains reach
    // back to the program input X.
    let fwd = b.build().unwrap();
    let syms = symbols(&[("N", 32)]);
    let mut inputs = HashMap::new();
    inputs.insert(
        "X".to_string(),
        dace_ad_repro::tensor::random::uniform(&[32, 32], 5),
    );

    let mut store = GradientEngine::new(&fwd, "OUT", &["X"], &syms, &AdOptions::default()).unwrap();
    let store_res = store.run(&inputs).unwrap();

    let limit = store_res.report.peak_bytes - 32 * 32 * 8;
    let mut ilp = GradientEngine::new(
        &fwd,
        "OUT",
        &["X"],
        &syms,
        &AdOptions {
            strategy: CheckpointStrategy::Ilp {
                memory_limit_bytes: limit,
            },
        },
    )
    .unwrap();
    let ilp_res = ilp.run(&inputs).unwrap();
    assert!(
        ilp_res.report.peak_bytes <= limit,
        "measured peak {} exceeds the limit {}",
        ilp_res.report.peak_bytes,
        limit
    );
    assert!(allclose(
        &store_res.gradients["X"],
        &ilp_res.gradients["X"],
        1e-8,
        1e-10
    ));
}

#[test]
fn session_reports_instrumentation() {
    let fwd = fig2_program();
    let syms = symbols(&[("S", 4), ("TSTEPS", 2)]);
    let mut session = compile(&fwd, &syms).unwrap().session();
    session.set_input("M", Tensor::ones(&[4])).unwrap();
    session.set_input("N", Tensor::ones(&[4])).unwrap();
    session.set_input("O", Tensor::zeros(&[4])).unwrap();
    session.set_input("E", Tensor::zeros(&[4])).unwrap();
    let report: ExecutionReport = session.run().unwrap();
    assert!(report.state_executions >= 10);
    assert!(report.map_points > 0);
    assert!(report.peak_bytes > 0);
    assert!(report.plan_cache_misses >= 1);
}

#[test]
fn seidel_style_loop_gradient_matches_finite_differences() {
    let mut b = ProgramBuilder::new("mini_seidel");
    let n = b.symbol("N");
    let t = b.symbol("T");
    b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
    b.add_scalar("OUT").unwrap();
    let (i, j) = (SymExpr::sym("i"), SymExpr::sym("j"));
    let one = SymExpr::int(1);
    b.for_range("t", 0, t.clone(), |b| {
        b.for_range("i", 1, n.sub(&one), |b| {
            b.for_range("j", 1, n.sub(&one), |b| {
                b.assign_element(
                    "A",
                    vec![i.clone(), j.clone()],
                    elem("A", vec![i.sub(&one), j.clone()])
                        .add(elem("A", vec![i.clone(), j.clone()]))
                        .add(elem("A", vec![i.add_int(1), j.clone()]))
                        .add(elem("A", vec![i.clone(), j.sub(&one)]))
                        .add(elem("A", vec![i.clone(), j.add_int(1)]))
                        .mul(lit(0.2)),
                );
            });
        });
    });
    b.sum_into("OUT", "A", false);
    let fwd = b.build().unwrap();
    let syms = symbols(&[("N", 5), ("T", 2)]);
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".to_string(),
        dace_ad_repro::tensor::random::uniform(&[5, 5], 11),
    );
    let mut engine =
        GradientEngine::new(&fwd, "OUT", &["A"], &syms, &AdOptions::default()).unwrap();
    let result = engine.run(&inputs).unwrap();
    let fd = finite_difference_gradient(&fwd, "OUT", "A", &syms, &inputs, 1e-6).unwrap();
    assert!(allclose(&result.gradients["A"], &fd, 1e-4, 1e-7));
}
