//! Regression tests for the plan cache's bounded-LRU behaviour and for the
//! fingerprint-collision echo.
//!
//! These tests mutate process-global cache state (capacity, entries), so
//! they live in their own integration binary and serialise themselves with
//! a file-local mutex: other test binaries run in separate processes and
//! are unaffected.

use std::collections::HashMap;
use std::sync::Mutex;

use dace_ad_repro::prelude::*;
use dace_ad_repro::runtime::{
    clear_plan_cache, debug_fingerprint_sdfg, debug_inject_plan_cache_alias, plan_cache_capacity,
    plan_cache_len, plan_cache_stats, set_plan_cache_capacity, DEFAULT_PLAN_CACHE_CAPACITY,
};
use dace_tensor::Tensor;

/// Serialises the tests in this binary (they mutate the process-wide cache).
static CACHE_GUARD: Mutex<()> = Mutex::new(());

fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// `OUT = X * scale` under a caller-chosen program and array name, so each
/// test mints structurally distinct SDFGs at will.
fn scale_program(name: &str, input: &str, scale: f64) -> dace_ad_repro::sdfg::Sdfg {
    let mut b = ProgramBuilder::new(name);
    let n = b.symbol("N");
    b.add_input(input, vec![n.clone()]).unwrap();
    b.add_input("OUT", vec![n.clone()]).unwrap();
    b.assign("OUT", ArrayExpr::a(input).mul(ArrayExpr::s(scale)));
    b.build().unwrap()
}

fn run_once(program: &CompiledProgram, input: &str, x: &[f64]) -> Vec<f64> {
    let mut session = program.session();
    session
        .set_input(input, Tensor::from_vec(x.to_vec(), &[x.len()]).unwrap())
        .unwrap();
    session.run().unwrap();
    session.array("OUT").unwrap().data().to_vec()
}

/// A sweep past the capacity evicts LRU entries instead of growing without
/// bound; hit/miss accounting stays correct across eviction, and evictions
/// are counted.
#[test]
fn lru_eviction_bounds_the_cache_and_keeps_counters_correct() {
    let _guard = CACHE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    clear_plan_cache();
    set_plan_cache_capacity(2);
    assert_eq!(plan_cache_capacity(), 2);

    let syms = symbols(&[("N", 4)]);
    let a = scale_program("lru_a", "X", 2.0);
    let b = scale_program("lru_b", "X", 3.0);
    let c = scale_program("lru_c", "X", 4.0);

    let before = plan_cache_stats();
    let pa = compile(&a, &syms).unwrap();
    assert!(!pa.cache_hit());
    let pb = compile(&b, &syms).unwrap();
    assert!(!pb.cache_hit());
    assert_eq!(plan_cache_len(), 2);

    // Touch A so B becomes the LRU entry, then insert C: B is evicted.
    assert!(compile(&a, &syms).unwrap().cache_hit());
    let pc = compile(&c, &syms).unwrap();
    assert!(!pc.cache_hit());
    assert_eq!(plan_cache_len(), 2, "the cache must stay at its capacity");
    let after = plan_cache_stats();
    assert_eq!(after.evictions - before.evictions, 1, "one LRU eviction");

    // A stayed (recently used), B was evicted: recompiling B is a genuine
    // second lowering and the fresh entry starts over at misses == 1.
    assert!(compile(&a, &syms).unwrap().cache_hit());
    let pb2 = compile(&b, &syms).unwrap();
    assert!(!pb2.cache_hit(), "an evicted entry must recompile");
    assert_eq!(pb2.cache_stats().misses, 1);
    assert_eq!(pb2.cache_stats().hits, 0);
    let final_stats = plan_cache_stats();
    assert_eq!(
        final_stats.misses - before.misses,
        4,
        "A, B, C and the post-eviction B recompile each lowered once"
    );
    assert_eq!(
        final_stats.hits - before.hits,
        2,
        "the two post-touch compiles of A were the only hits"
    );
    // Evicted plans stay alive through their programs' own Arcs.
    assert_eq!(
        run_once(&pb, "X", &[1.0, 2.0, 3.0, 4.0]),
        [3.0, 6.0, 9.0, 12.0]
    );

    set_plan_cache_capacity(DEFAULT_PLAN_CACHE_CAPACITY);
    clear_plan_cache();
}

/// Shrinking the capacity below the current population evicts immediately.
#[test]
fn shrinking_capacity_evicts_immediately() {
    let _guard = CACHE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    clear_plan_cache();
    set_plan_cache_capacity(DEFAULT_PLAN_CACHE_CAPACITY);

    let syms = symbols(&[("N", 4)]);
    for i in 0..5 {
        let p = scale_program(&format!("shrink_{i}"), "X", i as f64 + 1.0);
        compile(&p, &syms).unwrap();
    }
    assert_eq!(plan_cache_len(), 5);
    let before = plan_cache_stats();
    set_plan_cache_capacity(2);
    assert_eq!(plan_cache_len(), 2);
    assert_eq!(plan_cache_stats().evictions - before.evictions, 3);
    // Capacity is clamped to at least one plan.
    set_plan_cache_capacity(0);
    assert_eq!(plan_cache_capacity(), 1);
    assert_eq!(plan_cache_len(), 1);

    set_plan_cache_capacity(DEFAULT_PLAN_CACHE_CAPACITY);
    clear_plan_cache();
}

/// A forged fingerprint collision is detected via the structural echo and
/// treated as a miss: the victim recompiles and computes *its own* program,
/// never the donor's plan.
#[test]
fn fingerprint_collision_recompiles_instead_of_serving_wrong_plan() {
    let _guard = CACHE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    clear_plan_cache();
    set_plan_cache_capacity(DEFAULT_PLAN_CACHE_CAPACITY);

    let syms = symbols(&[("N", 4)]);
    // Donor and victim differ structurally (different input array name and
    // scale), so their echoes differ — as two genuinely colliding programs
    // would.
    let donor = scale_program("collision_donor", "A", 10.0);
    let victim = scale_program("collision_victim", "X", 2.0);

    // Forge the collision: the donor's plan is cached under the *victim's*
    // fingerprint.
    let forged = debug_fingerprint_sdfg(&victim);
    assert_ne!(forged, debug_fingerprint_sdfg(&donor));
    debug_inject_plan_cache_alias(&donor, &syms, forged);

    let before = plan_cache_stats();
    let program = compile(&victim, &syms).unwrap();
    assert!(
        !program.cache_hit(),
        "a collision must be treated as a miss, not a hit"
    );
    let after = plan_cache_stats();
    assert_eq!(after.collisions - before.collisions, 1);
    assert_eq!(after.misses - before.misses, 1);

    // The recompiled plan computes the victim's semantics (x2), not the
    // donor's (x10) — with the old code this returned [10, 20, 30, 40].
    assert_eq!(
        run_once(&program, "X", &[1.0, 2.0, 3.0, 4.0]),
        [2.0, 4.0, 6.0, 8.0]
    );

    // The colliding entry was replaced: compiling the victim again is now a
    // clean hit on its own plan.
    let again = compile(&victim, &syms).unwrap();
    assert!(again.cache_hit());
    assert_eq!(plan_cache_stats().collisions, after.collisions);

    clear_plan_cache();
}
