//! # dace-ilp
//!
//! A small, dependency-free integer linear programming solver used by the
//! automatic checkpointing pass of DaCe AD (Section IV of the paper).
//!
//! The paper formulates the store-vs-recompute decision as a 0/1 ILP with one
//! binary decision variable per forwarded array container and one constraint
//! per entry of the memory-measurement sequence.  The number of decision
//! variables is therefore small (the paper emphasises this as a design
//! advantage over Checkmate's per-operator variables), so a textbook
//! branch-and-bound over an LP relaxation solved with dense simplex is more
//! than adequate.
//!
//! * [`lp`] — a dense Big-M simplex solver for problems in the form
//!   `minimize c·x  s.t.  A·x ≤ b, 0 ≤ x ≤ u`.
//! * [`ilp`] — branch and bound on top of the LP relaxation for variables
//!   marked as binary, with an exhaustive-search fallback used in tests to
//!   cross-validate optimality.

#![forbid(unsafe_code)]

pub mod ilp;
pub mod lp;

pub use ilp::{IlpProblem, IlpSolution, IlpStatus, VarKind};
pub use lp::{LpProblem, LpSolution, LpStatus};
