//! Branch-and-bound 0/1 integer programming on top of the LP relaxation.

use crate::lp::{LpProblem, LpStatus};

/// Kind of a decision variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous variable in `[0, upper]`.
    Continuous,
    /// Binary variable in `{0, 1}`.
    Binary,
}

/// Solve status of an ILP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IlpStatus {
    /// Optimal integer solution found.
    Optimal,
    /// No feasible integer assignment exists.
    Infeasible,
}

/// An integer linear program: `minimize c·x  s.t.  A·x ≤ b`, with a kind per
/// variable.
#[derive(Clone, Debug, Default)]
pub struct IlpProblem {
    /// Underlying LP (upper bounds of binary variables are set to 1).
    pub lp: LpProblem,
    /// Kind of each variable.
    pub kinds: Vec<VarKind>,
}

/// Solution of an ILP.
#[derive(Clone, Debug)]
pub struct IlpSolution {
    /// Solve status.
    pub status: IlpStatus,
    /// Variable assignment (binary variables are exactly 0.0 or 1.0).
    pub values: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Number of branch-and-bound nodes explored (diagnostics; the paper
    /// reports a 6.4 ms solve for its three-variable example).
    pub nodes_explored: usize,
}

impl IlpProblem {
    /// Create a problem with the given variable kinds.
    pub fn new(kinds: Vec<VarKind>) -> Self {
        let mut lp = LpProblem::new(kinds.len());
        for (i, k) in kinds.iter().enumerate() {
            if *k == VarKind::Binary {
                lp.set_upper_bound(i, 1.0);
            }
        }
        IlpProblem { lp, kinds }
    }

    /// Convenience constructor: `n` binary variables.
    pub fn binary(n: usize) -> Self {
        Self::new(vec![VarKind::Binary; n])
    }

    /// Set an objective coefficient.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        self.lp.set_objective(var, coeff);
    }

    /// Add a `row · x ≤ rhs` constraint.
    pub fn add_le_constraint(&mut self, row: Vec<f64>, rhs: f64) {
        self.lp.add_le_constraint(row, rhs);
    }

    /// Add a `row · x ≥ rhs` constraint.
    pub fn add_ge_constraint(&mut self, row: Vec<f64>, rhs: f64) {
        self.lp.add_ge_constraint(row, rhs);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// Solve by branch and bound over the LP relaxation.
    pub fn solve(&self) -> IlpSolution {
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;
        self.branch(&self.lp, &mut best, &mut nodes, 0);
        match best {
            Some((obj, values)) => IlpSolution {
                status: IlpStatus::Optimal,
                values,
                objective: obj,
                nodes_explored: nodes,
            },
            None => IlpSolution {
                status: IlpStatus::Infeasible,
                values: Vec::new(),
                objective: f64::INFINITY,
                nodes_explored: nodes,
            },
        }
    }

    fn branch(
        &self,
        lp: &LpProblem,
        best: &mut Option<(f64, Vec<f64>)>,
        nodes: &mut usize,
        depth: usize,
    ) {
        *nodes += 1;
        if *nodes > 100_000 || depth > 4 * self.num_vars() + 16 {
            return; // safety net; never reached by the checkpointing problems
        }
        let relax = lp.solve();
        if relax.status != LpStatus::Optimal {
            return;
        }
        // Bound: prune if the relaxation cannot improve on the incumbent.
        if let Some((incumbent, _)) = best {
            if relax.objective >= *incumbent - 1e-9 {
                return;
            }
        }
        // Find the most fractional binary variable.
        let mut branch_var: Option<usize> = None;
        let mut most_frac = 1e-6;
        for (i, kind) in self.kinds.iter().enumerate() {
            if *kind != VarKind::Binary {
                continue;
            }
            let v = relax.values[i];
            let frac = (v - v.round()).abs();
            if frac > most_frac {
                most_frac = frac;
                branch_var = Some(i);
            }
        }
        match branch_var {
            None => {
                // Integral solution.
                let mut values = relax.values.clone();
                for (i, kind) in self.kinds.iter().enumerate() {
                    if *kind == VarKind::Binary {
                        values[i] = values[i].round();
                    }
                }
                let obj: f64 = self
                    .lp
                    .objective
                    .iter()
                    .zip(values.iter())
                    .map(|(&c, &v)| c * v)
                    .sum();
                if best.as_ref().map(|(b, _)| obj < *b - 1e-12).unwrap_or(true) {
                    *best = Some((obj, values));
                }
            }
            Some(var) => {
                // Branch x = 0 then x = 1 (fix via tight bounds).
                for &fix in &[0.0, 1.0] {
                    let mut child = lp.clone();
                    let mut row = vec![0.0; self.num_vars()];
                    row[var] = 1.0;
                    if fix == 0.0 {
                        child.add_le_constraint(row, 0.0);
                    } else {
                        child.add_ge_constraint(row, 1.0);
                    }
                    self.branch(&child, best, nodes, depth + 1);
                }
            }
        }
    }

    /// Exhaustively enumerate all binary assignments (continuous variables
    /// unsupported).  Used to cross-validate the branch-and-bound solver in
    /// tests; practical for up to ~20 binary variables.
    pub fn solve_exhaustive(&self) -> IlpSolution {
        assert!(
            self.kinds.iter().all(|k| *k == VarKind::Binary),
            "exhaustive solve supports binary-only problems"
        );
        let n = self.num_vars();
        assert!(n <= 24, "too many variables for exhaustive search");
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;
        for mask in 0u64..(1u64 << n) {
            nodes += 1;
            let x: Vec<f64> = (0..n)
                .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                .collect();
            let feasible = self
                .lp
                .rows
                .iter()
                .zip(self.lp.rhs.iter())
                .all(|(row, &rhs)| {
                    row.iter().zip(x.iter()).map(|(&a, &v)| a * v).sum::<f64>() <= rhs + 1e-9
                });
            if !feasible {
                continue;
            }
            let obj: f64 = self
                .lp
                .objective
                .iter()
                .zip(x.iter())
                .map(|(&c, &v)| c * v)
                .sum();
            if best.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                best = Some((obj, x));
            }
        }
        match best {
            Some((obj, values)) => IlpSolution {
                status: IlpStatus::Optimal,
                values,
                objective: obj,
                nodes_explored: nodes,
            },
            None => IlpSolution {
                status: IlpStatus::Infeasible,
                values: Vec::new(),
                objective: f64::INFINITY,
                nodes_explored: nodes,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_style_problem() {
        // maximize 5a + 4b + 3c  s.t. 2a + 3b + c <= 5  (binary)
        // => minimize -(5a + 4b + 3c)
        let mut ilp = IlpProblem::binary(3);
        ilp.set_objective(0, -5.0);
        ilp.set_objective(1, -4.0);
        ilp.set_objective(2, -3.0);
        ilp.add_le_constraint(vec![2.0, 3.0, 1.0], 5.0);
        let sol = ilp.solve();
        assert_eq!(sol.status, IlpStatus::Optimal);
        // best is a + c (value 8, weight 3) or a + b (9, weight 5) -> a + b wins
        assert_eq!(sol.values, vec![1.0, 1.0, 0.0]);
        assert!((sol.objective + 9.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut ilp = IlpProblem::binary(2);
        ilp.add_ge_constraint(vec![1.0, 1.0], 3.0); // impossible with two binaries
        let sol = ilp.solve();
        assert_eq!(sol.status, IlpStatus::Infeasible);
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        // Deterministic pseudo-random instances (LCG) cross-validated against
        // exhaustive enumeration.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (u32::MAX as f64)) * 2.0 - 1.0
        };
        for _case in 0..20 {
            let n = 5;
            let mut ilp = IlpProblem::binary(n);
            for i in 0..n {
                ilp.set_objective(i, (next() * 10.0).round());
            }
            for _ in 0..3 {
                let row: Vec<f64> = (0..n).map(|_| (next() * 5.0).round()).collect();
                let rhs = (next().abs() * 8.0).round();
                ilp.add_le_constraint(row, rhs);
            }
            let bb = ilp.solve();
            let ex = ilp.solve_exhaustive();
            assert_eq!(bb.status, ex.status);
            if bb.status == IlpStatus::Optimal {
                assert!(
                    (bb.objective - ex.objective).abs() < 1e-6,
                    "bb {} vs exhaustive {}",
                    bb.objective,
                    ex.objective
                );
            }
        }
    }

    #[test]
    fn paper_motivating_example_shape() {
        // Section IV-A: three arrays of 50 MiB each; storing all three would
        // exceed a 500 MiB limit given ~400 MiB of program context, so exactly
        // one must be recomputed and the solver should pick the cheapest (A0).
        // minimize c0(1-v0) + c1(1-v1) + c2(1-v2), c = [13, 26, 39]
        // equivalently minimize -13 v0 - 26 v1 - 39 v2 (+ constant 78)
        let mut ilp = IlpProblem::binary(3);
        ilp.set_objective(0, -13.0);
        ilp.set_objective(1, -26.0);
        ilp.set_objective(2, -39.0);
        // peak memory ~ base 400 + 50*(v0+v1+v2) <= 500  => v0+v1+v2 <= 2
        ilp.add_le_constraint(vec![50.0, 50.0, 50.0], 100.0);
        let sol = ilp.solve();
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert_eq!(
            sol.values,
            vec![0.0, 1.0, 1.0],
            "store A1, A2; recompute A0"
        );
    }

    #[test]
    fn continuous_and_binary_mix() {
        // minimize -x - y with x binary, y continuous <= 2.5, x + y <= 3
        let mut ilp = IlpProblem::new(vec![VarKind::Binary, VarKind::Continuous]);
        ilp.set_objective(0, -1.0);
        ilp.set_objective(1, -1.0);
        ilp.lp.set_upper_bound(1, 2.5);
        ilp.add_le_constraint(vec![1.0, 1.0], 3.0);
        let sol = ilp.solve();
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert_eq!(sol.values[0], 1.0);
        assert!((sol.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn all_store_fits_when_limit_is_loose() {
        let mut ilp = IlpProblem::binary(3);
        ilp.set_objective(0, -13.0);
        ilp.set_objective(1, -26.0);
        ilp.set_objective(2, -39.0);
        ilp.add_le_constraint(vec![50.0, 50.0, 50.0], 1000.0);
        let sol = ilp.solve();
        assert_eq!(sol.values, vec![1.0, 1.0, 1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// Branch-and-bound solutions are feasible and match exhaustive search.
        #[test]
        fn bb_matches_exhaustive(
            costs in proptest::collection::vec(-10i32..10, 4),
            rows in proptest::collection::vec(proptest::collection::vec(-4i32..5, 4), 1..4),
            rhs in proptest::collection::vec(0i32..10, 3),
        ) {
            let n = costs.len();
            let mut ilp = IlpProblem::binary(n);
            for (i, &c) in costs.iter().enumerate() {
                ilp.set_objective(i, c as f64);
            }
            for (k, row) in rows.iter().enumerate() {
                let r: Vec<f64> = row.iter().map(|&v| v as f64).collect();
                let b = rhs.get(k).copied().unwrap_or(5) as f64;
                ilp.add_le_constraint(r, b);
            }
            let bb = ilp.solve();
            let ex = ilp.solve_exhaustive();
            prop_assert_eq!(bb.status, ex.status);
            if bb.status == IlpStatus::Optimal {
                prop_assert!((bb.objective - ex.objective).abs() < 1e-6);
                // feasibility of the returned assignment
                for (row, &b) in ilp.lp.rows.iter().zip(ilp.lp.rhs.iter()) {
                    let lhs: f64 = row.iter().zip(bb.values.iter()).map(|(&a, &v)| a * v).sum();
                    prop_assert!(lhs <= b + 1e-6);
                }
            }
        }
    }
}
