//! Dense Big-M simplex solver for linear programs of the form
//!
//! ```text
//! minimize    c · x
//! subject to  A · x ≤ b          (general rows, b may be negative)
//!             0 ≤ x ≤ u          (optional per-variable upper bounds)
//! ```
//!
//! The implementation is a textbook tableau simplex with Bland's anti-cycling
//! rule.  Rows with negative right-hand sides are normalised into ≥ rows and
//! receive an artificial variable with a Big-M objective penalty.  Problem
//! sizes produced by the checkpointing model are tiny (tens of variables,
//! hundreds of rows), so no sparsity or numerical refinements are needed.

/// Outcome classification of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// A linear program in `minimize c·x s.t. A·x ≤ b, 0 ≤ x ≤ u` form.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    /// Objective coefficients (length = number of variables).
    pub objective: Vec<f64>,
    /// Constraint matrix rows.
    pub rows: Vec<Vec<f64>>,
    /// Right-hand sides, one per row.
    pub rhs: Vec<f64>,
    /// Optional upper bounds per variable (`None` = unbounded above).
    pub upper_bounds: Vec<Option<f64>>,
}

/// Solution of an LP.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Status of the solve.
    pub status: LpStatus,
    /// Optimal variable assignment (empty unless `Optimal`).
    pub values: Vec<f64>,
    /// Optimal objective value (`f64::INFINITY` when infeasible).
    pub objective: f64,
}

impl LpProblem {
    /// Create a problem with `n` variables and no constraints.
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
            rhs: Vec::new(),
            upper_bounds: vec![None; num_vars],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Set the objective coefficient of a variable.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Add a `row · x ≤ rhs` constraint.
    pub fn add_le_constraint(&mut self, row: Vec<f64>, rhs: f64) {
        assert_eq!(row.len(), self.num_vars(), "constraint arity mismatch");
        self.rows.push(row);
        self.rhs.push(rhs);
    }

    /// Add a `row · x ≥ rhs` constraint (stored as `-row · x ≤ -rhs`).
    pub fn add_ge_constraint(&mut self, row: Vec<f64>, rhs: f64) {
        self.add_le_constraint(row.iter().map(|v| -v).collect(), -rhs);
    }

    /// Set an upper bound for a variable.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) {
        self.upper_bounds[var] = Some(bound);
    }

    /// Solve with the Big-M simplex method.
    pub fn solve(&self) -> LpSolution {
        let n = self.num_vars();
        // Materialise upper bounds as rows.
        let mut rows = self.rows.clone();
        let mut rhs = self.rhs.clone();
        for (i, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(u) = ub {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                rows.push(row);
                rhs.push(*u);
            }
        }
        let m = rows.len();
        if m == 0 {
            // Unconstrained: optimum is 0 for non-negative costs, else unbounded.
            if self.objective.iter().all(|&c| c >= 0.0) {
                return LpSolution {
                    status: LpStatus::Optimal,
                    values: vec![0.0; n],
                    objective: 0.0,
                };
            }
            return LpSolution {
                status: LpStatus::Unbounded,
                values: Vec::new(),
                objective: f64::NEG_INFINITY,
            };
        }

        // Big-M magnitude scaled to the data.
        let max_abs = self
            .objective
            .iter()
            .chain(rhs.iter())
            .chain(rows.iter().flatten())
            .fold(1.0f64, |acc, &v| acc.max(v.abs()));
        let big_m = max_abs * 1e6;

        // Columns: n structural + m slack/surplus + (#artificial).
        let mut artificial_rows: Vec<usize> = Vec::new();
        for (i, &b) in rhs.iter().enumerate() {
            if b < 0.0 {
                artificial_rows.push(i);
            }
        }
        let num_art = artificial_rows.len();
        let total_cols = n + m + num_art;

        // Build tableau: one row per constraint, plus objective row.
        let mut tab = vec![vec![0.0f64; total_cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut art_idx = 0usize;
        for i in 0..m {
            let negate = rhs[i] < 0.0;
            let sign = if negate { -1.0 } else { 1.0 };
            for j in 0..n {
                tab[i][j] = sign * rows[i][j];
            }
            // slack (for ≤) or surplus (for normalised ≥) column.
            tab[i][n + i] = if negate { -1.0 } else { 1.0 };
            tab[i][total_cols] = sign * rhs[i];
            if negate {
                let a_col = n + m + art_idx;
                tab[i][a_col] = 1.0;
                basis[i] = a_col;
                art_idx += 1;
            } else {
                basis[i] = n + i;
            }
        }

        // Objective coefficients (minimisation): structural costs + Big-M on artificials.
        let mut cost = vec![0.0f64; total_cols];
        cost[..n].copy_from_slice(&self.objective);
        for k in 0..num_art {
            cost[n + m + k] = big_m;
        }

        // Reduced-cost row: z_j - c_j computed on demand.
        let max_iters = 50 * (total_cols + m);
        for _ in 0..max_iters {
            // Compute reduced costs: c_j - c_B · B^-1 A_j using the tableau.
            let mut entering: Option<usize> = None;
            let mut best = -1e-9;
            for j in 0..total_cols {
                if basis.contains(&j) {
                    continue;
                }
                let mut zj = 0.0;
                for i in 0..m {
                    zj += cost[basis[i]] * tab[i][j];
                }
                let reduced = cost[j] - zj;
                if reduced < best {
                    best = reduced;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                break; // optimal
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                if tab[i][enter] > 1e-9 {
                    let ratio = tab[i][total_cols] / tab[i][enter];
                    if ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return LpSolution {
                    status: LpStatus::Unbounded,
                    values: Vec::new(),
                    objective: f64::NEG_INFINITY,
                };
            };
            // Pivot.
            let pivot = tab[leave][enter];
            for v in tab[leave].iter_mut() {
                *v /= pivot;
            }
            for i in 0..m {
                if i != leave && tab[i][enter].abs() > 1e-12 {
                    let factor = tab[i][enter];
                    // Index loop: rows `i` and `leave` alias the same matrix.
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..=total_cols {
                        tab[i][j] -= factor * tab[leave][j];
                    }
                }
            }
            basis[leave] = enter;
        }

        // Extract solution.
        let mut values = vec![0.0f64; total_cols];
        for i in 0..m {
            values[basis[i]] = tab[i][total_cols];
        }
        // Any artificial variable left in the basis with a positive value
        // means the original problem is infeasible.
        for k in 0..num_art {
            if values[n + m + k] > 1e-6 {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: Vec::new(),
                    objective: f64::INFINITY,
                };
            }
        }
        let x: Vec<f64> = values[..n].to_vec();
        let objective = self
            .objective
            .iter()
            .zip(x.iter())
            .map(|(&c, &v)| c * v)
            .sum();
        LpSolution {
            status: LpStatus::Optimal,
            values: x,
            objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_minimization() {
        // minimize -x - 2y s.t. x + y <= 4, x <= 3, y <= 2
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -2.0);
        lp.add_le_constraint(vec![1.0, 1.0], 4.0);
        lp.set_upper_bound(0, 3.0);
        lp.set_upper_bound(1, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[1], 2.0);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.objective, -6.0);
    }

    #[test]
    fn ge_constraints_via_negative_rhs() {
        // minimize x + y s.t. x + y >= 3, x <= 5, y <= 5
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_ge_constraint(vec![1.0, 1.0], 3.0);
        lp.set_upper_bound(0, 5.0);
        lp.set_upper_bound(1, 5.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut lp = LpProblem::new(1);
        lp.set_objective(0, 1.0);
        lp.add_le_constraint(vec![1.0], 1.0);
        lp.add_ge_constraint(vec![1.0], 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // minimize -x with no constraints binding x above
        let mut lp = LpProblem::new(1);
        lp.set_objective(0, -1.0);
        lp.add_ge_constraint(vec![1.0], 0.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn unconstrained_nonnegative_costs() {
        let mut lp = LpProblem::new(3);
        lp.set_objective(0, 1.0);
        lp.set_objective(2, 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints; just make sure it terminates optimally.
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        for _ in 0..5 {
            lp.add_le_constraint(vec![1.0, 1.0], 2.0);
        }
        lp.add_le_constraint(vec![1.0, 0.0], 2.0);
        lp.add_le_constraint(vec![0.0, 1.0], 2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -2.0);
    }

    #[test]
    fn binding_mix_of_bounds_and_rows() {
        // minimize 2x + 3y s.t. x + 2y >= 4, x >= 0, y >= 0, x <= 10, y <= 10
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_ge_constraint(vec![1.0, 2.0], 4.0);
        lp.set_upper_bound(0, 10.0);
        lp.set_upper_bound(1, 10.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Cheapest way to satisfy x + 2y >= 4 is y = 2 (cost 6) vs x = 4 (cost 8).
        assert_close(sol.objective, 6.0);
    }
}
