//! Frontend expression types: whole-array expressions and element expressions.
//!
//! These are the NumPy-flavoured surface syntax of the builder; they lower to
//! SDFG maps, tasklets and memlets in `lower.rs`.

use dace_sdfg::{BinOp, SymExpr, UnOp};

/// A whole-array element-wise expression (NumPy-style ufunc arithmetic).
///
/// All array operands must have the same shape as the assignment target;
/// scalars broadcast.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrayExpr {
    /// Reference to a whole array.
    Ref(String),
    /// Scalar constant broadcast over the output shape.
    Scalar(f64),
    /// Element-wise unary operation.
    Unary(UnOp, Box<ArrayExpr>),
    /// Element-wise binary operation.
    Binary(BinOp, Box<ArrayExpr>, Box<ArrayExpr>),
}

// By-value `add`/`sub`/`mul`/`div`/`neg` builders are the DSL surface, not
// operator-trait candidates (they build IR nodes, the receiver is consumed).
#[allow(clippy::should_implement_trait)]
impl ArrayExpr {
    /// Reference an array by name.
    pub fn a(name: impl Into<String>) -> Self {
        ArrayExpr::Ref(name.into())
    }

    /// Scalar constant.
    pub fn s(v: f64) -> Self {
        ArrayExpr::Scalar(v)
    }

    /// `self + other`
    pub fn add(self, other: ArrayExpr) -> Self {
        ArrayExpr::Binary(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`
    pub fn sub(self, other: ArrayExpr) -> Self {
        ArrayExpr::Binary(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other` (element-wise)
    pub fn mul(self, other: ArrayExpr) -> Self {
        ArrayExpr::Binary(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other` (element-wise)
    pub fn div(self, other: ArrayExpr) -> Self {
        ArrayExpr::Binary(BinOp::Div, Box::new(self), Box::new(other))
    }

    /// `self ** e`
    pub fn pow(self, e: f64) -> Self {
        ArrayExpr::Binary(BinOp::Pow, Box::new(self), Box::new(ArrayExpr::Scalar(e)))
    }

    /// Element-wise `sin`.
    pub fn sin(self) -> Self {
        ArrayExpr::Unary(UnOp::Sin, Box::new(self))
    }

    /// Element-wise `cos`.
    pub fn cos(self) -> Self {
        ArrayExpr::Unary(UnOp::Cos, Box::new(self))
    }

    /// Element-wise `exp`.
    pub fn exp(self) -> Self {
        ArrayExpr::Unary(UnOp::Exp, Box::new(self))
    }

    /// Element-wise natural logarithm.
    pub fn log(self) -> Self {
        ArrayExpr::Unary(UnOp::Log, Box::new(self))
    }

    /// Element-wise `sqrt`.
    pub fn sqrt(self) -> Self {
        ArrayExpr::Unary(UnOp::Sqrt, Box::new(self))
    }

    /// Element-wise `tanh`.
    pub fn tanh(self) -> Self {
        ArrayExpr::Unary(UnOp::Tanh, Box::new(self))
    }

    /// Element-wise ReLU.
    pub fn relu(self) -> Self {
        ArrayExpr::Unary(UnOp::Relu, Box::new(self))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(self) -> Self {
        ArrayExpr::Unary(UnOp::Sigmoid, Box::new(self))
    }

    /// Element-wise negation.
    pub fn neg(self) -> Self {
        ArrayExpr::Unary(UnOp::Neg, Box::new(self))
    }

    /// Arrays referenced by the expression.
    pub fn arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_arrays(&mut out);
        out
    }

    fn collect_arrays(&self, out: &mut Vec<String>) {
        match self {
            ArrayExpr::Ref(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            ArrayExpr::Scalar(_) => {}
            ArrayExpr::Unary(_, a) => a.collect_arrays(out),
            ArrayExpr::Binary(_, a, b) => {
                a.collect_arrays(out);
                b.collect_arrays(out);
            }
        }
    }
}

/// A scalar element expression: reads individual array elements at symbolic
/// indices (used for element assignments and map bodies).
#[derive(Clone, Debug, PartialEq)]
pub enum ElemExpr {
    /// Constant.
    Const(f64),
    /// `array[indices]`
    Elem(String, Vec<SymExpr>),
    /// Integer iteration symbol promoted to float.
    Iter(String),
    /// Unary operation.
    Un(UnOp, Box<ElemExpr>),
    /// Binary operation.
    Bin(BinOp, Box<ElemExpr>, Box<ElemExpr>),
}

/// Shorthand: reference `array[indices]`.
pub fn elem(array: impl Into<String>, indices: Vec<SymExpr>) -> ElemExpr {
    ElemExpr::Elem(array.into(), indices)
}

/// Shorthand: a constant element expression.
pub fn lit(v: f64) -> ElemExpr {
    ElemExpr::Const(v)
}

/// Shorthand: an iteration symbol as a value.
pub fn iter_val(name: impl Into<String>) -> ElemExpr {
    ElemExpr::Iter(name.into())
}

#[allow(clippy::should_implement_trait)]
impl ElemExpr {
    /// `self + other`
    pub fn add(self, other: ElemExpr) -> Self {
        ElemExpr::Bin(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`
    pub fn sub(self, other: ElemExpr) -> Self {
        ElemExpr::Bin(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`
    pub fn mul(self, other: ElemExpr) -> Self {
        ElemExpr::Bin(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other`
    pub fn div(self, other: ElemExpr) -> Self {
        ElemExpr::Bin(BinOp::Div, Box::new(self), Box::new(other))
    }

    /// `self ** e` (constant exponent)
    pub fn pow(self, e: f64) -> Self {
        ElemExpr::Bin(BinOp::Pow, Box::new(self), Box::new(ElemExpr::Const(e)))
    }

    /// `max(self, other)`
    pub fn max(self, other: ElemExpr) -> Self {
        ElemExpr::Bin(BinOp::Max, Box::new(self), Box::new(other))
    }

    /// `min(self, other)`
    pub fn min(self, other: ElemExpr) -> Self {
        ElemExpr::Bin(BinOp::Min, Box::new(self), Box::new(other))
    }

    /// `sin(self)`
    pub fn sin(self) -> Self {
        ElemExpr::Un(UnOp::Sin, Box::new(self))
    }

    /// `cos(self)`
    pub fn cos(self) -> Self {
        ElemExpr::Un(UnOp::Cos, Box::new(self))
    }

    /// `exp(self)`
    pub fn exp(self) -> Self {
        ElemExpr::Un(UnOp::Exp, Box::new(self))
    }

    /// `ln(self)`
    pub fn log(self) -> Self {
        ElemExpr::Un(UnOp::Log, Box::new(self))
    }

    /// `sqrt(self)`
    pub fn sqrt(self) -> Self {
        ElemExpr::Un(UnOp::Sqrt, Box::new(self))
    }

    /// `tanh(self)`
    pub fn tanh(self) -> Self {
        ElemExpr::Un(UnOp::Tanh, Box::new(self))
    }

    /// ReLU.
    pub fn relu(self) -> Self {
        ElemExpr::Un(UnOp::Relu, Box::new(self))
    }

    /// Sigmoid.
    pub fn sigmoid(self) -> Self {
        ElemExpr::Un(UnOp::Sigmoid, Box::new(self))
    }

    /// Negation.
    pub fn neg(self) -> Self {
        ElemExpr::Un(UnOp::Neg, Box::new(self))
    }

    /// The distinct `(array, indices)` element reads in the expression, in
    /// first-appearance order.
    pub fn element_reads(&self) -> Vec<(String, Vec<SymExpr>)> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<(String, Vec<SymExpr>)>) {
        match self {
            ElemExpr::Const(_) | ElemExpr::Iter(_) => {}
            ElemExpr::Elem(name, idx) => {
                let key = (name.clone(), idx.clone());
                if !out.contains(&key) {
                    out.push(key);
                }
            }
            ElemExpr::Un(_, a) => a.collect_reads(out),
            ElemExpr::Bin(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_expr_collects_references() {
        let e = ArrayExpr::a("A")
            .mul(ArrayExpr::a("B"))
            .add(ArrayExpr::a("A"))
            .sin();
        assert_eq!(e.arrays(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn elem_expr_collects_distinct_reads() {
        let i = SymExpr::sym("i");
        let e = elem("A", vec![i.clone()])
            .add(elem("A", vec![i.clone()]))
            .mul(elem("B", vec![i.add_int(1)]));
        let reads = e.element_reads();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].0, "A");
        assert_eq!(reads[1].0, "B");
    }

    #[test]
    fn builders_compose() {
        let e = lit(2.0)
            .mul(iter_val("i"))
            .add(elem("X", vec![SymExpr::int(0)]).exp());
        assert_eq!(e.element_reads().len(), 1);
    }
}
