//! # dace-frontend
//!
//! A NumPy-like program builder that lowers to SDFGs, standing in for the
//! Python/NumPy (and PyTorch/ONNX/Fortran) frontends of DaCe and DaCeML.
//! Every builder statement corresponds to one line of the original NumPy
//! program; the statement count is the "lines of code" proxy used by the
//! Fig. 11 program-size comparison.

#![forbid(unsafe_code)]

pub mod builder;
pub mod expr;

pub use builder::ProgramBuilder;
pub use expr::{elem, iter_val, lit, ArrayExpr, ElemExpr};

/// Convenience alias used by examples: an element expression.
pub type ScalarRef = ElemExpr;
