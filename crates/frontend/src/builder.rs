//! The NumPy-like program builder and its lowering to SDFGs.
//!
//! Every builder statement corresponds to one line of the NumPy program the
//! paper's Python frontend would consume (`A = 2 * M`, `O += np.sin(A + B)`,
//! a `for` loop header, an element assignment inside a loop, ...).  Each
//! statement lowers to its own SDFG state containing the equivalent dataflow
//! (maps + tasklets, or a library node), and control-flow statements build
//! the structured loop/branch regions of the IR.

use std::collections::HashMap;

use dace_sdfg::{
    ArrayDesc, BranchRegion, CondExpr, ControlFlow, DType, DataflowGraph, LibraryOp, LoopRegion,
    MapScope, Memlet, ScalarExpr, Sdfg, SdfgError, State, SymExpr, Tasklet,
};

use crate::expr::{ArrayExpr, ElemExpr};

/// Builder for SDFG programs with a NumPy-flavoured statement API.
pub struct ProgramBuilder {
    sdfg: Sdfg,
    frames: Vec<Vec<ControlFlow>>,
    statement_count: usize,
    state_counter: usize,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            sdfg: Sdfg::new(name),
            frames: vec![Vec::new()],
            statement_count: 0,
            state_counter: 0,
        }
    }

    /// Declare (and return) a symbolic problem size such as `N`.
    pub fn symbol(&mut self, name: &str) -> SymExpr {
        self.sdfg.add_symbol(name);
        SymExpr::sym(name)
    }

    /// Declare a non-transient (input/output) array.
    pub fn add_input(&mut self, name: &str, shape: Vec<SymExpr>) -> Result<(), SdfgError> {
        self.sdfg.add_array(name, ArrayDesc::input(shape))
    }

    /// Declare a non-transient array with an explicit element type.
    pub fn add_input_typed(
        &mut self,
        name: &str,
        shape: Vec<SymExpr>,
        dtype: DType,
    ) -> Result<(), SdfgError> {
        let mut desc = ArrayDesc::input(shape);
        desc.dtype = dtype;
        self.sdfg.add_array(name, desc)
    }

    /// Declare a transient array.
    pub fn add_transient(&mut self, name: &str, shape: Vec<SymExpr>) -> Result<(), SdfgError> {
        self.sdfg.add_array(name, ArrayDesc::transient(shape))
    }

    /// Declare a `[1]`-shaped non-transient scalar container.
    pub fn add_scalar(&mut self, name: &str) -> Result<(), SdfgError> {
        self.sdfg
            .add_array(name, ArrayDesc::input(vec![SymExpr::int(1)]))
    }

    /// Number of statements issued so far (used as the "lines of code" proxy
    /// in the Fig. 11 program-size comparison).
    pub fn statement_count(&self) -> usize {
        self.statement_count
    }

    /// Finish and validate the SDFG.
    pub fn build(mut self) -> Result<Sdfg, SdfgError> {
        assert_eq!(self.frames.len(), 1, "unclosed control-flow region");
        let items = self.frames.pop().unwrap();
        self.sdfg.cfg = ControlFlow::Sequence(items);
        self.sdfg.validate_strict()?;
        Ok(self.sdfg)
    }

    // ----- statement helpers -------------------------------------------------

    fn push(&mut self, cf: ControlFlow) {
        self.frames.last_mut().expect("frame stack").push(cf);
    }

    fn add_state(&mut self, label: &str, graph: DataflowGraph) -> usize {
        let name = format!("{label}_{}", self.state_counter);
        self.state_counter += 1;
        self.sdfg.add_state(State { name, graph })
    }

    fn push_state(&mut self, label: &str, graph: DataflowGraph) {
        let id = self.add_state(label, graph);
        self.push(ControlFlow::State(id));
        self.statement_count += 1;
    }

    // ----- whole-array statements -------------------------------------------

    /// `dst = expr` (element-wise over the whole array).
    pub fn assign(&mut self, dst: &str, expr: ArrayExpr) {
        let graph = self.lower_elementwise(dst, &expr, false);
        self.push_state(&format!("assign_{dst}"), graph);
    }

    /// `dst += expr` (element-wise accumulation).
    pub fn accumulate(&mut self, dst: &str, expr: ArrayExpr) {
        let graph = self.lower_elementwise(dst, &expr, true);
        self.push_state(&format!("accumulate_{dst}"), graph);
    }

    /// `dst = a @ b` (matrix-matrix multiplication library node).
    pub fn matmul(&mut self, dst: &str, a: &str, b: &str) {
        let mut g = DataflowGraph::new();
        let an = g.add_access(a);
        let bn = g.add_access(b);
        let mm = g.add_library(LibraryOp::MatMul);
        let cn = g.add_access(dst);
        g.add_edge(an, None, mm, Some("A"), Memlet::all(a));
        g.add_edge(bn, None, mm, Some("B"), Memlet::all(b));
        g.add_edge(mm, Some("C"), cn, None, Memlet::all(dst));
        self.push_state(&format!("matmul_{dst}"), g);
    }

    /// `dst = a @ x` (matrix-vector multiplication library node).
    pub fn matvec(&mut self, dst: &str, a: &str, x: &str) {
        let mut g = DataflowGraph::new();
        let an = g.add_access(a);
        let xn = g.add_access(x);
        let mv = g.add_library(LibraryOp::MatVec);
        let yn = g.add_access(dst);
        g.add_edge(an, None, mv, Some("A"), Memlet::all(a));
        g.add_edge(xn, None, mv, Some("x"), Memlet::all(x));
        g.add_edge(mv, Some("y"), yn, None, Memlet::all(dst));
        self.push_state(&format!("matvec_{dst}"), g);
    }

    /// `dst = a^T` (2-D transpose library node).
    pub fn transpose(&mut self, dst: &str, a: &str) {
        let mut g = DataflowGraph::new();
        let an = g.add_access(a);
        let tn = g.add_library(LibraryOp::Transpose);
        let bn = g.add_access(dst);
        g.add_edge(an, None, tn, Some("A"), Memlet::all(a));
        g.add_edge(tn, Some("B"), bn, None, Memlet::all(dst));
        self.push_state(&format!("transpose_{dst}"), g);
    }

    /// `dst = copy(src)` (full-array copy library node).
    pub fn copy(&mut self, dst: &str, src: &str) {
        let mut g = DataflowGraph::new();
        let an = g.add_access(src);
        let cp = g.add_library(LibraryOp::Copy);
        let bn = g.add_access(dst);
        g.add_edge(an, None, cp, Some("A"), Memlet::all(src));
        g.add_edge(cp, Some("B"), bn, None, Memlet::all(dst));
        self.push_state(&format!("copy_{dst}"), g);
    }

    /// `dst[0] = sum(src)` or `dst[0] += sum(src)`.
    ///
    /// This is the reduction the paper appends to every NPBench program to
    /// obtain a scalar dependent variable for reverse-mode AD.
    pub fn sum_into(&mut self, dst: &str, src: &str, accumulate: bool) {
        let mut g = DataflowGraph::new();
        let an = g.add_access(src);
        let rn = g.add_library(LibraryOp::SumReduce { accumulate });
        let sn = g.add_access(dst);
        g.add_edge(an, None, rn, Some("IN"), Memlet::all(src));
        let memlet = if accumulate {
            Memlet::all(dst).with_wcr_sum()
        } else {
            Memlet::all(dst)
        };
        g.add_edge(rn, Some("OUT"), sn, None, memlet);
        self.push_state(&format!("sum_{dst}"), g);
    }

    // ----- element statements ------------------------------------------------

    /// `dst[idx] = expr` (single element assignment; `idx` may reference loop
    /// iterators of enclosing `for_range` regions).
    pub fn assign_element(&mut self, dst: &str, idx: Vec<SymExpr>, expr: ElemExpr) {
        let graph = lower_elem_tasklet(dst, &idx, &expr, false);
        self.push_state(&format!("set_{dst}"), graph);
    }

    /// `dst[idx] += expr`.
    pub fn accumulate_element(&mut self, dst: &str, idx: Vec<SymExpr>, expr: ElemExpr) {
        let graph = lower_elem_tasklet(dst, &idx, &expr, true);
        self.push_state(&format!("acc_{dst}"), graph);
    }

    /// A parallel map `for params in ranges: dst[dst_idx] = expr`.
    pub fn map_assign(
        &mut self,
        dst: &str,
        params: &[(&str, SymExpr, SymExpr)],
        dst_idx: Vec<SymExpr>,
        expr: ElemExpr,
    ) {
        let graph = self.lower_map(dst, params, dst_idx, &expr, false);
        self.push_state(&format!("map_{dst}"), graph);
    }

    /// A parallel map `for params in ranges: dst[dst_idx] += expr`.
    pub fn map_accumulate(
        &mut self,
        dst: &str,
        params: &[(&str, SymExpr, SymExpr)],
        dst_idx: Vec<SymExpr>,
        expr: ElemExpr,
    ) {
        let graph = self.lower_map(dst, params, dst_idx, &expr, true);
        self.push_state(&format!("mapacc_{dst}"), graph);
    }

    // ----- control flow -------------------------------------------------------

    /// `for var in start..end` (step 1) with the body built by `f`.
    pub fn for_range(
        &mut self,
        var: &str,
        start: impl Into<SymExpr>,
        end: impl Into<SymExpr>,
        f: impl FnOnce(&mut Self),
    ) {
        self.for_range_step(var, start, end, SymExpr::int(1), f);
    }

    /// `for var in start..end step step` with the body built by `f`.
    pub fn for_range_step(
        &mut self,
        var: &str,
        start: impl Into<SymExpr>,
        end: impl Into<SymExpr>,
        step: impl Into<SymExpr>,
        f: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        f(self);
        let items = self.frames.pop().expect("loop frame");
        let region = ControlFlow::Loop(LoopRegion {
            var: var.to_string(),
            start: start.into(),
            end: end.into(),
            step: step.into(),
            body: Box::new(ControlFlow::Sequence(items)),
        });
        self.push(region);
        self.statement_count += 1; // the loop header is one line
    }

    /// `if cond { then } else { otherwise }`.
    #[allow(clippy::type_complexity)]
    pub fn branch(
        &mut self,
        cond: CondExpr,
        then_f: impl FnOnce(&mut Self),
        else_f: Option<Box<dyn FnOnce(&mut Self) + '_>>,
    ) {
        self.frames.push(Vec::new());
        then_f(self);
        let then_items = self.frames.pop().expect("then frame");
        let else_body = if let Some(f) = else_f {
            self.frames.push(Vec::new());
            f(self);
            let else_items = self.frames.pop().expect("else frame");
            Some(Box::new(ControlFlow::Sequence(else_items)))
        } else {
            None
        };
        self.push(ControlFlow::Branch(BranchRegion {
            cond,
            then_body: Box::new(ControlFlow::Sequence(then_items)),
            else_body,
        }));
        self.statement_count += 1; // the `if` header is one line
    }

    // ----- lowering -----------------------------------------------------------

    fn lower_elementwise(
        &mut self,
        dst: &str,
        expr: &ArrayExpr,
        accumulate: bool,
    ) -> DataflowGraph {
        let dims = self
            .sdfg
            .arrays
            .get(dst)
            .map(|d| d.shape.clone())
            .unwrap_or_default();
        let params: Vec<String> = (0..dims.len()).map(|d| format!("__i{d}")).collect();
        let idx: Vec<SymExpr> = params.iter().map(|p| SymExpr::sym(p.clone())).collect();

        // Body: tasklet reading each referenced array at [params].
        let mut body = DataflowGraph::new();
        let mut renames: HashMap<String, String> = HashMap::new();
        let scalar = array_expr_to_scalar(expr, &idx, &mut renames);
        let tasklet = body.add_tasklet(Tasklet::new("ew", "out", scalar));
        for (array, conn) in &renames {
            let acc = body.add_access(array);
            body.add_edge(
                acc,
                None,
                tasklet,
                Some(conn),
                Memlet::element(array, idx.clone()),
            );
        }
        let dst_acc = body.add_access(dst);
        let memlet = if accumulate {
            Memlet::element(dst, idx.clone()).with_wcr_sum()
        } else {
            Memlet::element(dst, idx.clone())
        };
        body.add_edge(tasklet, Some("out"), dst_acc, None, memlet);

        // Outer graph: access nodes -> map -> dst access node.
        let mut g = DataflowGraph::new();
        let mut srcs = Vec::new();
        for array in expr.arrays() {
            srcs.push((array.clone(), g.add_access(&array)));
        }
        let map = g.add_map(MapScope {
            params: params.clone(),
            ranges: dims.iter().map(|d| (SymExpr::int(0), d.clone())).collect(),
            body,
            parallel: true,
        });
        let dst_out = g.add_access(dst);
        for (array, node) in srcs {
            g.add_edge(node, None, map, None, Memlet::all(array));
        }
        let outer_memlet = if accumulate {
            Memlet::all(dst).with_wcr_sum()
        } else {
            Memlet::all(dst)
        };
        g.add_edge(map, None, dst_out, None, outer_memlet);
        g
    }

    fn lower_map(
        &mut self,
        dst: &str,
        params: &[(&str, SymExpr, SymExpr)],
        dst_idx: Vec<SymExpr>,
        expr: &ElemExpr,
        accumulate: bool,
    ) -> DataflowGraph {
        let body = lower_elem_tasklet(dst, &dst_idx, expr, accumulate);
        let mut g = DataflowGraph::new();
        let mut srcs = Vec::new();
        for (array, _) in expr.element_reads() {
            if !srcs.iter().any(|(a, _): &(String, usize)| *a == array) {
                let node = g.add_access(&array);
                srcs.push((array, node));
            }
        }
        let map = g.add_map(MapScope {
            params: params.iter().map(|(p, _, _)| p.to_string()).collect(),
            ranges: params
                .iter()
                .map(|(_, lo, hi)| (lo.clone(), hi.clone()))
                .collect(),
            body,
            parallel: true,
        });
        let dst_out = g.add_access(dst);
        for (array, node) in srcs {
            g.add_edge(node, None, map, None, Memlet::all(array));
        }
        let memlet = if accumulate {
            Memlet::all(dst).with_wcr_sum()
        } else {
            Memlet::all(dst)
        };
        g.add_edge(map, None, dst_out, None, memlet);
        g
    }
}

/// Lower an element expression to a single-tasklet dataflow graph writing
/// `dst[dst_idx]`.
fn lower_elem_tasklet(
    dst: &str,
    dst_idx: &[SymExpr],
    expr: &ElemExpr,
    accumulate: bool,
) -> DataflowGraph {
    let mut g = DataflowGraph::new();
    let reads = expr.element_reads();
    // Connector per distinct (array, index) read.
    let mut connectors: Vec<(String, Vec<SymExpr>, String)> = Vec::new();
    for (k, (array, idx)) in reads.iter().enumerate() {
        connectors.push((array.clone(), idx.clone(), format!("in{k}")));
    }
    let scalar = elem_expr_to_scalar(expr, &connectors);
    let tasklet = g.add_tasklet(Tasklet::new("elem", "out", scalar));
    // One access node per distinct array.
    let mut access: HashMap<String, usize> = HashMap::new();
    for (array, idx, conn) in &connectors {
        let node = *access
            .entry(array.clone())
            .or_insert_with(|| g.add_access(array));
        g.add_edge(
            node,
            None,
            tasklet,
            Some(conn),
            Memlet::element(array, idx.clone()),
        );
    }
    let dst_node = g.add_access(dst);
    let memlet = if accumulate {
        Memlet::element(dst, dst_idx.to_vec()).with_wcr_sum()
    } else {
        Memlet::element(dst, dst_idx.to_vec())
    };
    g.add_edge(tasklet, Some("out"), dst_node, None, memlet);
    g
}

/// Convert a whole-array expression into a tasklet scalar expression reading
/// each referenced array at `idx`.  `renames` maps array names to connector
/// names (one connector per array).
fn array_expr_to_scalar(
    expr: &ArrayExpr,
    _idx: &[SymExpr],
    renames: &mut HashMap<String, String>,
) -> ScalarExpr {
    match expr {
        ArrayExpr::Ref(name) => {
            let next = renames.len();
            let conn = renames
                .entry(name.clone())
                .or_insert_with(|| format!("in{next}"))
                .clone();
            ScalarExpr::Input(conn)
        }
        ArrayExpr::Scalar(v) => ScalarExpr::Const(*v),
        ArrayExpr::Unary(op, a) => {
            ScalarExpr::Un(*op, Box::new(array_expr_to_scalar(a, _idx, renames)))
        }
        ArrayExpr::Binary(op, a, b) => ScalarExpr::Bin(
            *op,
            Box::new(array_expr_to_scalar(a, _idx, renames)),
            Box::new(array_expr_to_scalar(b, _idx, renames)),
        ),
    }
}

/// Convert an element expression into a tasklet scalar expression given the
/// connector assignment for each distinct element read.
fn elem_expr_to_scalar(
    expr: &ElemExpr,
    connectors: &[(String, Vec<SymExpr>, String)],
) -> ScalarExpr {
    match expr {
        ElemExpr::Const(v) => ScalarExpr::Const(*v),
        ElemExpr::Iter(name) => ScalarExpr::Iter(name.clone()),
        ElemExpr::Elem(array, idx) => {
            let conn = connectors
                .iter()
                .find(|(a, i, _)| a == array && i == idx)
                .map(|(_, _, c)| c.clone())
                .expect("connector registered for every element read");
            ScalarExpr::Input(conn)
        }
        ElemExpr::Un(op, a) => ScalarExpr::Un(*op, Box::new(elem_expr_to_scalar(a, connectors))),
        ElemExpr::Bin(op, a, b) => ScalarExpr::Bin(
            *op,
            Box::new(elem_expr_to_scalar(a, connectors)),
            Box::new(elem_expr_to_scalar(b, connectors)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{elem, lit};
    use dace_runtime::compile;
    use dace_tensor::Tensor;

    fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn elementwise_assignment_runs() {
        let mut b = ProgramBuilder::new("ew");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Y", vec![n.clone()]).unwrap();
        b.add_input("Z", vec![n.clone()]).unwrap();
        b.assign(
            "Z",
            ArrayExpr::a("X")
                .mul(ArrayExpr::a("Y"))
                .add(ArrayExpr::s(1.0)),
        );
        let sdfg = b.build().unwrap();
        let mut ex = compile(&sdfg, &symbols(&[("N", 4)])).unwrap().session();
        ex.set_input(
            "X",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap(),
        )
        .unwrap();
        ex.set_input(
            "Y",
            Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[4]).unwrap(),
        )
        .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Z").unwrap().data(), &[6.0, 13.0, 22.0, 33.0]);
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let mut b = ProgramBuilder::new("acc");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Z", vec![n.clone()]).unwrap();
        b.accumulate("Z", ArrayExpr::a("X"));
        b.accumulate("Z", ArrayExpr::a("X"));
        let sdfg = b.build().unwrap();
        let mut ex = compile(&sdfg, &symbols(&[("N", 3)])).unwrap().session();
        ex.set_input("X", Tensor::ones(&[3])).unwrap();
        ex.set_input("Z", Tensor::ones(&[3])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Z").unwrap().data(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn matmul_statement_runs() {
        let mut b = ProgramBuilder::new("mm");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("C", vec![n.clone(), n.clone()]).unwrap();
        b.matmul("C", "A", "B");
        let sdfg = b.build().unwrap();
        let a = dace_tensor::random::uniform(&[3, 3], 1);
        let bt = dace_tensor::random::uniform(&[3, 3], 2);
        let mut ex = compile(&sdfg, &symbols(&[("N", 3)])).unwrap().session();
        ex.set_input("A", a.clone()).unwrap();
        ex.set_input("B", bt.clone()).unwrap();
        ex.run().unwrap();
        assert!(dace_tensor::allclose_default(
            ex.array("C").unwrap(),
            &a.matmul(&bt).unwrap()
        ));
    }

    #[test]
    fn loop_with_element_updates() {
        // out[0] = sum_{i<N} X[i]^2  written as a loop of element accumulations
        let mut b = ProgramBuilder::new("sumsq");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("i", 0, n.clone(), |b| {
            b.accumulate_element(
                "OUT",
                vec![SymExpr::int(0)],
                elem("X", vec![i.clone()]).mul(elem("X", vec![i.clone()])),
            );
        });
        let sdfg = b.build().unwrap();
        let mut ex = compile(&sdfg, &symbols(&[("N", 4)])).unwrap().session();
        ex.set_input(
            "X",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap(),
        )
        .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("OUT").unwrap().data()[0], 30.0);
    }

    #[test]
    fn map_assign_with_shifted_indices() {
        // Y[i] = X[i+1] - X[i] for i in 0..N-1
        let mut b = ProgramBuilder::new("diff");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Y", vec![n.clone()]).unwrap();
        let i = SymExpr::sym("i");
        b.map_assign(
            "Y",
            &[("i", SymExpr::int(0), n.sub(&SymExpr::int(1)))],
            vec![i.clone()],
            elem("X", vec![i.add_int(1)]).sub(elem("X", vec![i.clone()])),
        );
        let sdfg = b.build().unwrap();
        let mut ex = compile(&sdfg, &symbols(&[("N", 4)])).unwrap().session();
        ex.set_input(
            "X",
            Tensor::from_vec(vec![1.0, 3.0, 6.0, 10.0], &[4]).unwrap(),
        )
        .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[2.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn sum_reduction_statement() {
        let mut b = ProgramBuilder::new("sum");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_scalar("S").unwrap();
        b.sum_into("S", "X", false);
        let sdfg = b.build().unwrap();
        let mut ex = compile(&sdfg, &symbols(&[("N", 5)])).unwrap().session();
        ex.set_input("X", Tensor::full(&[5], 2.0)).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("S").unwrap().data()[0], 10.0);
    }

    #[test]
    fn branch_statement_lowered() {
        use dace_sdfg::{CmpOp, CondOperand};
        let mut b = ProgramBuilder::new("branchy");
        b.add_scalar("P").unwrap();
        b.add_scalar("Y").unwrap();
        b.branch(
            CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            |b| b.assign_element("Y", vec![SymExpr::int(0)], lit(1.0)),
            Some(Box::new(|b: &mut ProgramBuilder| {
                b.assign_element("Y", vec![SymExpr::int(0)], lit(2.0))
            })),
        );
        let sdfg = b.build().unwrap();
        let mut ex = compile(&sdfg, &HashMap::new()).unwrap().session();
        ex.set_input("P", Tensor::from_vec(vec![-1.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 2.0);
    }

    #[test]
    fn nested_loops_and_transients() {
        // T = X * 2 (transient); then for i: OUT[0] += T[i]
        let mut b = ProgramBuilder::new("nested");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_transient("T", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
        let i = SymExpr::sym("i");
        b.for_range("i", 0, n.clone(), |b| {
            b.accumulate_element("OUT", vec![SymExpr::int(0)], elem("T", vec![i.clone()]));
        });
        let sdfg = b.build().unwrap();
        assert!(sdfg.arrays["T"].transient);
        let mut ex = compile(&sdfg, &symbols(&[("N", 3)])).unwrap().session();
        ex.set_input("X", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("OUT").unwrap().data()[0], 12.0);
    }

    #[test]
    fn statement_count_tracks_lines() {
        let mut b = ProgramBuilder::new("count");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Y", vec![n.clone()]).unwrap();
        b.assign("Y", ArrayExpr::a("X"));
        b.for_range("i", 0, n.clone(), |b| {
            b.assign_element("Y", vec![SymExpr::sym("i")], lit(0.0));
        });
        assert_eq!(b.statement_count(), 3); // assign + loop header + element set
    }

    #[test]
    fn unknown_array_fails_validation() {
        let mut b = ProgramBuilder::new("bad");
        b.assign("MISSING", ArrayExpr::s(1.0));
        assert!(b.build().is_err());
    }
}
