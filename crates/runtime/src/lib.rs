//! # dace-runtime
//!
//! An interpreter/executor for SDFGs, standing in for the DaCe code generator
//! and CPU runtime of the original system (see `DESIGN.md` for the
//! substitution rationale).  Both DaCe AD and the JAX-like baseline in this
//! repository ultimately execute on the same `dace-tensor` kernels, so the
//! performance comparisons in the benchmark harness measure algorithmic
//! differences (in-place gradients, no per-iteration bound checks, compact
//! backward loops) rather than substrate differences.
//!
//! Execution is two-phase: [`executor::Executor::new`] lowers the SDFG once
//! into a compiled execution plan (interned ids, register-compiled tasklet
//! expressions, precomputed topological orders and subset classifications),
//! and [`executor::Executor::run`] walks that plan with zero per-iteration
//! string lookups, clones or heap allocations on the hot paths.
//!
//! * [`executor::Executor`] — runs an SDFG given symbol values and inputs.
//! * [`memory::MemoryTracker`] — allocation tracking and peak-memory
//!   measurement used by the checkpointing experiments (Fig. 13).

pub mod error;
pub mod executor;
pub mod memory;
mod plan;

pub use error::{RuntimeError, RuntimeResult};
pub use executor::{ExecutionReport, Executor, MapPath};
pub use memory::MemoryTracker;
