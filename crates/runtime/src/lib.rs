//! # dace-runtime
//!
//! An interpreter/executor for SDFGs, standing in for the DaCe code generator
//! and CPU runtime of the original system (see `DESIGN.md` for the
//! substitution rationale).  Both DaCe AD and the JAX-like baseline in this
//! repository ultimately execute on the same `dace-tensor` kernels, so the
//! performance comparisons in the benchmark harness measure algorithmic
//! differences (in-place gradients, no per-iteration bound checks, compact
//! backward loops) rather than substrate differences.
//!
//! Execution follows the paper's compile-once/run-many model:
//!
//! * [`compile`] lowers an SDFG under concrete symbol values into a
//!   [`CompiledProgram`] — interned ids, register-compiled tasklet
//!   expressions, precomputed topological orders and subset classifications
//!   — consulting a process-wide **plan cache** keyed by (SDFG fingerprint,
//!   symbol values), so structurally identical programs share one lowering.
//! * [`CompiledProgram::session`] opens a [`Session`] that binds inputs,
//!   runs the plan (zero per-iteration string lookups, clones or heap
//!   allocations on the hot paths) and **reuses its tensor slab across
//!   runs** — transients are recycled and zero-filled in place rather than
//!   reallocated.
//! * [`executor::Executor`] is the deprecated coupled compile-and-run shim
//!   kept for migration; [`memory::MemoryTracker`] provides the allocation
//!   tracking and peak-memory measurement used by the checkpointing
//!   experiments (Fig. 13).

pub mod error;
pub mod executor;
pub mod memory;
mod plan;
mod program;

pub use error::{RuntimeError, RuntimeResult};
pub use executor::{ExecutionReport, Executor, MapPath};
pub use memory::MemoryTracker;
pub use program::{
    clear_plan_cache, compile, plan_cache_len, plan_cache_stats, CompiledProgram, PlanCacheStats,
    Session,
};
