//! # dace-runtime
//!
//! An interpreter/executor for SDFGs, standing in for the DaCe code generator
//! and CPU runtime of the original system (see `DESIGN.md` for the
//! substitution rationale).  Both DaCe AD and the JAX-like baseline in this
//! repository ultimately execute on the same `dace-tensor` kernels, so the
//! performance comparisons in the benchmark harness measure algorithmic
//! differences (in-place gradients, no per-iteration bound checks, compact
//! backward loops) rather than substrate differences.
//!
//! * [`executor::Executor`] — runs an SDFG given symbol values and inputs.
//! * [`memory::MemoryTracker`] — allocation tracking and peak-memory
//!   measurement used by the checkpointing experiments (Fig. 13).

pub mod error;
pub mod executor;
pub mod memory;

pub use error::{RuntimeError, RuntimeResult};
pub use executor::{ExecutionReport, Executor};
pub use memory::MemoryTracker;
