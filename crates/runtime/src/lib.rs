//! # dace-runtime
//!
//! An interpreter/executor for SDFGs, standing in for the DaCe code generator
//! and CPU runtime of the original system (see `DESIGN.md` for the
//! substitution rationale).  Both DaCe AD and the JAX-like baseline in this
//! repository ultimately execute on the same `dace-tensor` kernels, so the
//! performance comparisons in the benchmark harness measure algorithmic
//! differences (in-place gradients, no per-iteration bound checks, compact
//! backward loops) rather than substrate differences.
//!
//! Execution follows the paper's compile-once/run-many model:
//!
//! * [`compile`] lowers an SDFG under concrete symbol values into a
//!   [`CompiledProgram`] — interned ids, register-compiled tasklet
//!   expressions, precomputed topological orders and subset classifications
//!   — consulting a process-wide **plan cache** keyed by (SDFG fingerprint,
//!   symbol values), so structurally identical programs share one lowering.
//! * [`CompiledProgram::session`] opens a [`Session`] that binds inputs,
//!   runs the plan (zero per-iteration string lookups, clones or heap
//!   allocations on the hot paths) and **reuses its tensor slab across
//!   runs** — transients are recycled and zero-filled in place rather than
//!   reallocated.
//! * [`batch::BatchDriver`] is the concurrent serving layer: one shared
//!   program, a pool of warm sessions, and batch fan-out over the persistent
//!   worker pool with per-item panic isolation.
//! * [`serve::ServeDriver`] adds dynamic admission on top: requests are
//!   submitted individually (with optional per-request deadlines and
//!   cancellation), an admission queue coalesces them into batches, and
//!   handles deliver results with p50/p95 latency accounting.
//! * [`gateway::Gateway`] is the multi-tenant front door above all of
//!   that: bounded per-tenant admission with typed overload rejection,
//!   weighted deficit round-robin across tenants, retries with exponential
//!   backoff, per-tenant circuit breakers, graceful program reload and a
//!   deterministic fault-injection harness.
//! * [`executor::Executor`] is the deprecated coupled compile-and-run shim
//!   kept for migration; [`memory::MemoryTracker`] provides the allocation
//!   tracking and peak-memory measurement used by the checkpointing
//!   experiments (Fig. 13).
//!
//! # Invariants
//!
//! * **Plan immutability** — a lowered execution plan is never mutated
//!   after [`compile`] returns; [`CompiledProgram`] and every [`Session`] /
//!   [`BatchDriver`] hold it behind a shared `Arc`.  All mutable run state
//!   (slab, symbol file, scratch registers) lives in the session.
//! * **Slab reuse** — a session's tensor allocations survive across runs:
//!   transients recycle through an internal pool and are zero-filled in
//!   place, unbound outputs are reset in place.  Results are bit-identical
//!   to a run on a freshly opened session with the same bindings.
//! * **Cache keying** — the plan cache key is (structural SDFG fingerprint,
//!   sorted concrete symbol values); a plan is valid for exactly that pair
//!   and [`compile`] never returns a plan specialised for different symbol
//!   values.
//!
//! # Example
//!
//! Compile once, bind, run, read (see [`crate::batch`] for the batched
//! serving variant of the same program):
//!
//! ```
//! use std::collections::HashMap;
//! use dace_frontend::{ArrayExpr, ProgramBuilder};
//! use dace_tensor::Tensor;
//!
//! // Y = X + 1, lowered to an SDFG by the frontend.
//! let mut b = ProgramBuilder::new("inc");
//! let n = b.symbol("N");
//! b.add_input("X", vec![n.clone()]).unwrap();
//! b.add_input("Y", vec![n.clone()]).unwrap();
//! b.assign("Y", ArrayExpr::a("X").add(ArrayExpr::s(1.0)));
//! let sdfg = b.build().unwrap();
//!
//! let symbols = HashMap::from([("N".to_string(), 3)]);
//! let program = dace_runtime::compile(&sdfg, &symbols).unwrap();
//! let mut session = program.session();
//! session
//!     .set_input("X", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap())
//!     .unwrap();
//! let report = session.run().unwrap();
//! assert_eq!(session.array("Y").unwrap().data(), &[2.0, 3.0, 4.0]);
//! // The (SDFG, symbols) pair was lowered exactly once.
//! assert_eq!(report.plan_cache_misses, 1);
//! ```

pub mod batch;
pub mod error;
pub mod executor;
pub mod gateway;
pub mod memory;
mod plan;
mod program;
pub mod serve;
mod spec;

pub use batch::{throughput, BatchDriver, BatchError, BatchItemResult, BatchOutput, BatchReport};
pub use error::{RuntimeError, RuntimeResult};
pub use executor::{ExecutionReport, Executor, MapPath};
pub use gateway::{
    BreakerState, FaultPlan, Gateway, GatewayError, GatewayHandle, GatewayOptions, GatewayStats,
    SubmitOptions, TenantConfig, TenantStats,
};
pub use memory::MemoryTracker;
pub use program::{
    clear_plan_cache, compile, debug_fingerprint_sdfg, debug_inject_plan_cache_alias,
    plan_cache_capacity, plan_cache_len, plan_cache_stats, set_plan_cache_capacity,
    CompiledProgram, PlanCacheStats, Session, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use serve::{RequestHandle, ServeDriver, ServeError, ServeOptions, ServeResponse, ServeStats};
pub use spec::SpecMode;
