//! Batched concurrent execution over one shared compiled plan.
//!
//! A [`CompiledProgram`] is an immutable, `Arc`-backed artifact, so any
//! number of [`Session`]s can execute it at once without re-lowering — this
//! module adds the serving layer that exploits that: a [`BatchDriver`] owns
//! one program, maintains a pool of reusable sessions (each keeping its
//! tensor slab warm across requests), and fans a batch of input bindings
//! across the persistent rayon worker pool.
//!
//! The concurrency model is **inter-request parallelism**: every batch item
//! runs start-to-finish on one worker thread.  Parallel constructs *inside*
//! the program (large maps, library kernels) detect that they already run on
//! a pool worker and execute inline, so a batch of N requests costs no
//! nested fan-out and no cross-thread synchronisation per map — for many
//! concurrent small-to-medium requests this beats intra-map parallelism,
//! which is the same trade inference servers make between inter- and
//! intra-op thread pools.
//!
//! Guarantees:
//!
//! * **Determinism** — each item executes exactly like a standalone
//!   [`Session::run`] with the same bindings: results are bit-identical to a
//!   serial per-item loop, independent of batch size or worker count.
//! * **Plan sharing** — all pooled sessions reference the *same* lowered
//!   plan; a warm driver performs zero plan-cache lookups and zero lowerings
//!   regardless of how many batches it serves.
//! * **Panic isolation** — a panicking item is reported as
//!   [`BatchError::Panicked`] for that item only; its session is discarded
//!   (never returned to the pool) and every other item completes normally.
//!
//! ```
//! use std::collections::HashMap;
//! use dace_frontend::{ArrayExpr, ProgramBuilder};
//! use dace_runtime::{compile, BatchDriver};
//! use dace_tensor::Tensor;
//!
//! // Y = 3 * X, as a tiny SDFG.
//! let mut b = ProgramBuilder::new("triple");
//! let n = b.symbol("N");
//! b.add_input("X", vec![n.clone()]).unwrap();
//! b.add_input("Y", vec![n.clone()]).unwrap();
//! b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(3.0)));
//! let sdfg = b.build().unwrap();
//!
//! let program = compile(&sdfg, &HashMap::from([("N".to_string(), 4)])).unwrap();
//! let driver = BatchDriver::new(program);
//!
//! // Three requests with different inputs, served concurrently.
//! let items: Vec<HashMap<String, Tensor>> = (0..3)
//!     .map(|i| {
//!         HashMap::from([(
//!             "X".to_string(),
//!             Tensor::from_vec(vec![i as f64; 4], &[4]).unwrap(),
//!         )])
//!     })
//!     .collect();
//! let out = driver.run_batch(&items, &["Y"]);
//! assert_eq!(out.report.succeeded, 3);
//! let y1 = &out.items[1].as_ref().unwrap().outputs["Y"];
//! assert_eq!(y1.data(), &[3.0, 3.0, 3.0, 3.0]);
//! ```

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use dace_tensor::Tensor;

use crate::error::RuntimeError;
use crate::executor::ExecutionReport;
use crate::program::{CompiledProgram, PlanCacheStats, Session};

/// Why one batch item failed (the other items are unaffected).
#[derive(Debug)]
pub enum BatchError<E> {
    /// The item's own execution logic returned an error.
    Item(E),
    /// The item panicked mid-execution.  Its session was discarded instead
    /// of being returned to the pool; the driver stays fully usable.
    Panicked(String),
}

impl<E: std::fmt::Display> std::fmt::Display for BatchError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Item(e) => write!(f, "batch item failed: {e}"),
            BatchError::Panicked(msg) => write!(f, "batch item panicked: {msg}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for BatchError<E> {}

/// Successful result of one batch item run through [`BatchDriver::run_batch`].
#[derive(Clone, Debug)]
pub struct BatchItemResult {
    /// The requested (fetched) arrays, cloned out of the session slab.
    pub outputs: HashMap<String, Tensor>,
    /// Execution report of this item's run.
    pub report: ExecutionReport,
}

/// Aggregate statistics of one [`BatchDriver::run_batch`] /
/// [`BatchDriver::run_batch_with`] call.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Number of items in the batch.
    pub items: usize,
    /// Items that completed without error or panic.
    pub succeeded: usize,
    /// Items that returned an error or panicked.
    pub failed: usize,
    /// Effective fan-out width of this batch (worker cap bounded by the
    /// batch length).
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// `items / elapsed` — the headline serving-throughput figure.
    ///
    /// `None` when the figure would be degenerate: an empty batch, or an
    /// elapsed time too small for the clock to resolve.  Consumers that
    /// previously saw `0.0`, `inf` or `NaN` in those cases now get an
    /// explicit absence instead of a number that poisons downstream
    /// aggregation (geomeans, baselines, regression ratios).
    pub items_per_sec: Option<f64>,
    /// Tasklet evaluations summed over the final run of every item's
    /// session.
    pub total_tasklet_invocations: u64,
    /// Map index points summed over the final run of every item's session.
    pub total_map_points: u64,
    /// Plan-cache counters of the shared program's cache entry at the end of
    /// the batch.  `misses` stays at `1` however many items and batches the
    /// driver serves — that is the compile-once property this layer exists
    /// to amortise.
    pub plan_cache: PlanCacheStats,
    /// Sessions created by the driver so far (lifetime counter).  A warm
    /// driver stops growing this: steady-state batches reuse pooled
    /// sessions, so the value plateaus at the peak concurrency seen.
    pub sessions_created: u64,
    /// Checkouts served from the idle pool so far (lifetime counter).
    pub sessions_reused: u64,
    /// Sessions parked in the idle pool after this batch.
    pub pooled_sessions: usize,
    /// Sessions discarded instead of pooled because the item running on
    /// them panicked (lifetime counter).  A panicking item may leave its
    /// slab half-written, so the session is quarantined — this counter is
    /// how the fault-tolerance layer above ([`crate::gateway`]) observes
    /// that the quarantine actually fired.
    pub sessions_discarded: u64,
}

/// `items / elapsed` as a throughput figure, or `None` when the ratio is
/// degenerate (no items, or an elapsed time the clock could not resolve).
///
/// A naive `items as f64 / elapsed.as_secs_f64()` produces `inf` for a
/// non-empty batch measured at zero elapsed and `NaN` for an empty one —
/// both of which silently corrupt any average, geomean or regression ratio
/// computed over them.  Reporting `None` forces callers to decide.
pub fn throughput(items: usize, elapsed: Duration) -> Option<f64> {
    let secs = elapsed.as_secs_f64();
    (items > 0 && secs > 0.0).then(|| items as f64 / secs)
}

/// Per-item results plus the aggregate [`BatchReport`].
#[derive(Debug)]
pub struct BatchOutput<T, E> {
    /// One result per batch item, in input order.
    pub items: Vec<Result<T, BatchError<E>>>,
    /// Aggregate statistics of the whole batch.
    pub report: BatchReport,
}

/// Batched concurrent execution driver: one shared [`CompiledProgram`], a
/// pool of warm [`Session`]s, and fan-out over the persistent worker pool.
///
/// Construct with [`BatchDriver::new`], optionally cap the fan-out with
/// [`BatchDriver::with_workers`], then call [`BatchDriver::run_batch`] with
/// per-item input bindings.  The driver is `Sync`: one instance can serve
/// overlapping batches from multiple threads, all drawing on the same
/// session pool.
pub struct BatchDriver {
    program: CompiledProgram,
    /// Fan-out cap; 0 = the worker pool's full width.  Atomic so a driver
    /// shared behind an `Arc` (e.g. by [`crate::ServeDriver`]) can be
    /// re-tuned while serving.
    workers: AtomicUsize,
    /// Free hints applied to every session the driver creates (the AD
    /// engine's recomputation-block releases).
    free_hints: HashMap<usize, Vec<String>>,
    /// Version of `free_hints`, bumped by [`BatchDriver::set_free_hints`].
    /// Pooled sessions remember the version they were stamped with and are
    /// re-stamped at checkout when it changed, so hint updates reach warm
    /// pools instead of only newly created sessions.
    hints_version: u64,
    /// Idle sessions, ready for checkout.  Their tensor slabs stay allocated
    /// between batches, so a warm request pays no allocation cost.
    idle: Mutex<Vec<PooledSession>>,
    sessions_created: AtomicU64,
    sessions_reused: AtomicU64,
    sessions_discarded: AtomicU64,
}

/// An idle session plus the free-hint version it was last stamped with.
struct PooledSession {
    session: Session,
    hints_version: u64,
}

impl std::fmt::Debug for BatchDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchDriver")
            .field("program", &self.program)
            .field("workers", &self.worker_cap())
            .field("pooled_sessions", &self.pooled_sessions())
            .field(
                "sessions_created",
                &self.sessions_created.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl BatchDriver {
    /// Create a driver over one compiled program with the default fan-out
    /// (the persistent worker pool's full width).
    pub fn new(program: CompiledProgram) -> Self {
        BatchDriver {
            program,
            workers: AtomicUsize::new(0),
            free_hints: HashMap::new(),
            hints_version: 0,
            idle: Mutex::new(Vec::new()),
            sessions_created: AtomicU64::new(0),
            sessions_reused: AtomicU64::new(0),
            sessions_discarded: AtomicU64::new(0),
        }
    }

    /// Cap the batch fan-out at `workers` concurrent items (0 restores the
    /// pool's full width).  The cap bounds *span* count on the shared
    /// persistent pool; it does not spawn dedicated threads.
    pub fn with_workers(self, workers: usize) -> Self {
        self.workers.store(workers, Ordering::Relaxed);
        self
    }

    /// In-place variant of [`BatchDriver::with_workers`], for drivers that
    /// are already serving (takes effect from the next batch).
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers, Ordering::Relaxed);
    }

    /// The configured fan-out cap (0 = the worker pool's full width).
    pub fn worker_cap(&self) -> usize {
        self.workers.load(Ordering::Relaxed)
    }

    /// Effective fan-out width of a batch of `n_items`: the persistent
    /// pool's width, bounded by the worker cap and the batch length.
    pub fn fanout_width(&self, n_items: usize) -> usize {
        let cap = self.worker_cap();
        let width = rayon::current_num_threads().max(1);
        let width = if cap > 0 { width.min(cap) } else { width };
        width.min(n_items.max(1))
    }

    /// Attach per-state free hints (see [`Session::set_free_hints`]) applied
    /// to every session this driver checks out.  The hints are versioned:
    /// sessions already parked in the idle pool are re-stamped with the new
    /// hints at their next checkout, so a change reaches warm pools too
    /// (it does not affect sessions currently mid-run).
    pub fn set_free_hints(&mut self, hints: &HashMap<usize, Vec<String>>) {
        self.free_hints = hints.clone();
        self.hints_version += 1;
    }

    /// The shared program this driver serves.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Pre-create sessions until the idle pool holds `n`, so the first batch
    /// pays no session-construction cost on the serving path.  The shortfall
    /// is computed and filled under the pool lock, so concurrent `warm` and
    /// checkout calls never overshoot the target.
    pub fn warm(&self, n: usize) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        while idle.len() < n {
            let session = self.new_session();
            idle.push(PooledSession {
                session,
                hints_version: self.hints_version,
            });
        }
    }

    /// Number of sessions currently parked in the idle pool.
    pub fn pooled_sessions(&self) -> usize {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Sessions created over the driver's lifetime.  Plateaus at the peak
    /// concurrency once the pool is warm.
    pub fn sessions_created(&self) -> u64 {
        self.sessions_created.load(Ordering::Relaxed)
    }

    /// Checkouts served from the idle pool over the driver's lifetime.
    pub fn sessions_reused(&self) -> u64 {
        self.sessions_reused.load(Ordering::Relaxed)
    }

    /// Sessions quarantined (dropped instead of pooled) because the item
    /// running on them panicked, over the driver's lifetime.
    pub fn sessions_discarded(&self) -> u64 {
        self.sessions_discarded.load(Ordering::Relaxed)
    }

    /// Drop idle sessions until the pool holds at most `keep`, releasing
    /// their slabs.  The complement of [`BatchDriver::warm`]: a serving
    /// layer that lowers its dispatch bound calls this so pool memory
    /// follows the bound *down*, not only up (sessions currently checked
    /// out are unaffected and re-enter the pool on checkin).
    pub fn trim_pool(&self, keep: usize) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        idle.truncate(keep);
    }

    fn new_session(&self) -> Session {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
        let mut session = self.program.session();
        if !self.free_hints.is_empty() {
            session.set_free_hints(&self.free_hints);
        }
        session
    }

    fn checkout(&self) -> Session {
        let pooled = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match pooled {
            Some(mut pooled) => {
                self.sessions_reused.fetch_add(1, Ordering::Relaxed);
                // A session parked before a `set_free_hints` call carries
                // stale hints; re-stamp it so the change applies to warm
                // pools, not only to sessions created afterwards.
                if pooled.hints_version != self.hints_version {
                    pooled.session.set_free_hints(&self.free_hints);
                }
                // Zero the previous tenant's report so an item that fails
                // before running contributes nothing to the batch totals.
                pooled.session.reset_report();
                pooled.session
            }
            None => self.new_session(),
        }
    }

    fn checkin(&self, mut session: Session) {
        // Bindings are per-request; the slab itself stays allocated so the
        // next checkout runs warm.
        session.clear_bindings();
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(PooledSession {
                session,
                hints_version: self.hints_version,
            });
    }

    /// Run a batch of input bindings, fetching the named arrays of each item
    /// after its run.
    ///
    /// Every item binds its map (cloning each tensor into its session),
    /// executes the shared plan, and clones the `fetch` arrays out of the
    /// slab.  Items fail independently: an unknown input or fetch name, a
    /// shape mismatch or a runtime error marks *that* item
    /// [`BatchError::Item`] and the rest of the batch completes.
    pub fn run_batch(
        &self,
        items: &[HashMap<String, Tensor>],
        fetch: &[&str],
    ) -> BatchOutput<BatchItemResult, RuntimeError> {
        self.run_batch_with(items.len(), |i, session| {
            session.clear_bindings();
            for (name, tensor) in &items[i] {
                session.set_input(name, tensor.clone())?;
            }
            let report = session.run()?;
            let mut outputs = HashMap::with_capacity(fetch.len());
            for &name in fetch {
                let tensor = session
                    .array(name)
                    .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?;
                outputs.insert(name.to_string(), tensor.clone());
            }
            Ok(BatchItemResult { outputs, report })
        })
    }

    /// Generalised batched execution: run `item(i, &mut session)` for every
    /// `i in 0..n_items`, each on a pooled session, fanned across the worker
    /// pool.  This is the building block [`BatchDriver::run_batch`] and the
    /// AD engine's batched gradients are made of — the closure owns the
    /// binding/fetch policy, the driver owns scheduling, session reuse and
    /// panic isolation.
    ///
    /// The closure must leave its session in a state where a fresh
    /// [`Session::run`] is valid (every run resets per-run state, so any
    /// completed or failed run qualifies); a *panicking* closure forfeits
    /// its session instead.  The aggregate tasklet/map-point totals count
    /// each session's final run, so closures that run more than once
    /// contribute only their last execution.
    pub fn run_batch_with<T, E, F>(&self, n_items: usize, item: F) -> BatchOutput<T, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize, &mut Session) -> Result<T, E> + Sync,
    {
        let start = Instant::now();
        let total_tasklets = AtomicU64::new(0);
        let total_points = AtomicU64::new(0);
        let (workers, items): (usize, Vec<Result<T, BatchError<E>>>) = self.pool_scope(|| {
            let workers = self.fanout_width(n_items);
            let items = (0..n_items)
                .into_par_iter()
                .map(|i| {
                    let mut session = self.checkout();
                    let outcome = catch_unwind(AssertUnwindSafe(|| item(i, &mut session)));
                    match outcome {
                        Ok(result) => {
                            let report = session.last_report();
                            total_tasklets.fetch_add(report.tasklet_invocations, Ordering::Relaxed);
                            total_points.fetch_add(report.map_points, Ordering::Relaxed);
                            self.checkin(session);
                            result.map_err(BatchError::Item)
                        }
                        // The session may be mid-run (partially written
                        // slab, dangling symbol scopes): drop it rather
                        // than letting the damage leak into later items.
                        Err(payload) => {
                            self.sessions_discarded.fetch_add(1, Ordering::Relaxed);
                            Err(BatchError::Panicked(panic_message(payload)))
                        }
                    }
                })
                .collect();
            (workers, items)
        });
        let elapsed = start.elapsed();
        let succeeded = items.iter().filter(|r| r.is_ok()).count();
        let report = BatchReport {
            items: n_items,
            succeeded,
            failed: n_items - succeeded,
            workers,
            elapsed,
            items_per_sec: throughput(n_items, elapsed),
            total_tasklet_invocations: total_tasklets.into_inner(),
            total_map_points: total_points.into_inner(),
            plan_cache: self.program.cache_stats(),
            sessions_created: self.sessions_created(),
            sessions_reused: self.sessions_reused(),
            pooled_sessions: self.pooled_sessions(),
            sessions_discarded: self.sessions_discarded(),
        };
        BatchOutput { items, report }
    }

    /// Run `f` under this driver's worker cap (no-op when uncapped).
    fn pool_scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let cap = self.worker_cap();
        if cap == 0 {
            f()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(cap)
                .build()
                .expect("the rayon shim's pool builder is infallible")
                .install(f)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole serving stack must be shareable across threads: the driver
    /// (with its session pool) and the sessions it moves between workers.
    #[test]
    fn driver_and_session_are_send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Session>();
        assert_send::<BatchDriver>();
        assert_sync::<BatchDriver>();
        assert_send::<CompiledProgram>();
        assert_sync::<CompiledProgram>();
    }

    /// Degenerate inputs yield `None`, never `0.0`, `inf` or `NaN`.
    #[test]
    fn throughput_rejects_degenerate_ratios() {
        assert_eq!(throughput(0, Duration::ZERO), None);
        assert_eq!(throughput(0, Duration::from_secs(1)), None);
        assert_eq!(throughput(8, Duration::ZERO), None, "inf must not escape");
        let t = throughput(8, Duration::from_millis(500)).unwrap();
        assert!((t - 16.0).abs() < 1e-9);
        assert!(t.is_finite() && t > 0.0);
        // Sub-nanosecond-scale but nonzero elapsed is still a real figure.
        assert!(throughput(1, Duration::from_nanos(1)).unwrap().is_finite());
    }
}
