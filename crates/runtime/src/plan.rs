//! Plan compilation: lowering an [`Sdfg`] into an [`ExecPlan`].
//!
//! The executor used to interpret the SDFG structure directly — re-resolving
//! string-keyed arrays, symbols and tasklet connectors on every loop
//! iteration and cloning state graphs per execution.  Plan compilation does
//! all of that resolution **once**, up front, when the [`crate::Executor`]
//! is constructed:
//!
//! * array names are interned to dense `u32` ids; tensors live in a flat
//!   slab (`Vec<Option<Tensor>>`) indexed by id, with concrete shapes,
//!   row-major strides and byte sizes precomputed from the symbol values;
//! * symbols, loop iterators and map parameters are interned to slots of a
//!   flat integer register file ([`SymFile`]);
//! * memlet subsets are pre-classified (whole-array / element) and their
//!   index expressions compiled to [`CIdx`] — a constant, a symbol slot, a
//!   slot plus offset, or (rarely) a general compiled integer expression;
//! * every tasklet's [`dace_sdfg::ScalarExpr`] assignments are compiled to
//!   register-based [`CompiledExpr`] instruction sequences with connector
//!   and iteration-symbol references resolved to slot indices;
//! * per-graph topological orders, map element-wise fast-path eligibility
//!   and the affine dependence verdict ([`dace_sdfg::analyze_map`]) that
//!   gates the parallel path are all decided once.
//!
//! Lowering never fails eagerly: constructs that the old interpreter would
//! only reject *when executed* (missing connectors, unknown arrays, cyclic
//! graphs) lower to [`PlanNode::Fail`] / `PlanGraph::fail` markers carrying
//! the exact runtime error, so error behaviour — including errors that never
//! fire because the offending state is dead — is preserved.

use std::collections::HashMap;

use dace_sdfg::{
    CmpOp, CompiledExpr, CondExpr, CondOperand, ControlFlow, DataflowGraph, DfNode, IndexRange,
    LeafRef, LibraryOp, MapScope, MicroPattern, Sdfg, Subset, SubsetClass, SymError, SymExpr,
    Tasklet, Wcr,
};

use crate::error::{RuntimeError, RuntimeResult};

// ---------------------------------------------------------------------------
// Symbol register file.
// ---------------------------------------------------------------------------

/// Flat register file of integer symbol values (SDFG symbols, loop iterators
/// and map parameters), indexed by interned symbol id.  `defined` tracks
/// which slots currently hold a value so that out-of-scope iterator reads
/// report the same unbound-symbol errors as the string-keyed interpreter.
#[derive(Clone, Debug, Default)]
pub(crate) struct SymFile {
    pub vals: Vec<i64>,
    pub defined: Vec<bool>,
}

impl SymFile {
    #[inline]
    pub fn set(&mut self, slot: u32, value: i64) {
        self.vals[slot as usize] = value;
        self.defined[slot as usize] = true;
    }
}

/// Interner for symbol names.
#[derive(Debug, Default)]
pub(crate) struct SymTable {
    pub names: Vec<String>,
    pub ids: HashMap<String, u32>,
}

impl SymTable {
    fn intern(&mut self, name: &str, init: &mut SymFile) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        init.vals.push(0);
        init.defined.push(false);
        id
    }
}

// ---------------------------------------------------------------------------
// Compiled integer index expressions.
// ---------------------------------------------------------------------------

/// Binary operator of a compiled integer expression.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SymBin {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
}

/// One instruction of a general compiled integer expression.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SymInstr {
    Const {
        dst: u32,
        value: i64,
    },
    Load {
        dst: u32,
        slot: u32,
    },
    Bin {
        dst: u32,
        op: SymBin,
        a: u32,
        b: u32,
    },
    Neg {
        dst: u32,
        a: u32,
    },
}

/// A [`SymExpr`] lowered to a flat register sequence (the general fallback
/// of [`CIdx`]).
#[derive(Clone, Debug)]
pub(crate) struct CompiledSymExpr {
    ops: Vec<SymInstr>,
    result: u32,
    n_regs: u32,
}

impl CompiledSymExpr {
    fn eval(&self, syms: &SymFile, names: &[String], regs: &mut Vec<i64>) -> RuntimeResult<i64> {
        if regs.len() < self.n_regs as usize {
            regs.resize(self.n_regs as usize, 0);
        }
        for instr in &self.ops {
            match *instr {
                SymInstr::Const { dst, value } => regs[dst as usize] = value,
                SymInstr::Load { dst, slot } => {
                    if !syms.defined[slot as usize] {
                        return Err(RuntimeError::from(SymError::UnboundSymbol(
                            names[slot as usize].clone(),
                        )));
                    }
                    regs[dst as usize] = syms.vals[slot as usize];
                }
                SymInstr::Neg { dst, a } => regs[dst as usize] = -regs[a as usize],
                SymInstr::Bin { dst, op, a, b } => {
                    let x = regs[a as usize];
                    let y = regs[b as usize];
                    regs[dst as usize] = match op {
                        SymBin::Add => x + y,
                        SymBin::Sub => x - y,
                        SymBin::Mul => x * y,
                        SymBin::Div => {
                            if y == 0 {
                                return Err(RuntimeError::from(SymError::DivisionByZero));
                            }
                            x.div_euclid(y)
                        }
                        SymBin::Rem => {
                            if y == 0 {
                                return Err(RuntimeError::from(SymError::DivisionByZero));
                            }
                            x.rem_euclid(y)
                        }
                        SymBin::Min => x.min(y),
                        SymBin::Max => x.max(y),
                    };
                }
            }
        }
        Ok(regs[self.result as usize])
    }
}

/// A compiled integer index expression.  The first three variants cover the
/// overwhelming majority of memlet subscripts and loop bounds (`5`, `i`,
/// `i+1`) with zero interpretation overhead; everything else falls back to
/// the register sequence.
#[derive(Clone, Debug)]
pub(crate) enum CIdx {
    Const(i64),
    Slot(u32),
    SlotOffset(u32, i64),
    Expr(CompiledSymExpr),
}

impl CIdx {
    #[inline]
    pub fn eval(
        &self,
        syms: &SymFile,
        names: &[String],
        regs: &mut Vec<i64>,
    ) -> RuntimeResult<i64> {
        match self {
            CIdx::Const(v) => Ok(*v),
            CIdx::Slot(s) => {
                if !syms.defined[*s as usize] {
                    return Err(RuntimeError::from(SymError::UnboundSymbol(
                        names[*s as usize].clone(),
                    )));
                }
                Ok(syms.vals[*s as usize])
            }
            CIdx::SlotOffset(s, off) => {
                if !syms.defined[*s as usize] {
                    return Err(RuntimeError::from(SymError::UnboundSymbol(
                        names[*s as usize].clone(),
                    )));
                }
                Ok(syms.vals[*s as usize] + off)
            }
            CIdx::Expr(e) => e.eval(syms, names, regs),
        }
    }
}

// ---------------------------------------------------------------------------
// Array table.
// ---------------------------------------------------------------------------

/// Precomputed concrete layout of one array under the executor's symbol
/// values.
#[derive(Clone, Debug)]
pub(crate) struct Layout {
    pub dims: Vec<usize>,
    pub strides: Vec<usize>,
    pub bytes: usize,
}

/// Interned arrays with per-array metadata.
#[derive(Debug)]
pub(crate) struct ArrayTable {
    pub names: Vec<String>,
    pub ids: HashMap<String, u32>,
    pub transient: Vec<bool>,
    /// Concrete layout, or the error its symbolic shape evaluation produced
    /// (surfaced when the array is first materialised, as before).
    pub layouts: Vec<Result<Layout, RuntimeError>>,
}

impl ArrayTable {
    pub fn id(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    pub fn layout(&self, id: u32) -> RuntimeResult<&Layout> {
        match &self.layouts[id as usize] {
            Ok(l) => Ok(l),
            Err(e) => Err(e.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// Lowered dataflow graphs.
// ---------------------------------------------------------------------------

/// A pre-classified memlet access.
#[derive(Clone, Debug)]
pub(crate) enum PlanAccess {
    /// Whole-array subset used as a scalar (must be a length-1 container).
    All,
    /// Element subset: one compiled index per dimension.
    Element(Vec<CIdx>),
}

/// One tasklet input: load the scalar read through a memlet into `slot`.
#[derive(Clone, Debug)]
pub(crate) struct PlanRead {
    pub slot: u32,
    pub array: u32,
    pub access: PlanAccess,
}

/// One tasklet output: write the value of assignment `expr` through a memlet.
#[derive(Clone, Debug)]
pub(crate) struct PlanWrite {
    pub expr: u32,
    pub array: u32,
    pub access: PlanAccess,
    pub accumulate: bool,
}

/// A lowered tasklet: slot-resolved reads, compiled assignments, resolved
/// writes.  Executing one touches no strings and allocates nothing.
#[derive(Clone, Debug)]
pub(crate) struct PlanTasklet {
    pub reads: Vec<PlanRead>,
    /// `(slot, sym)` pairs: promote symbol-file values into expression slots.
    pub iter_loads: Vec<(u32, u32)>,
    pub n_slots: usize,
    pub exprs: Vec<CompiledExpr>,
    pub writes: Vec<PlanWrite>,
}

/// Precomputed element-wise fast path of a map: a single one-assignment
/// tasklet whose memlets all index identically by the map parameters, so the
/// whole map evaluates as one flat loop over the arrays' backing storage.
#[derive(Clone, Debug)]
pub(crate) struct PlanElementwise {
    /// `(slot, array)` input loads, in edge order.
    pub reads: Vec<(u32, u32)>,
    /// Loop-invariant symbol promotions (outer iterators referenced by the
    /// expression), filled once per map execution.
    pub iter_loads: Vec<(u32, u32)>,
    pub n_slots: usize,
    pub expr: CompiledExpr,
    pub out_array: u32,
    pub accumulate: bool,
}

/// One array access of a specialized kernel, decomposed as an affine
/// function of the specialized iteration variable: dimension `d` indexes at
/// `rest[d] + coeff[d] * i`.  The `rest` parts are loop-invariant and
/// evaluated once per dispatch; the flat row-major offset then advances by a
/// precomputed constant stride per iteration.
#[derive(Clone, Debug)]
pub(crate) struct SpecAccess {
    pub array: u32,
    /// Loop-invariant index component per dimension.
    pub rest: Vec<CIdx>,
    /// Coefficient of the iteration variable per dimension.
    pub coeff: Vec<i64>,
}

/// A specialized innermost-loop kernel: a control-flow loop (or 1-D map)
/// whose body is a single affine-memlet tasklet, compiled down to a flat
/// native loop with per-access constant strides.  The register VM remains
/// the universal fallback — dispatch re-validates every precondition and
/// bails out (`Ok(false)`) before mutating anything, so the VM reproduces
/// exact error semantics (including partial execution) whenever the
/// specialized form does not apply.
#[derive(Clone, Debug)]
pub(crate) struct SpecKernel {
    /// Element reads, `(slot, access)`, in tasklet edge order.
    pub reads: Vec<(u32, SpecAccess)>,
    /// Whole-array scalar reads (`(slot, array)`, length-1 containers).
    pub scalar_reads: Vec<(u32, u32)>,
    /// Loop-invariant iteration-symbol promotions, loaded once per dispatch.
    pub iter_loads: Vec<(u32, u32)>,
    /// Expression slots holding the specialized iteration variable itself
    /// (updated per iteration).
    pub inner_iter_slots: Vec<u32>,
    pub n_slots: usize,
    pub expr: CompiledExpr,
    /// Micro-kernel shape of `expr`, when recognized (bit-identical eval).
    pub micro: Option<MicroPattern>,
    pub write: SpecAccess,
    pub accumulate: bool,
    /// Every array the body's access nodes touch (pre-allocated at dispatch,
    /// mirroring the VM's allocation side effects).
    pub arrays: Vec<u32>,
    /// The state executed by the loop body (control-flow specs only; used
    /// for state accounting and the free-hint guard).
    pub state: Option<usize>,
}

/// A lowered map scope.
#[derive(Clone, Debug)]
pub(crate) struct PlanMap {
    /// Symbol slots of the map parameters.
    pub params: Vec<u32>,
    pub ranges: Vec<(CIdx, CIdx)>,
    pub body: PlanGraph,
    /// Arrays referenced by the body (pre-allocated before iteration).
    pub referenced: Vec<u32>,
    pub parallel: bool,
    /// Affine dependence verdict gating the snapshot-based parallel path.
    pub verdict: dace_sdfg::ParVerdict,
    /// Tasklet count of one body execution (for invocation accounting).
    pub body_tasklets: u64,
    pub elementwise: Option<PlanElementwise>,
    /// Specialized-kernel id of a recognized 1-D affine map body.
    pub spec: Option<u32>,
}

/// A lowered library node.
#[derive(Clone, Debug)]
pub(crate) struct PlanLibrary {
    pub op: LibraryOp,
    /// `(connector, array)` per in-edge.
    pub inputs: Vec<(String, u32)>,
    /// `(connector, array, wcr)` per out-edge.
    pub outputs: Vec<(String, u32, bool)>,
}

/// A lowered dataflow node.
#[derive(Clone, Debug)]
pub(crate) enum PlanNode {
    Access(u32),
    Tasklet(PlanTasklet),
    Map(Box<PlanMap>),
    Library(PlanLibrary),
    /// A node whose lowering failed; executing it raises the stored error
    /// (preserving the lazy error semantics of the direct interpreter).
    Fail(RuntimeError),
}

/// A lowered dataflow graph with its topological order precomputed.
#[derive(Clone, Debug, Default)]
pub(crate) struct PlanGraph {
    pub nodes: Vec<PlanNode>,
    pub order: Vec<usize>,
    /// Set when the graph as a whole cannot execute (cyclic).
    pub fail: Option<RuntimeError>,
}

// ---------------------------------------------------------------------------
// Lowered control flow.
// ---------------------------------------------------------------------------

/// A lowered control-flow condition operand.
#[derive(Clone, Debug)]
pub(crate) enum PlanOperand {
    Const(f64),
    Sym(CIdx),
    Element { array: u32, index: Vec<CIdx> },
}

/// A lowered control-flow condition.
#[derive(Clone, Debug)]
pub(crate) enum PlanCond {
    Cmp {
        lhs: PlanOperand,
        op: CmpOp,
        rhs: PlanOperand,
    },
    Not(Box<PlanCond>),
    StoredFlag(u32),
    Fail(RuntimeError),
}

/// Lowered structured control flow.
#[derive(Clone, Debug)]
pub(crate) enum PlanCf {
    State(usize),
    Seq(Vec<PlanCf>),
    Loop {
        var: u32,
        start: CIdx,
        end: CIdx,
        step: CIdx,
        body: Box<PlanCf>,
        /// Specialized-kernel id of a recognized innermost-loop body.
        spec: Option<u32>,
    },
    Branch {
        cond: PlanCond,
        then_body: Box<PlanCf>,
        else_body: Option<Box<PlanCf>>,
    },
}

/// The compiled execution plan of one SDFG under concrete symbol values.
#[derive(Debug)]
pub(crate) struct ExecPlan {
    pub arrays: ArrayTable,
    pub syms: SymTable,
    /// Initial symbol file: SDFG symbol values defined, iterators undefined.
    pub init_syms: SymFile,
    pub states: Vec<PlanGraph>,
    pub cfg: PlanCf,
    /// Specialized innermost-loop kernels recognized in this plan.
    pub specs: Vec<SpecKernel>,
}

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

struct Lowerer {
    arrays: ArrayTable,
    syms: SymTable,
    init_syms: SymFile,
    specs: Vec<SpecKernel>,
    /// Concrete symbol values the plan is specialized for; the dependence
    /// analyzer resolves symbolic strides/offsets through them.
    bindings: HashMap<String, i64>,
}

/// Compile an SDFG into an execution plan under concrete symbol values.
pub(crate) fn compile_plan(sdfg: &Sdfg, symbols: &HashMap<String, i64>) -> ExecPlan {
    // Intern arrays in name order (deterministic ids).
    let mut names = Vec::new();
    let mut ids = HashMap::new();
    let mut transient = Vec::new();
    let mut layouts = Vec::new();
    for (name, desc) in &sdfg.arrays {
        ids.insert(name.clone(), names.len() as u32);
        names.push(name.clone());
        transient.push(desc.transient);
        layouts.push(
            desc.concrete_shape(symbols)
                .and_then(|dims| {
                    let bytes = desc.size_bytes(symbols)? as usize;
                    Ok((dims, bytes))
                })
                .map(|(dims, bytes)| {
                    let mut strides = vec![1usize; dims.len()];
                    for d in (0..dims.len().saturating_sub(1)).rev() {
                        strides[d] = strides[d + 1] * dims[d + 1];
                    }
                    Layout {
                        dims,
                        strides,
                        bytes,
                    }
                })
                .map_err(RuntimeError::from),
        );
    }

    let mut lo = Lowerer {
        arrays: ArrayTable {
            names,
            ids,
            transient,
            layouts,
        },
        syms: SymTable::default(),
        init_syms: SymFile::default(),
        specs: Vec::new(),
        bindings: symbols.clone(),
    };

    // Intern every provided symbol value (sorted for deterministic slots);
    // the old interpreter seeded its bindings map with all of them.
    let mut provided: Vec<(&String, &i64)> = symbols.iter().collect();
    provided.sort();
    for (name, &value) in provided {
        let slot = lo.syms.intern(name, &mut lo.init_syms);
        lo.init_syms.vals[slot as usize] = value;
        lo.init_syms.defined[slot as usize] = true;
    }

    let states: Vec<PlanGraph> = sdfg
        .states
        .iter()
        .map(|s| lo.lower_graph(&s.graph))
        .collect();
    let mut cfg = lo.lower_cf(&sdfg.cfg);
    // Specialization post-pass: walk the original and lowered control-flow
    // trees in parallel (they are structurally identical) and attach
    // specialized kernels to unit-step innermost loops over a single state.
    lo.attach_cf_specs(&sdfg.cfg, &mut cfg, sdfg, &states);
    ExecPlan {
        arrays: lo.arrays,
        syms: lo.syms,
        init_syms: lo.init_syms,
        states,
        cfg,
        specs: lo.specs,
    }
}

/// Resolve a control-flow subtree that is a single state (possibly wrapped
/// in singleton sequences, which the frontend's loop builder emits).
fn singleton_state(cf: &ControlFlow) -> Option<usize> {
    match cf {
        ControlFlow::State(id) => Some(*id),
        ControlFlow::Sequence(items) if items.len() == 1 => singleton_state(&items[0]),
        _ => None,
    }
}

impl Lowerer {
    fn sym(&mut self, name: &str) -> u32 {
        self.syms.intern(name, &mut self.init_syms)
    }

    fn array(&mut self, name: &str) -> Result<u32, RuntimeError> {
        self.arrays
            .id(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))
    }

    fn lower_sym_expr(&mut self, e: &SymExpr) -> CIdx {
        match e {
            SymExpr::Int(v) => CIdx::Const(*v),
            SymExpr::Sym(s) => CIdx::Slot(self.sym(s)),
            SymExpr::Add(a, b) => match (&**a, &**b) {
                (SymExpr::Sym(s), SymExpr::Int(v)) | (SymExpr::Int(v), SymExpr::Sym(s)) => {
                    CIdx::SlotOffset(self.sym(s), *v)
                }
                _ => self.lower_sym_general(e),
            },
            SymExpr::Sub(a, b) => match (&**a, &**b) {
                (SymExpr::Sym(s), SymExpr::Int(v)) => CIdx::SlotOffset(self.sym(s), -*v),
                _ => self.lower_sym_general(e),
            },
            _ => self.lower_sym_general(e),
        }
    }

    fn lower_sym_general(&mut self, e: &SymExpr) -> CIdx {
        let mut ops = Vec::new();
        let result = self.lower_sym_into(e, &mut ops);
        CIdx::Expr(CompiledSymExpr {
            n_regs: result + 1,
            result,
            ops,
        })
    }

    fn lower_sym_into(&mut self, e: &SymExpr, ops: &mut Vec<SymInstr>) -> u32 {
        let bin = |op: SymBin, a: u32, b: u32, ops: &mut Vec<SymInstr>| {
            let dst = ops.len() as u32;
            ops.push(SymInstr::Bin { dst, op, a, b });
            dst
        };
        match e {
            SymExpr::Int(v) => {
                let dst = ops.len() as u32;
                ops.push(SymInstr::Const { dst, value: *v });
                dst
            }
            SymExpr::Sym(s) => {
                let slot = self.sym(s);
                let dst = ops.len() as u32;
                ops.push(SymInstr::Load { dst, slot });
                dst
            }
            SymExpr::Add(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Add, a, b, ops)
            }
            SymExpr::Sub(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Sub, a, b, ops)
            }
            SymExpr::Mul(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Mul, a, b, ops)
            }
            SymExpr::Div(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Div, a, b, ops)
            }
            SymExpr::Rem(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Rem, a, b, ops)
            }
            SymExpr::Min(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Min, a, b, ops)
            }
            SymExpr::Max(a, b) => {
                let (a, b) = (self.lower_sym_into(a, ops), self.lower_sym_into(b, ops));
                bin(SymBin::Max, a, b, ops)
            }
            SymExpr::Neg(a) => {
                let a = self.lower_sym_into(a, ops);
                let dst = ops.len() as u32;
                ops.push(SymInstr::Neg { dst, a });
                dst
            }
        }
    }

    /// Lower a memlet subset into a pre-classified access.  Range dimensions
    /// are read at their start index, matching `Subset::eval_indices`.
    fn lower_access(&mut self, subset: &dace_sdfg::Subset) -> PlanAccess {
        match subset.classify() {
            SubsetClass::All => PlanAccess::All,
            SubsetClass::Element | SubsetClass::Other => PlanAccess::Element(
                subset
                    .0
                    .iter()
                    .map(|r| match r {
                        dace_sdfg::IndexRange::Index(e) => self.lower_sym_expr(e),
                        dace_sdfg::IndexRange::Range { start, .. } => self.lower_sym_expr(start),
                    })
                    .collect(),
            ),
        }
    }

    fn lower_graph(&mut self, graph: &DataflowGraph) -> PlanGraph {
        let Some(order) = graph.topological_order() else {
            return PlanGraph {
                nodes: Vec::new(),
                order: Vec::new(),
                fail: Some(RuntimeError::CyclicGraph("<graph>".to_string())),
            };
        };
        let nodes = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| match node {
                DfNode::Access(name) => match self.array(name) {
                    Ok(a) => PlanNode::Access(a),
                    Err(e) => PlanNode::Fail(e),
                },
                DfNode::Tasklet(t) => match self.lower_tasklet(graph, id, t) {
                    Ok(t) => PlanNode::Tasklet(t),
                    Err(e) => PlanNode::Fail(e),
                },
                DfNode::MapScope(m) => match self.lower_map(m) {
                    Ok(m) => PlanNode::Map(Box::new(m)),
                    Err(e) => PlanNode::Fail(e),
                },
                DfNode::Library(op) => match self.lower_library(graph, id, op) {
                    Ok(l) => PlanNode::Library(l),
                    Err(e) => PlanNode::Fail(e),
                },
            })
            .collect();
        PlanGraph {
            nodes,
            order,
            fail: None,
        }
    }

    fn lower_tasklet(
        &mut self,
        graph: &DataflowGraph,
        node: usize,
        tasklet: &Tasklet,
    ) -> Result<PlanTasklet, RuntimeError> {
        // Resolve input connectors to slots, in edge order (later edges with
        // the same connector overwrite earlier loads, as the map-based
        // interpreter did).
        let mut slot_of: HashMap<&str, u32> = HashMap::new();
        let mut reads = Vec::new();
        for e in graph.in_edges(node) {
            let conn = e.dst_conn.as_deref().ok_or_else(|| {
                RuntimeError::Malformed("tasklet in-edge without connector".into())
            })?;
            let next = slot_of.len() as u32;
            let slot = *slot_of.entry(conn).or_insert(next);
            let array = self.array(&e.memlet.data)?;
            let access = self.lower_access(&e.memlet.subset);
            reads.push(PlanRead {
                slot,
                array,
                access,
            });
        }
        // Compile the assignments, promoting iteration symbols to extra
        // slots loaded from the symbol file.
        let mut n_slots = slot_of.len();
        let mut iter_loads: Vec<(u32, u32)> = Vec::new();
        let mut iter_slot_of: HashMap<String, u32> = HashMap::new();
        let mut exprs = Vec::new();
        // `slot_of` borrows connector names from `graph`; snapshot it into
        // owned keys so the closure below can use it without lifetime knots.
        let conn_slots: HashMap<String, u32> =
            slot_of.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        for (_, expr) in &tasklet.code {
            let compiled = {
                let mut resolve = |leaf: LeafRef<'_>| -> Option<u32> {
                    match leaf {
                        LeafRef::Input(name) => conn_slots.get(name).copied(),
                        LeafRef::Iter(name) => {
                            if let Some(&slot) = iter_slot_of.get(name) {
                                return Some(slot);
                            }
                            let slot = n_slots as u32;
                            n_slots += 1;
                            iter_slot_of.insert(name.to_string(), slot);
                            let sym = self.syms.intern(name, &mut self.init_syms);
                            iter_loads.push((slot, sym));
                            Some(slot)
                        }
                    }
                };
                expr.compile(&mut resolve)
            };
            exprs.push(compiled.map_err(RuntimeError::Tasklet)?);
        }
        // Resolve output connectors to assignment indices.
        let mut writes = Vec::new();
        for e in graph.out_edges(node) {
            let conn = e.src_conn.as_deref().ok_or_else(|| {
                RuntimeError::Malformed("tasklet out-edge without connector".into())
            })?;
            // The last assignment with this output name wins, matching the
            // insertion-order overwrite of the map-based interpreter.
            let expr = tasklet
                .code
                .iter()
                .rposition(|(out, _)| out == conn)
                .ok_or_else(|| {
                    RuntimeError::Malformed(format!(
                        "tasklet `{}` has no assignment for connector `{conn}`",
                        tasklet.label
                    ))
                })? as u32;
            let array = self.array(&e.memlet.data)?;
            let access = self.lower_access(&e.memlet.subset);
            writes.push(PlanWrite {
                expr,
                array,
                access,
                accumulate: matches!(e.memlet.wcr, Some(Wcr::Sum)),
            });
        }
        Ok(PlanTasklet {
            reads,
            iter_loads,
            n_slots,
            exprs,
            writes,
        })
    }

    fn lower_map(&mut self, map: &MapScope) -> Result<PlanMap, RuntimeError> {
        let params: Vec<u32> = map.params.iter().map(|p| self.sym(p)).collect();
        let ranges: Vec<(CIdx, CIdx)> = map
            .ranges
            .iter()
            .map(|(s, e)| (self.lower_sym_expr(s), self.lower_sym_expr(e)))
            .collect();
        let mut referenced = Vec::new();
        for name in map.body.referenced_arrays() {
            referenced.push(self.array(&name)?);
        }
        let body = self.lower_graph(&map.body);
        // The affine dependence analyzer replaces the old syntactic
        // `parallel_safe` heuristic: it rejects provably racy bodies (fixed
        // element or whole-array writes) and admits provably injective
        // strided/offset writes the heuristic had no way to reason about.
        let verdict = dace_sdfg::analyze_map(map, &self.bindings);
        let body_tasklets = map
            .body
            .nodes
            .iter()
            .filter(|n| matches!(n, DfNode::Tasklet(_)))
            .count() as u64;
        let elementwise = self.lower_elementwise(map);
        // Specialization: a single-parameter map whose body is one affine
        // tasklet compiles to a flat strided loop (maps are rectangular, so
        // only the innermost/only dimension is specialized).
        let spec = if map.params.len() == 1 {
            self.recognize_spec(&map.body, &body, &map.params[0])
                .map(|k| {
                    let id = self.specs.len() as u32;
                    self.specs.push(k);
                    id
                })
        } else {
            None
        };
        Ok(PlanMap {
            params,
            ranges,
            body,
            referenced,
            parallel: map.parallel,
            verdict,
            body_tasklets,
            elementwise,
            spec,
        })
    }

    /// Structural eligibility of the element-wise flat-loop fast path; the
    /// remaining (size-dependent) conditions are checked per execution.
    fn lower_elementwise(&mut self, map: &MapScope) -> Option<PlanElementwise> {
        let mut tasklet_id = None;
        for (i, n) in map.body.nodes.iter().enumerate() {
            match n {
                DfNode::Tasklet(_) => {
                    if tasklet_id.is_some() {
                        return None;
                    }
                    tasklet_id = Some(i);
                }
                DfNode::Access(_) => {}
                _ => return None,
            }
        }
        let tnode = tasklet_id?;
        let DfNode::Tasklet(tasklet) = &map.body.nodes[tnode] else {
            unreachable!()
        };
        if tasklet.code.len() != 1 {
            return None;
        }
        let in_edges = map.body.in_edges(tnode);
        let out_edges = map.body.out_edges(tnode);
        if out_edges.len() != 1 || !out_edges[0].memlet.subset.is_identity_of(&map.params) {
            return None;
        }
        if !in_edges
            .iter()
            .all(|e| e.memlet.subset.is_identity_of(&map.params))
        {
            return None;
        }
        let mut slot_of: HashMap<String, u32> = HashMap::new();
        let mut reads = Vec::new();
        for e in &in_edges {
            let conn = e.dst_conn.as_deref()?;
            let next = slot_of.len() as u32;
            let slot = *slot_of.entry(conn.to_string()).or_insert(next);
            let array = self.array(&e.memlet.data).ok()?;
            reads.push((slot, array));
        }
        let out_array = self.array(&out_edges[0].memlet.data).ok()?;
        let accumulate = matches!(out_edges[0].memlet.wcr, Some(Wcr::Sum));
        // Compile the expression.  Map parameters may not appear as values
        // (the flat loop does not materialise per-point indices); any other
        // iteration symbol is loop-invariant and loaded once per execution.
        let mut n_slots = slot_of.len();
        let mut iter_loads: Vec<(u32, u32)> = Vec::new();
        let mut iter_slot_of: HashMap<String, u32> = HashMap::new();
        let (_, expr) = &tasklet.code[0];
        let compiled = {
            let params = &map.params;
            let syms = &mut self.syms;
            let init_syms = &mut self.init_syms;
            let mut resolve = |leaf: LeafRef<'_>| -> Option<u32> {
                match leaf {
                    LeafRef::Input(name) => slot_of.get(name).copied(),
                    LeafRef::Iter(name) => {
                        if params.iter().any(|p| p == name) {
                            return None;
                        }
                        if let Some(&slot) = iter_slot_of.get(name) {
                            return Some(slot);
                        }
                        let slot = n_slots as u32;
                        n_slots += 1;
                        iter_slot_of.insert(name.to_string(), slot);
                        iter_loads.push((slot, syms.intern(name, init_syms)));
                        Some(slot)
                    }
                }
            };
            expr.compile(&mut resolve).ok()?
        };
        Some(PlanElementwise {
            reads,
            iter_loads,
            n_slots,
            expr: compiled,
            out_array,
            accumulate,
        })
    }

    /// Lower a memlet subset into an affine access of `var`: every dimension
    /// must be a plain index decomposable as `coeff * var + rest`, against an
    /// array whose concrete layout is known and of matching rank.
    fn lower_affine_subset(
        &mut self,
        subset: &Subset,
        var: &str,
        array: u32,
    ) -> Option<SpecAccess> {
        if !subset.is_element() {
            return None;
        }
        {
            let layout = self.arrays.layouts[array as usize].as_ref().ok()?;
            if subset.0.len() != layout.dims.len() {
                return None;
            }
        }
        let mut rest = Vec::with_capacity(subset.0.len());
        let mut coeff = Vec::with_capacity(subset.0.len());
        for r in &subset.0 {
            let IndexRange::Index(e) = r else { return None };
            let (k, rem) = e.affine_in(var)?;
            coeff.push(k);
            rest.push(self.lower_sym_expr(&rem));
        }
        Some(SpecAccess { array, rest, coeff })
    }

    /// Recognize a specializable loop body: a dataflow graph of access nodes
    /// plus exactly one single-assignment tasklet whose memlets are all
    /// affine in `var` (element subsets) or loop-invariant scalars
    /// (whole-array subsets of length-1 containers).  `graph` is the
    /// original body and `lowered` its lowered form; the two correspond
    /// node-for-node and edge-for-edge by construction.
    fn recognize_spec(
        &mut self,
        graph: &DataflowGraph,
        lowered: &PlanGraph,
        var: &str,
    ) -> Option<SpecKernel> {
        if lowered.fail.is_some() {
            return None;
        }
        let mut tasklet = None;
        let mut arrays = Vec::new();
        for (id, node) in lowered.nodes.iter().enumerate() {
            match node {
                PlanNode::Access(a) => {
                    if !arrays.contains(a) {
                        arrays.push(*a);
                    }
                }
                PlanNode::Tasklet(t) => {
                    if tasklet.is_some() {
                        return None;
                    }
                    tasklet = Some((id, t));
                }
                _ => return None,
            }
        }
        let (tnode, t) = tasklet?;
        if t.exprs.len() != 1 || t.writes.len() != 1 {
            return None;
        }
        let out_edges = graph.out_edges(tnode);
        let in_edges = graph.in_edges(tnode);
        if out_edges.len() != 1 || in_edges.len() != t.reads.len() {
            return None;
        }
        let out_array = t.writes[0].array;
        let write = self.lower_affine_subset(&out_edges[0].memlet.subset, var, out_array)?;
        let mut reads = Vec::new();
        let mut scalar_reads = Vec::new();
        let mut seen_slots = Vec::new();
        for (r, e) in t.reads.iter().zip(&in_edges) {
            // Duplicate connectors share a slot with last-wins semantics;
            // keep that subtlety on the VM path.
            if seen_slots.contains(&r.slot) {
                return None;
            }
            seen_slots.push(r.slot);
            match &r.access {
                PlanAccess::Element(_) => {
                    // Reads aliasing the written array are only specialized
                    // when the write/read relation is statically decidable
                    // (a constant offset along `var`); anything symbolic
                    // falls back to the VM, which tracks writes exactly.
                    if r.array == out_array
                        && !dace_sdfg::deps::alias_decidable(
                            &out_edges[0].memlet.subset,
                            &e.memlet.subset,
                            var,
                        )
                    {
                        return None;
                    }
                    reads.push((
                        r.slot,
                        self.lower_affine_subset(&e.memlet.subset, var, r.array)?,
                    ));
                }
                PlanAccess::All => {
                    // A scalar read of the written array would have to track
                    // per-iteration writes; leave that to the VM.
                    if r.array == out_array {
                        return None;
                    }
                    scalar_reads.push((r.slot, r.array));
                }
            }
        }
        let var_slot = self.sym(var);
        let mut iter_loads = Vec::new();
        let mut inner_iter_slots = Vec::new();
        for &(slot, sym) in &t.iter_loads {
            if sym == var_slot {
                inner_iter_slots.push(slot);
            } else {
                iter_loads.push((slot, sym));
            }
        }
        let expr = t.exprs[0].clone();
        let micro = expr.micro_pattern();
        Some(SpecKernel {
            reads,
            scalar_reads,
            iter_loads,
            inner_iter_slots,
            n_slots: t.n_slots,
            expr,
            micro,
            write,
            accumulate: t.writes[0].accumulate,
            arrays,
            state: None,
        })
    }

    /// Attach specialized kernels to unit-step control-flow loops whose body
    /// is a single recognizable state, recursing structurally through the
    /// original and lowered trees in lock-step.
    fn attach_cf_specs(
        &mut self,
        cf: &ControlFlow,
        plan: &mut PlanCf,
        sdfg: &Sdfg,
        states: &[PlanGraph],
    ) {
        match (cf, plan) {
            (ControlFlow::Sequence(cs), PlanCf::Seq(ps)) => {
                for (c, p) in cs.iter().zip(ps.iter_mut()) {
                    self.attach_cf_specs(c, p, sdfg, states);
                }
            }
            (
                ControlFlow::Branch(b),
                PlanCf::Branch {
                    then_body,
                    else_body,
                    ..
                },
            ) => {
                self.attach_cf_specs(&b.then_body, then_body, sdfg, states);
                if let (Some(c), Some(p)) = (b.else_body.as_ref(), else_body.as_mut()) {
                    self.attach_cf_specs(c, p, sdfg, states);
                }
            }
            (ControlFlow::Loop(l), PlanCf::Loop { body, spec, .. }) => {
                self.attach_cf_specs(&l.body, body, sdfg, states);
                // Only unit-step loops specialize: the flat-stride walk
                // assumes consecutive iterator values.  (The runtime step is
                // re-checked at dispatch; this is the structural gate.)
                if l.step != SymExpr::int(1) {
                    return;
                }
                let Some(sid) = singleton_state(&l.body) else {
                    return;
                };
                if let Some(mut k) =
                    self.recognize_spec(&sdfg.states[sid].graph, &states[sid], &l.var)
                {
                    k.state = Some(sid);
                    *spec = Some(self.specs.len() as u32);
                    self.specs.push(k);
                }
            }
            _ => {}
        }
    }

    fn lower_library(
        &mut self,
        graph: &DataflowGraph,
        node: usize,
        op: &LibraryOp,
    ) -> Result<PlanLibrary, RuntimeError> {
        let mut inputs = Vec::new();
        for e in graph.in_edges(node) {
            let conn = e.dst_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("library in-edge without connector".into())
            })?;
            inputs.push((conn, self.array(&e.memlet.data)?));
        }
        let mut outputs = Vec::new();
        for e in graph.out_edges(node) {
            let conn = e.src_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("library out-edge without connector".into())
            })?;
            outputs.push((conn, self.array(&e.memlet.data)?, e.memlet.wcr.is_some()));
        }
        Ok(PlanLibrary {
            op: op.clone(),
            inputs,
            outputs,
        })
    }

    fn lower_cf(&mut self, cf: &ControlFlow) -> PlanCf {
        match cf {
            ControlFlow::State(id) => PlanCf::State(*id),
            ControlFlow::Sequence(children) => {
                PlanCf::Seq(children.iter().map(|c| self.lower_cf(c)).collect())
            }
            ControlFlow::Loop(l) => PlanCf::Loop {
                var: self.sym(&l.var),
                start: self.lower_sym_expr(&l.start),
                end: self.lower_sym_expr(&l.end),
                step: self.lower_sym_expr(&l.step),
                body: Box::new(self.lower_cf(&l.body)),
                spec: None,
            },
            ControlFlow::Branch(b) => PlanCf::Branch {
                cond: self.lower_cond(&b.cond),
                then_body: Box::new(self.lower_cf(&b.then_body)),
                else_body: b.else_body.as_ref().map(|e| Box::new(self.lower_cf(e))),
            },
        }
    }

    fn lower_cond(&mut self, cond: &CondExpr) -> PlanCond {
        match cond {
            CondExpr::Cmp { lhs, op, rhs } => {
                let lhs = match self.lower_operand(lhs) {
                    Ok(o) => o,
                    Err(e) => return PlanCond::Fail(e),
                };
                let rhs = match self.lower_operand(rhs) {
                    Ok(o) => o,
                    Err(e) => return PlanCond::Fail(e),
                };
                PlanCond::Cmp { lhs, op: *op, rhs }
            }
            CondExpr::Not(inner) => PlanCond::Not(Box::new(self.lower_cond(inner))),
            CondExpr::StoredFlag(name) => match self.array(name) {
                Ok(a) => PlanCond::StoredFlag(a),
                Err(e) => PlanCond::Fail(e),
            },
        }
    }

    fn lower_operand(&mut self, op: &CondOperand) -> Result<PlanOperand, RuntimeError> {
        Ok(match op {
            CondOperand::Const(v) => PlanOperand::Const(*v),
            CondOperand::Sym(e) => PlanOperand::Sym(self.lower_sym_expr(e)),
            CondOperand::Element { array, index } => PlanOperand::Element {
                array: self.array(array)?,
                index: index.iter().map(|e| self.lower_sym_expr(e)).collect(),
            },
        })
    }
}
