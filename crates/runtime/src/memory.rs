//! Memory instrumentation: tracks live container allocations and the peak
//! footprint of an execution.
//!
//! The paper's Fig. 13 compares the measured peak memory of different
//! store/recompute configurations against the user-set limit; this tracker is
//! what produces those measurements in the reproduction.  Byte counts use the
//! declared element type of each container (so a float32 container counts 4
//! bytes per element even though the interpreter stores f64 values), matching
//! the analytic model used by the ILP formulation.

use std::collections::BTreeMap;

/// Tracks allocations and deallocations of named containers.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    live: BTreeMap<String, usize>,
    current_bytes: usize,
    peak_bytes: usize,
    /// Total number of allocation events.
    pub allocations: usize,
    /// Total number of deallocation events.
    pub deallocations: usize,
}

impl MemoryTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the allocation of a container. Re-allocating an already live
    /// container first frees the old size.
    pub fn alloc(&mut self, name: &str, bytes: usize) {
        if let Some(old) = self.live.insert(name.to_string(), bytes) {
            self.current_bytes = self.current_bytes.saturating_sub(old);
        }
        self.current_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        self.allocations += 1;
    }

    /// Record the deallocation of a container (no-op if it is not live).
    pub fn free(&mut self, name: &str) {
        if let Some(bytes) = self.live.remove(name) {
            self.current_bytes = self.current_bytes.saturating_sub(bytes);
            self.deallocations += 1;
        }
    }

    /// Whether the container is currently live.
    pub fn is_live(&self, name: &str) -> bool {
        self.live.contains_key(name)
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> usize {
        self.current_bytes
    }

    /// Peak bytes observed so far.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Live containers and their sizes.
    pub fn live_containers(&self) -> &BTreeMap<String, usize> {
        &self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new();
        m.alloc("A", 100);
        m.alloc("B", 200);
        assert_eq!(m.current_bytes(), 300);
        assert_eq!(m.peak_bytes(), 300);
        m.free("A");
        assert_eq!(m.current_bytes(), 200);
        assert_eq!(m.peak_bytes(), 300);
        m.alloc("C", 50);
        assert_eq!(m.peak_bytes(), 300);
        m.alloc("D", 100);
        assert_eq!(m.peak_bytes(), 350);
    }

    #[test]
    fn realloc_replaces_size() {
        let mut m = MemoryTracker::new();
        m.alloc("A", 100);
        m.alloc("A", 40);
        assert_eq!(m.current_bytes(), 40);
        assert!(m.is_live("A"));
    }

    #[test]
    fn free_unknown_is_noop() {
        let mut m = MemoryTracker::new();
        m.free("missing");
        assert_eq!(m.current_bytes(), 0);
        assert_eq!(m.deallocations, 0);
    }
}
