//! The specialized-kernel execution tier.
//!
//! Plan compilation ([`crate::plan`]) recognizes dominant kernel shapes —
//! affine-memlet elementwise bodies, fixed-radius stencils, and
//! reduction/contraction bodies — in unit-step innermost control-flow loops
//! and single-parameter maps, and records them as
//! [`crate::plan::SpecKernel`]s.  This module is the dispatcher: it turns a
//! recognized kernel into one flat native loop where every array access
//! advances by a precomputed constant stride, instead of re-walking the plan
//! graph and re-evaluating compiled index expressions per point.
//!
//! Exactness is the design invariant:
//!
//! * **Validate first, mutate second.**  Every precondition — runtime trip
//!   count, bound iteration symbols, in-range accesses across the whole
//!   iteration space, scalar-read container sizes — is checked before any
//!   allocation or write.  Any failure returns `Ok(false)` and the caller
//!   falls back to the register VM, which reproduces the exact semantics of
//!   the failing case, including partial execution followed by an error.
//! * **Bit-identical arithmetic.**  The specialized loop evaluates the very
//!   same [`dace_sdfg::CompiledExpr`] the VM would (or its recognized
//!   [`dace_sdfg::MicroPattern`], whose evaluation applies the same
//!   operations in the same order), with reads loaded into the same slots in
//!   the same order —
//!   so results match the VM bit for bit, a property the proptests in
//!   `tests/spec.rs` pin down.
//! * **Aliasing-aware.**  Reads of the written array go through the output
//!   buffer being mutated, preserving Gauss–Seidel-style read-after-write
//!   order within the loop.  Recognition only admits such aliased reads
//!   when [`dace_sdfg::deps::alias_decidable`] proves the write/read
//!   offset relation is statically understood (see
//!   `docs/verification.md`); anything else stays on the VM.
//!
//! Dispatch is profile-guided ([`SpecMode::Auto`]): a site runs on the VM
//! for its first [`SPEC_UPGRADE_THRESHOLD`] dispatch opportunities, then
//! self-upgrades to the specialized loop.  [`SpecMode::ForceOn`] /
//! [`SpecMode::ForceOff`] (or the `DACE_SPEC=on|off` environment variable)
//! pin the choice for A/B testing, mirroring [`crate::MapPath`].

use crate::error::RuntimeResult;
use crate::executor::RunState;
use crate::plan::{ExecPlan, SpecAccess};

/// Number of dispatch opportunities a specialization site spends on the VM
/// before [`SpecMode::Auto`] upgrades it to the specialized loop.  Cold
/// sites keep the VM's lazy validation and pay no specialization cost.
pub(crate) const SPEC_UPGRADE_THRESHOLD: u64 = 3;

/// Specialized-kernel dispatch control: the [`crate::MapPath`]-style force
/// knob of the specialization tier (`Session::force_specialization`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpecMode {
    /// Profile-guided: each site upgrades to its specialized loop after a
    /// fixed number of VM executions.
    #[default]
    Auto,
    /// Dispatch specialized kernels whenever structurally recognized.
    ForceOn,
    /// Never dispatch specialized kernels (pure register-VM execution).
    ForceOff,
}

impl SpecMode {
    /// Initial mode from the `DACE_SPEC` environment variable: `off`, `on`,
    /// or anything else (including unset) for `Auto`.
    pub(crate) fn from_env() -> Self {
        match std::env::var("DACE_SPEC").as_deref() {
            Ok("off") => SpecMode::ForceOff,
            Ok("on") => SpecMode::ForceOn,
            _ => SpecMode::Auto,
        }
    }
}

/// One access flattened against its layout for a concrete `[start, end)`
/// window: row-major offset at `i = start`, and offset delta per iteration.
#[derive(Clone, Copy)]
struct Flat {
    base: i64,
    step: i64,
}

/// Where a specialized read loads from.
enum SrcBuf<'a> {
    /// A slab tensor distinct from the written array.
    Slab(&'a [f64]),
    /// The written array itself (reads observe in-loop writes).
    Out,
}

/// A specialized read with its running flat offset.
struct SpecSrc<'a> {
    slot: usize,
    off: i64,
    step: i64,
    buf: SrcBuf<'a>,
}

impl RunState {
    /// Whether a specialization site should dispatch now, advancing its
    /// profile counter in `Auto` mode.
    pub(crate) fn spec_should_dispatch(&mut self, spec_id: u32) -> bool {
        match self.spec_mode {
            SpecMode::ForceOff => false,
            SpecMode::ForceOn => true,
            SpecMode::Auto => {
                let count = &mut self.spec_exec_counts[spec_id as usize];
                if *count >= SPEC_UPGRADE_THRESHOLD {
                    true
                } else {
                    *count += 1;
                    false
                }
            }
        }
    }

    /// Flatten one access over `i in [start, start + trip)`: evaluate the
    /// loop-invariant index parts, bounds-check the extreme iterations per
    /// dimension (which covers every iteration, indices being monotone in
    /// `i`), and fold the per-dimension strides into a flat base and step.
    /// `None` means the VM must handle this dispatch.
    fn flatten_spec_access(
        &mut self,
        plan: &ExecPlan,
        acc: &SpecAccess,
        start: i64,
        last: i64,
    ) -> Option<Flat> {
        let layout = plan.arrays.layout(acc.array).ok()?;
        let mut base = 0i64;
        let mut step = 0i64;
        for d in 0..acc.coeff.len() {
            let rest = acc.rest[d]
                .eval(&self.syms, &plan.syms.names, &mut self.scratch.i_regs)
                .ok()?;
            let c = acc.coeff[d];
            let at_start = c.checked_mul(start).and_then(|v| v.checked_add(rest))?;
            let at_last = c.checked_mul(last).and_then(|v| v.checked_add(rest))?;
            let (lo, hi) = if c >= 0 {
                (at_start, at_last)
            } else {
                (at_last, at_start)
            };
            if lo < 0 || hi >= layout.dims[d] as i64 {
                return None;
            }
            base = base.checked_add(at_start.checked_mul(layout.strides[d] as i64)?)?;
            step = step.checked_add(c.checked_mul(layout.strides[d] as i64)?)?;
        }
        Some(Flat { base, step })
    }

    /// Execute specialized kernel `spec_id` over `i in [start, end)` with
    /// unit step.  Returns `Ok(false)` — having mutated nothing — when any
    /// precondition fails and the VM must run instead.
    pub(crate) fn exec_spec(
        &mut self,
        plan: &ExecPlan,
        spec_id: u32,
        start: i64,
        end: i64,
    ) -> RuntimeResult<bool> {
        let spec = &plan.specs[spec_id as usize];
        if end <= start {
            // The VM's empty loop is already free; keep one code path.
            return Ok(false);
        }
        let trip = (end - start) as usize;

        // -- Validation (no mutation past this comment until it all holds) --
        for &a in &spec.arrays {
            // A missing non-transient input must surface as the VM's error.
            if self.slab[a as usize].is_none() && !plan.arrays.transient[a as usize] {
                return Ok(false);
            }
        }
        for &(_, sym) in &spec.iter_loads {
            if !self.syms.defined[sym as usize] {
                return Ok(false);
            }
        }
        for &(_, a) in &spec.scalar_reads {
            // Tensor length always equals the layout product, so this is
            // checkable before allocation.
            let Ok(layout) = plan.arrays.layout(a) else {
                return Ok(false);
            };
            if layout.dims.iter().product::<usize>() != 1 {
                return Ok(false);
            }
        }
        let last = end - 1;
        let mut read_flats = Vec::with_capacity(spec.reads.len());
        for (_, acc) in &spec.reads {
            match self.flatten_spec_access(plan, acc, start, last) {
                Some(f) => read_flats.push(f),
                None => return Ok(false),
            }
        }
        let Some(write) = self.flatten_spec_access(plan, &spec.write, start, last) else {
            return Ok(false);
        };

        // -- Execution --
        for &a in &spec.arrays {
            self.ensure_allocated(plan, a)?;
        }
        let out_array = spec.write.array as usize;
        let RunState {
            slab,
            syms,
            scratch,
            ..
        } = self;
        scratch.slots.clear();
        scratch.slots.resize(spec.n_slots, 0.0);
        for &(slot, sym) in &spec.iter_loads {
            scratch.slots[slot as usize] = syms.vals[sym as usize] as f64;
        }
        for &(slot, a) in &spec.scalar_reads {
            scratch.slots[slot as usize] =
                slab[a as usize].as_ref().expect("allocated above").data()[0];
        }
        let mut out_t = slab[out_array].take().expect("allocated above");
        {
            let mut srcs: Vec<SpecSrc<'_>> = spec
                .reads
                .iter()
                .zip(&read_flats)
                .map(|(&(slot, ref acc), flat)| SpecSrc {
                    slot: slot as usize,
                    off: flat.base,
                    step: flat.step,
                    buf: if acc.array as usize == out_array {
                        SrcBuf::Out
                    } else {
                        SrcBuf::Slab(slab[acc.array as usize].as_ref().expect("allocated").data())
                    },
                })
                .collect();
            let out = out_t.data_mut();
            let slots = &mut scratch.slots;
            match &spec.micro {
                Some(m) => run_spec_loop(
                    trip,
                    start,
                    &mut srcs,
                    &spec.inner_iter_slots,
                    slots,
                    out,
                    write,
                    spec.accumulate,
                    |slots| m.eval(slots),
                ),
                None => {
                    let expr = &spec.expr;
                    let f_regs = &mut scratch.f_regs;
                    run_spec_loop(
                        trip,
                        start,
                        &mut srcs,
                        &spec.inner_iter_slots,
                        slots,
                        out,
                        write,
                        spec.accumulate,
                        |slots| expr.eval(slots, f_regs),
                    );
                }
            }
        }
        slab[out_array] = Some(out_t);
        Ok(true)
    }
}

/// The flat inner loop, monomorphized over the expression evaluator: load
/// each read at its running offset (in edge order, so duplicate-slot
/// semantics match the VM), refresh iterator slots, evaluate, write.
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_spec_loop(
    trip: usize,
    start: i64,
    srcs: &mut [SpecSrc<'_>],
    inner_slots: &[u32],
    slots: &mut [f64],
    out: &mut [f64],
    write: Flat,
    accumulate: bool,
    mut eval: impl FnMut(&[f64]) -> f64,
) {
    let mut woff = write.base;
    for k in 0..trip {
        for s in srcs.iter_mut() {
            slots[s.slot] = match s.buf {
                SrcBuf::Slab(d) => d[s.off as usize],
                SrcBuf::Out => out[s.off as usize],
            };
            s.off += s.step;
        }
        if !inner_slots.is_empty() {
            let iv = (start + k as i64) as f64;
            for &sl in inner_slots {
                slots[sl as usize] = iv;
            }
        }
        let v = eval(slots);
        if accumulate {
            out[woff as usize] += v;
        } else {
            out[woff as usize] = v;
        }
        woff += write.step;
    }
}
