//! Dynamic-admission serving over one shared compiled plan.
//!
//! [`crate::BatchDriver`] serves *static* batches: the caller assembles N
//! requests and hands them over together.  A real server does not get that
//! luxury — requests arrive one by one, from many clients, each with its own
//! latency budget.  [`ServeDriver`] closes that gap:
//!
//! * requests are submitted **individually** ([`ServeDriver::submit`],
//!   [`ServeDriver::submit_with_deadline`]) and return a [`RequestHandle`]
//!   immediately;
//! * an **admission queue** coalesces queued requests into batches — a
//!   dispatch fires as soon as [`ServeOptions::max_batch`] requests are
//!   waiting, or when the oldest queued request has lingered for
//!   [`ServeOptions::max_wait`], whichever comes first;
//! * each formed batch fans out over the pooled sessions and the persistent
//!   worker pool exactly like a static batch (the dispatch path *is*
//!   [`BatchDriver::run_batch_with`] — this layer adds admission, not
//!   execution);
//! * handles support blocking [`RequestHandle::wait`], non-blocking
//!   [`RequestHandle::try_wait`] and best-effort [`RequestHandle::cancel`];
//! * a request whose deadline has passed is rejected with
//!   [`ServeError::DeadlineExceeded`] **before ever occupying a worker** —
//!   expiry is checked at admission and again at batch formation;
//! * [`ServeDriver::stats`] returns a [`ServeStats`] snapshot: queue depth,
//!   admitted/completed/cancelled/expired counters and p50/p95 completion
//!   latency over a sliding window.
//!
//! # Guarantees and non-guarantees
//!
//! * **Determinism** — a served request executes exactly like a standalone
//!   [`Session::run`](crate::Session::run) with the same bindings; results
//!   are bit-identical to a serial session loop regardless of how requests
//!   were coalesced.
//! * **Deadline** — a deadline bounds *admission*, not execution: a request
//!   that would start after its deadline never runs and completes with
//!   [`ServeError::DeadlineExceeded`].  A request dispatched before its
//!   deadline runs to completion even if the deadline passes mid-run.
//! * **Cancellation is best-effort** — [`RequestHandle::cancel`] succeeds
//!   only while the request is still queued; once dispatched it completes
//!   normally.
//! * **Drop drains** — dropping the driver serves every request still in
//!   the queue (no handle is left hanging), then stops the dispatcher.
//!
//! ```
//! use std::collections::HashMap;
//! use dace_frontend::{ArrayExpr, ProgramBuilder};
//! use dace_runtime::{compile, ServeDriver};
//! use dace_tensor::Tensor;
//!
//! // Y = 2 * X, as a tiny SDFG.
//! let mut b = ProgramBuilder::new("double");
//! let n = b.symbol("N");
//! b.add_input("X", vec![n.clone()]).unwrap();
//! b.add_input("Y", vec![n.clone()]).unwrap();
//! b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
//! let sdfg = b.build().unwrap();
//!
//! let program = compile(&sdfg, &HashMap::from([("N".to_string(), 3)])).unwrap();
//! let server = ServeDriver::new(program);
//!
//! // Requests are submitted one by one; the admission queue batches them.
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let x = Tensor::from_vec(vec![i as f64; 3], &[3]).unwrap();
//!         server.submit(HashMap::from([("X".to_string(), x)]), &["Y"])
//!     })
//!     .collect();
//! for (i, handle) in handles.into_iter().enumerate() {
//!     let response = handle.wait().unwrap();
//!     assert_eq!(response.outputs["Y"].data(), &[2.0 * i as f64; 3]);
//! }
//! assert_eq!(server.stats().completed, 4);
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dace_tensor::Tensor;

use crate::batch::{BatchDriver, BatchError};
use crate::error::RuntimeError;
use crate::executor::ExecutionReport;
use crate::program::CompiledProgram;

/// Admission-queue tuning knobs for [`ServeDriver`].
///
/// `max_batch` bounds how many requests one dispatch may coalesce;
/// `max_wait` bounds how long the oldest queued request may linger waiting
/// for the batch to fill.  Larger batches amortise scheduling overhead and
/// exploit the worker pool; a shorter linger bounds the latency a lone
/// request pays on an idle server.  See `docs/serving.md` for tuning
/// guidance.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Maximum requests coalesced into one dispatch (clamped to >= 1).
    pub max_batch: usize,
    /// Maximum time the oldest queued request lingers before the batch is
    /// dispatched however full it is.
    pub max_wait: Duration,
    /// Fan-out cap for each dispatched batch (0 = the worker pool's full
    /// width); forwarded to the underlying [`BatchDriver`].
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers: 0,
        }
    }
}

/// Why a served request did not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The request's deadline passed before it was dispatched; it never
    /// occupied a worker.
    DeadlineExceeded {
        /// How far past the deadline the request was when rejected.
        missed_by: Duration,
    },
    /// The request was cancelled while still queued.
    Cancelled,
    /// The request was submitted while (or after) the driver was shutting
    /// down and was never admitted.
    ShuttingDown,
    /// The request executed and failed with a runtime error.
    Execution(RuntimeError),
    /// The request panicked mid-execution; its session was discarded and
    /// the server keeps serving.
    Panicked(String),
    /// The tenant's admission queue was full, so the request was rejected
    /// instead of growing the queue without bound.  `retry_after_hint` is a
    /// coarse estimate of when the queue is likely to have room again —
    /// produced by the multi-tenant [`crate::gateway::Gateway`]; a bare
    /// [`ServeDriver`] queue is unbounded and never raises it.
    Overloaded {
        /// Suggested client back-off before resubmitting (best-effort).
        retry_after_hint: Duration,
    },
    /// The tenant's circuit breaker is open after repeated infrastructure
    /// failures: load is shed early instead of queueing behind a failing
    /// backend.  Raised by [`crate::gateway::Gateway`] admission only.
    Degraded {
        /// Time until the breaker's next half-open recovery probe.
        retry_after_hint: Duration,
    },
    /// A serving session could not be checked out for this request (today
    /// only reachable via fault injection, see
    /// [`crate::gateway::FaultPlan`]).
    Checkout(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeadlineExceeded { missed_by } => {
                write!(f, "deadline exceeded (missed by {missed_by:?})")
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Execution(e) => write!(f, "request failed: {e}"),
            ServeError::Panicked(msg) => write!(f, "request panicked: {msg}"),
            ServeError::Overloaded { retry_after_hint } => {
                write!(
                    f,
                    "admission queue full (retry after ~{retry_after_hint:?})"
                )
            }
            ServeError::Degraded { retry_after_hint } => write!(
                f,
                "tenant degraded: circuit breaker open (retry after ~{retry_after_hint:?})"
            ),
            ServeError::Checkout(msg) => write!(f, "session checkout failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Successful result of one served request.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// The requested (fetched) arrays, cloned out of the serving session.
    pub outputs: HashMap<String, Tensor>,
    /// Execution report of this request's run.
    pub report: ExecutionReport,
    /// Submit-to-completion latency of this request (queueing included).
    pub latency: Duration,
    /// How many requests the dispatch that served this one coalesced —
    /// `1` means the request ran alone, `max_batch` means a full batch.
    pub batched_with: usize,
}

/// Lifecycle of one request, guarded by `RequestState::phase`.
enum ReqPhase {
    /// Waiting in the admission queue; owns the request payload.
    Queued {
        inputs: HashMap<String, Tensor>,
        fetch: Vec<String>,
    },
    /// Claimed by the dispatcher and running (or about to).
    Dispatched,
    /// Finished; the result waits for `wait`/`try_wait`.
    Done(Result<ServeResponse, ServeError>),
    /// The result was consumed by `wait`.
    Taken,
}

struct RequestState {
    id: u64,
    submitted: Instant,
    deadline: Option<Instant>,
    phase: Mutex<ReqPhase>,
    done_cv: Condvar,
}

impl RequestState {
    fn lock_phase(&self) -> MutexGuard<'_, ReqPhase> {
        self.phase.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn complete(&self, result: Result<ServeResponse, ServeError>) {
        *self.lock_phase() = ReqPhase::Done(result);
        self.done_cv.notify_all();
    }
}

/// Handle to one submitted request.
///
/// Obtained from [`ServeDriver::submit`] /
/// [`ServeDriver::submit_with_deadline`].  The result is retrieved exactly
/// once with [`RequestHandle::wait`]; [`RequestHandle::try_wait`] polls
/// without consuming it.  Dropping a handle does not cancel the request —
/// it simply discards the result when it arrives.
pub struct RequestHandle {
    req: Arc<RequestState>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.req.id)
            .field("done", &self.is_done())
            .finish()
    }
}

impl RequestHandle {
    /// Monotonic id of this request (unique per driver).
    pub fn id(&self) -> u64 {
        self.req.id
    }

    /// Whether a result (or rejection) is available.
    pub fn is_done(&self) -> bool {
        matches!(&*self.req.lock_phase(), ReqPhase::Done(_) | ReqPhase::Taken)
    }

    /// Block until the request completes and take its result.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut phase = self.req.lock_phase();
        loop {
            match &*phase {
                ReqPhase::Done(_) => break,
                ReqPhase::Taken => unreachable!("wait consumes the handle"),
                _ => {
                    phase = self
                        .req
                        .done_cv
                        .wait(phase)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        match std::mem::replace(&mut *phase, ReqPhase::Taken) {
            ReqPhase::Done(result) => result,
            _ => unreachable!("loop above exits only on Done"),
        }
    }

    /// Non-blocking poll: `Some(result)` once the request completed (the
    /// stored result is cloned, so a later [`RequestHandle::wait`] still
    /// succeeds), `None` while it is queued or running.
    pub fn try_wait(&self) -> Option<Result<ServeResponse, ServeError>> {
        match &*self.req.lock_phase() {
            ReqPhase::Done(result) => Some(result.clone()),
            _ => None,
        }
    }

    /// Bounded blocking wait: block up to `timeout` for the request to
    /// complete, so callers can bound their own wait instead of relying
    /// solely on server-side deadlines.  Returns `None` on timeout —
    /// the request keeps running and the handle stays fully usable — or
    /// `Some(result)` once completed (the stored result is cloned, like
    /// [`RequestHandle::try_wait`], so a later [`RequestHandle::wait`]
    /// still succeeds).
    ///
    /// The expired-then-completed race is benign by construction: a
    /// `wait_timeout` that returns `None` at the same instant the
    /// dispatcher completes the request loses nothing — the result is
    /// stored on the request, and the next `try_wait`/`wait_timeout`/
    /// [`RequestHandle::wait`] observes it.  The result is delivered
    /// exactly once by `wait` however many bounded waits timed out before.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, ServeError>> {
        let deadline = Instant::now() + timeout;
        let mut phase = self.req.lock_phase();
        loop {
            if let ReqPhase::Done(result) = &*phase {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .req
                .done_cv
                .wait_timeout(phase, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            phase = guard;
        }
    }

    /// Best-effort cancellation: succeeds (returns `true`) only while the
    /// request still sits in the admission queue, completing it with
    /// [`ServeError::Cancelled`].  A request already dispatched or finished
    /// is unaffected (`false`).
    pub fn cancel(&self) -> bool {
        let mut phase = self.req.lock_phase();
        if matches!(&*phase, ReqPhase::Queued { .. }) {
            // Dropping the payload here releases the input tensors
            // immediately; the dispatcher skips the request when it drains
            // it from the queue.
            *phase = ReqPhase::Done(Err(ServeError::Cancelled));
            self.req.done_cv.notify_all();
            let mut c = self.shared.lock_counters();
            c.queued -= 1;
            c.cancelled += 1;
            true
        } else {
            false
        }
    }
}

/// Request-lifecycle counters, all under one lock so a [`ServeStats`]
/// snapshot is *coherent*: every admitted request is counted in exactly one
/// of `queued`, `in_flight`, `completed`, `failed`, `cancelled`, `expired`
/// or `rejected` at every instant, and each lifecycle transition updates
/// both sides of the move in a single critical section.  (Independent
/// relaxed atomics — the previous design — allowed torn snapshots where a
/// request had left `queued` but not yet arrived anywhere else, breaking
/// the conservation invariant documented on [`ServeStats`].)
#[derive(Default)]
struct Counters {
    admitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    expired: u64,
    rejected: u64,
    queued: u64,
    in_flight: u64,
    batches: u64,
    largest_batch: usize,
}

/// Sliding window of completion latencies (seconds) for the percentile
/// figures in [`ServeStats`] (shared with the per-tenant windows of
/// [`crate::gateway::Gateway`]).
pub(crate) struct LatencyWindow {
    samples: Vec<Duration>,
    next: usize,
}

const LATENCY_WINDOW: usize = 4096;

impl LatencyWindow {
    pub(crate) fn new() -> Self {
        LatencyWindow {
            samples: Vec::new(),
            next: 0,
        }
    }

    pub(crate) fn record(&mut self, latency: Duration) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(latency);
        } else {
            self.samples[self.next] = latency;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    /// Nearest-rank percentile over the window (`q` in [0, 1]).
    fn percentile(sorted: &[Duration], q: f64) -> Duration {
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// (p50, p95) over the current window, zero while empty.
    pub(crate) fn percentiles(&self) -> (Duration, Duration) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        (
            Self::percentile(&sorted, 0.50),
            Self::percentile(&sorted, 0.95),
        )
    }
}

/// Snapshot of a [`ServeDriver`]'s counters and latency percentiles.
///
/// Snapshots are **coherent**: all counters are read under one lock, and
/// every lifecycle transition updates its counters atomically, so the
/// conservation invariant
///
/// ```text
/// admitted == queue_depth + in_flight
///           + completed + failed + cancelled + expired + rejected
/// ```
///
/// holds on *every* snapshot, not just at quiescence.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests currently waiting in the admission queue.  (Cancelled or
    /// expired requests are counted out the moment they complete, even if
    /// the dispatcher has not physically drained them yet.)
    pub queue_depth: usize,
    /// Requests claimed by the dispatcher and not yet completed.
    pub in_flight: u64,
    /// Requests ever submitted (including ones later cancelled/expired).
    pub admitted: u64,
    /// Requests that executed and returned a result.
    pub completed: u64,
    /// Requests that executed and failed (runtime error or panic).
    pub failed: u64,
    /// Requests cancelled while queued.
    pub cancelled: u64,
    /// Requests rejected because their deadline passed before dispatch.
    pub expired: u64,
    /// Requests rejected because the driver was shutting down.
    pub rejected: u64,
    /// Batches dispatched so far.
    pub batches: u64,
    /// Largest number of requests one dispatch coalesced.
    pub largest_batch: usize,
    /// Median submit-to-completion latency over the sliding window of
    /// completed requests (zero before the first completion).
    pub p50_latency: Duration,
    /// 95th-percentile submit-to-completion latency over the same window.
    pub p95_latency: Duration,
    /// Sessions created by the underlying pool (lifetime counter).
    pub sessions_created: u64,
    /// Checkouts served from the idle pool (lifetime counter).
    pub sessions_reused: u64,
    /// Sessions currently parked in the idle pool.
    pub pooled_sessions: usize,
}

/// Admission queue: requests plus the shutdown flag, under one lock so the
/// "submit vs shutdown" race has a single arbiter (a request either lands
/// in the queue before the dispatcher's final drain, or observes the flag
/// and is rejected — it can never be enqueued and missed).
struct QueueState {
    items: VecDeque<Arc<RequestState>>,
    shutdown: bool,
}

struct Shared {
    driver: BatchDriver,
    opts: ServeOptions,
    /// Live admission bound (starts at `opts.max_batch`).  Atomic so
    /// [`ServeDriver::raise_max_batch`] can widen an already-serving driver
    /// — e.g. for a submit-all-then-wait-all caller whose batch is larger
    /// than the configured bound.
    max_batch: AtomicUsize,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    counters: Mutex<Counters>,
    latencies: Mutex<LatencyWindow>,
    next_id: AtomicU64,
}

impl Shared {
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_counters(&self) -> MutexGuard<'_, Counters> {
        self.counters.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn max_batch(&self) -> usize {
        self.max_batch.load(Ordering::Relaxed)
    }
}

/// Dynamic-admission serving driver: one shared [`CompiledProgram`], the
/// pooled sessions of a [`BatchDriver`], and a dispatcher thread that
/// coalesces individually submitted requests into batches.
///
/// Construct with [`ServeDriver::new`] / [`ServeDriver::with_options`] (or
/// [`ServeDriver::over`] to wrap a pre-configured [`BatchDriver`], e.g. one
/// carrying free hints).  The driver is `Sync`: any number of threads can
/// submit concurrently.  Dropping it drains the queue and stops the
/// dispatcher.
pub struct ServeDriver {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ServeDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeDriver")
            .field("program", self.shared.driver.program())
            .field("options", &self.options())
            .field("queue_depth", &self.shared.lock_queue().items.len())
            .finish()
    }
}

impl ServeDriver {
    /// Serve `program` with default [`ServeOptions`].
    pub fn new(program: CompiledProgram) -> Self {
        Self::with_options(program, ServeOptions::default())
    }

    /// Serve `program` with explicit admission-queue options.
    pub fn with_options(program: CompiledProgram, options: ServeOptions) -> Self {
        Self::over(BatchDriver::new(program), options)
    }

    /// Serve over a pre-configured [`BatchDriver`] (session pool, free
    /// hints).  The driver's worker cap is overwritten by
    /// [`ServeOptions::workers`].
    pub fn over(driver: BatchDriver, mut options: ServeOptions) -> Self {
        options.max_batch = options.max_batch.max(1);
        driver.set_workers(options.workers);
        let shared = Arc::new(Shared {
            driver,
            max_batch: AtomicUsize::new(options.max_batch),
            opts: options,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            counters: Mutex::new(Counters::default()),
            latencies: Mutex::new(LatencyWindow::new()),
            next_id: AtomicU64::new(0),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dace-serve-dispatcher".to_string())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawning the serve dispatcher thread failed")
        };
        ServeDriver {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Submit one request: bind `inputs`, execute the shared plan, fetch
    /// the named arrays.  Returns immediately; the admission queue decides
    /// when (and with how many peers) the request runs.
    pub fn submit(&self, inputs: HashMap<String, Tensor>, fetch: &[&str]) -> RequestHandle {
        self.submit_inner(inputs, fetch, None)
    }

    /// [`ServeDriver::submit`] with a latency budget: if the request is
    /// still queued `deadline` after submission, it is rejected with
    /// [`ServeError::DeadlineExceeded`] without ever occupying a worker.
    /// A deadline does not abort a request that already started executing.
    pub fn submit_with_deadline(
        &self,
        inputs: HashMap<String, Tensor>,
        fetch: &[&str],
        deadline: Duration,
    ) -> RequestHandle {
        self.submit_inner(inputs, fetch, Some(Instant::now() + deadline))
    }

    fn submit_inner(
        &self,
        inputs: HashMap<String, Tensor>,
        fetch: &[&str],
        deadline: Option<Instant>,
    ) -> RequestHandle {
        let shared = &self.shared;
        let req = Arc::new(RequestState {
            id: shared.next_id.fetch_add(1, Ordering::Relaxed),
            submitted: Instant::now(),
            deadline,
            phase: Mutex::new(ReqPhase::Queued {
                inputs,
                fetch: fetch.iter().map(|s| s.to_string()).collect(),
            }),
            done_cv: Condvar::new(),
        });
        let handle = RequestHandle {
            req: Arc::clone(&req),
            shared: Arc::clone(shared),
        };
        // A zero (or negative) budget expires at admission: the request is
        // rejected here and never reaches the queue, let alone a worker.
        if let Some(dl) = deadline {
            let now = Instant::now();
            if now >= dl {
                {
                    let mut c = shared.lock_counters();
                    c.admitted += 1;
                    c.expired += 1;
                }
                req.complete(Err(ServeError::DeadlineExceeded {
                    missed_by: now - dl,
                }));
                return handle;
            }
        }
        let mut queue = shared.lock_queue();
        if queue.shutdown {
            drop(queue);
            {
                let mut c = shared.lock_counters();
                c.admitted += 1;
                c.rejected += 1;
            }
            req.complete(Err(ServeError::ShuttingDown));
            return handle;
        }
        queue.items.push_back(req);
        {
            let mut c = shared.lock_counters();
            c.admitted += 1;
            c.queued += 1;
        }
        drop(queue);
        shared.queue_cv.notify_one();
        handle
    }

    /// Submit a whole batch and wait for every result, in order — the
    /// static [`BatchDriver::run_batch`] API re-expressed as
    /// submit-all-then-wait-all over the admission queue.
    pub fn run_batch(
        &self,
        items: &[HashMap<String, Tensor>],
        fetch: &[&str],
    ) -> Vec<Result<ServeResponse, ServeError>> {
        // Let the whole batch ride one dispatch at full fan-out instead of
        // being split into `max_batch`-sized sequential waves.
        self.raise_max_batch(items.len());
        let handles: Vec<RequestHandle> = items
            .iter()
            .map(|inputs| self.submit(inputs.clone(), fetch))
            .collect();
        handles.into_iter().map(RequestHandle::wait).collect()
    }

    /// Counter / latency snapshot.  Coherent: all lifecycle counters are
    /// read under one lock, so the conservation invariant documented on
    /// [`ServeStats`] holds on every snapshot.
    pub fn stats(&self) -> ServeStats {
        let shared = &self.shared;
        let (p50, p95) = shared
            .latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .percentiles();
        let c = shared.lock_counters();
        ServeStats {
            queue_depth: c.queued as usize,
            in_flight: c.in_flight,
            admitted: c.admitted,
            completed: c.completed,
            failed: c.failed,
            cancelled: c.cancelled,
            expired: c.expired,
            rejected: c.rejected,
            batches: c.batches,
            largest_batch: c.largest_batch,
            p50_latency: p50,
            p95_latency: p95,
            sessions_created: shared.driver.sessions_created(),
            sessions_reused: shared.driver.sessions_reused(),
            pooled_sessions: shared.driver.pooled_sessions(),
        }
    }

    /// The underlying session-pool driver (for warm-up and pool statistics).
    pub fn batch_driver(&self) -> &BatchDriver {
        &self.shared.driver
    }

    /// The shared program this server serves.
    pub fn program(&self) -> &CompiledProgram {
        self.shared.driver.program()
    }

    /// The current admission-queue options (`max_batch` reflects any
    /// [`ServeDriver::raise_max_batch`] widening since construction).
    pub fn options(&self) -> ServeOptions {
        ServeOptions {
            max_batch: self.shared.max_batch(),
            ..self.shared.opts.clone()
        }
    }

    /// Widen the admission bound to at least `max_batch` requests per
    /// dispatch (never narrows; takes effect from the next batch
    /// formation).  Used by submit-all-then-wait-all callers so a batch
    /// larger than the configured bound runs as one dispatch at full
    /// fan-out instead of serialised waves.  To *lower* the bound, use
    /// [`ServeDriver::set_max_batch`].
    pub fn raise_max_batch(&self, max_batch: usize) {
        self.shared
            .max_batch
            .fetch_max(max_batch.max(1), Ordering::Relaxed);
    }

    /// Set the admission bound to exactly `max_batch` requests per
    /// dispatch, clamped to `>= 1` — unlike
    /// [`ServeDriver::raise_max_batch`] this can also **lower** the cap on
    /// a live driver (takes effect from the next batch formation).
    /// Lowering re-stamps the warm pool: idle sessions beyond the new
    /// bound are dropped, so the pool's memory footprint follows the cap
    /// down instead of staying at the old high-water mark (the same
    /// reach-the-warm-pool fix [`BatchDriver::set_free_hints`] got in
    /// PR 5).  Sessions currently serving a dispatch are unaffected.
    pub fn set_max_batch(&self, max_batch: usize) {
        let bound = max_batch.max(1);
        self.shared.max_batch.store(bound, Ordering::Relaxed);
        self.shared.driver.trim_pool(bound);
    }

    /// Pre-create pooled sessions off the serving path (see
    /// [`BatchDriver::warm`]).
    pub fn warm(&self, n: usize) {
        self.shared.driver.warm(n);
    }

    /// Stop admitting requests, serve everything still queued, and join the
    /// dispatcher.  Called automatically on drop; idempotent.  Requests
    /// submitted after shutdown complete with [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.shutdown = true;
        }
        self.shared.queue_cv.notify_all();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            // A panic in the dispatcher is a bug, but the driver is usually
            // being dropped here — swallow it rather than aborting unwind.
            let _ = handle.join();
        }
    }
}

impl Drop for ServeDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The bind/fetch payload of one request: its input tensors and the array
/// names to fetch after the run.
type Payload = (HashMap<String, Tensor>, Vec<String>);

/// One claimed, runnable request: its state plus the payload taken from the
/// queued phase.  The payload sits behind a `Mutex<Option<..>>` so the
/// dispatch closure (which only gets a shared reference per item) can
/// *move* the inputs into the session instead of deep-copying them.
struct Claimed {
    req: Arc<RequestState>,
    payload: Mutex<Option<Payload>>,
}

fn dispatcher_loop(shared: &Shared) {
    while let Some(batch) = collect_batch(shared) {
        serve_batch(shared, batch);
    }
}

/// Complete (and remove from the queue) every queued request whose deadline
/// has already passed, so rejections are delivered on time instead of at
/// the end of the linger window.  Cancelled requests are swept out too —
/// their handles were already completed by `cancel`.
fn sweep_expired(shared: &Shared, queue: &mut QueueState, now: Instant) {
    queue.items.retain(|req| {
        let due = req.deadline.is_some_and(|dl| now >= dl);
        let mut phase = req.lock_phase();
        match &*phase {
            ReqPhase::Queued { .. } if due => {
                let dl = req.deadline.expect("due implies a deadline");
                {
                    let mut c = shared.lock_counters();
                    c.queued -= 1;
                    c.expired += 1;
                }
                *phase = ReqPhase::Done(Err(ServeError::DeadlineExceeded {
                    missed_by: now - dl,
                }));
                req.done_cv.notify_all();
                false
            }
            ReqPhase::Queued { .. } => true,
            // Cancelled while queued: the handle already holds its result.
            _ => false,
        }
    });
}

/// Block until a batch can be formed, then claim up to `max_batch` runnable
/// requests.  Returns `None` when the queue is drained and the driver is
/// shutting down.  Loops internally until at least one runnable request was
/// claimed.
fn collect_batch(shared: &Shared) -> Option<Vec<Claimed>> {
    let max_wait = shared.opts.max_wait;
    loop {
        let mut queue = shared.lock_queue();
        // Sleep until there is something to serve (or we are told to stop).
        loop {
            if !queue.items.is_empty() {
                break;
            }
            if queue.shutdown {
                return None;
            }
            queue = shared
                .queue_cv
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
        // Linger: give the batch a chance to fill, bounded by the oldest
        // request's wait budget.  Expired requests are rejected the moment
        // their deadline passes (the wake-up target is the earliest of the
        // linger end and every queued deadline), and shutdown dispatches
        // immediately.
        loop {
            let now = Instant::now();
            sweep_expired(shared, &mut queue, now);
            let Some(front) = queue.items.front() else {
                break; // everything expired/cancelled: back to sleep
            };
            if queue.items.len() >= shared.max_batch() || queue.shutdown {
                break;
            }
            let linger_until = front.submitted + max_wait;
            if now >= linger_until {
                break;
            }
            let mut wake = linger_until;
            for req in &queue.items {
                if let Some(dl) = req.deadline {
                    wake = wake.min(dl);
                }
            }
            if wake <= now {
                continue; // a deadline is due: sweep on the next pass
            }
            let (guard, _) = shared
                .queue_cv
                .wait_timeout(queue, wake - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
        // Claim up to max_batch requests, skipping any that were cancelled
        // or expired between the sweep and here (the sweep above is the
        // timely path; this is the race backstop).
        let mut claimed = Vec::new();
        while claimed.len() < shared.max_batch() {
            let Some(req) = queue.items.pop_front() else {
                break;
            };
            let mut phase = req.lock_phase();
            match std::mem::replace(&mut *phase, ReqPhase::Dispatched) {
                ReqPhase::Queued { inputs, fetch } => {
                    let now = Instant::now();
                    if let Some(dl) = req.deadline {
                        if now >= dl {
                            {
                                let mut c = shared.lock_counters();
                                c.queued -= 1;
                                c.expired += 1;
                            }
                            *phase = ReqPhase::Done(Err(ServeError::DeadlineExceeded {
                                missed_by: now - dl,
                            }));
                            req.done_cv.notify_all();
                            continue;
                        }
                    }
                    {
                        let mut c = shared.lock_counters();
                        c.queued -= 1;
                        c.in_flight += 1;
                    }
                    drop(phase);
                    claimed.push(Claimed {
                        req,
                        payload: Mutex::new(Some((inputs, fetch))),
                    });
                }
                // Cancelled while queued: leave the Done result in place.
                other => {
                    *phase = other;
                }
            }
        }
        drop(queue);
        if !claimed.is_empty() {
            return Some(claimed);
        }
        // Everything drained this round was cancelled or expired; go back
        // to sleep (or exit) without dispatching an empty batch.
    }
}

/// Fan one formed batch across the pooled sessions and complete its
/// handles.  Execution is exactly [`BatchDriver::run_batch_with`] — the
/// admission layer adds nothing to the per-item run path.
fn serve_batch(shared: &Shared, batch: Vec<Claimed>) {
    let n = batch.len();
    {
        let mut c = shared.lock_counters();
        c.batches += 1;
        c.largest_batch = c.largest_batch.max(n);
    }
    let out = shared.driver.run_batch_with(n, |i, session| {
        let (inputs, fetch) = batch[i]
            .payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each claimed request is dispatched exactly once");
        session.clear_bindings();
        // The request owns its tensors by now, so binding *moves* them into
        // the session — no copy on the serving hot path.
        for (name, tensor) in inputs {
            session.set_input(&name, tensor)?;
        }
        session.run()?;
        let mut outputs = HashMap::with_capacity(fetch.len());
        for name in fetch {
            let tensor = session
                .array(&name)
                .ok_or_else(|| RuntimeError::UnknownArray(name.clone()))?;
            outputs.insert(name, tensor.clone());
        }
        Ok::<_, RuntimeError>((outputs, session.last_report().clone()))
    });
    for (claimed, item) in batch.iter().zip(out.items) {
        let result = match item {
            Ok((outputs, report)) => {
                let latency = claimed.req.submitted.elapsed();
                {
                    let mut c = shared.lock_counters();
                    c.in_flight -= 1;
                    c.completed += 1;
                }
                shared
                    .latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(latency);
                Ok(ServeResponse {
                    outputs,
                    report,
                    latency,
                    batched_with: n,
                })
            }
            Err(BatchError::Item(e)) => {
                let mut c = shared.lock_counters();
                c.in_flight -= 1;
                c.failed += 1;
                drop(c);
                Err(ServeError::Execution(e))
            }
            Err(BatchError::Panicked(msg)) => {
                let mut c = shared.lock_counters();
                c.in_flight -= 1;
                c.failed += 1;
                drop(c);
                Err(ServeError::Panicked(msg))
            }
        };
        claimed.req.complete(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving stack must be freely shareable: handles move across
    /// threads, the driver is submitted to concurrently.
    #[test]
    fn serve_types_are_send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<ServeDriver>();
        assert_sync::<ServeDriver>();
        assert_send::<RequestHandle>();
        assert_sync::<RequestHandle>();
        assert_send::<ServeResponse>();
        assert_send::<ServeError>();
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(
            LatencyWindow::percentile(&sorted, 0.50),
            Duration::from_millis(50)
        );
        assert_eq!(
            LatencyWindow::percentile(&sorted, 0.95),
            Duration::from_millis(95)
        );
        assert_eq!(LatencyWindow::percentile(&[], 0.5), Duration::ZERO);
        let one = [Duration::from_millis(7)];
        assert_eq!(LatencyWindow::percentile(&one, 0.95), one[0]);
    }

    /// An exactly-full window holds its `LATENCY_WINDOW` samples untouched;
    /// the percentile of the full ring covers them all.
    #[test]
    fn latency_window_exactly_full_keeps_every_sample() {
        let mut w = LatencyWindow::new();
        for i in 0..LATENCY_WINDOW {
            w.record(Duration::from_micros(i as u64 + 1));
        }
        assert_eq!(w.samples.len(), LATENCY_WINDOW);
        let mut sorted = w.samples.clone();
        sorted.sort();
        assert_eq!(
            LatencyWindow::percentile(&sorted, 1.0),
            Duration::from_micros(LATENCY_WINDOW as u64)
        );
        assert_eq!(
            LatencyWindow::percentile(&sorted, 0.0),
            Duration::from_micros(1)
        );
    }

    /// Past capacity the window is a ring: the length stays pinned at
    /// `LATENCY_WINDOW` and new samples overwrite the oldest slots in
    /// insertion order, so after a full extra lap only the newest
    /// `LATENCY_WINDOW` samples remain.
    #[test]
    fn latency_window_wraps_around_overwriting_oldest() {
        let mut w = LatencyWindow::new();
        for i in 0..LATENCY_WINDOW + 7 {
            w.record(Duration::from_micros(i as u64));
        }
        assert_eq!(w.samples.len(), LATENCY_WINDOW);
        assert_eq!(w.next, 7);
        // Slots 0..7 were overwritten by the 7 overflow samples.
        for (slot, expect) in (LATENCY_WINDOW..LATENCY_WINDOW + 7).enumerate() {
            assert_eq!(w.samples[slot], Duration::from_micros(expect as u64));
        }
        assert_eq!(w.samples[7], Duration::from_micros(7));
        // A second full lap leaves exactly the newest window.
        for i in 0..LATENCY_WINDOW {
            w.record(Duration::from_micros(1_000_000 + i as u64));
        }
        assert!(w
            .samples
            .iter()
            .all(|d| *d >= Duration::from_micros(1_000_000)));
    }
}
