//! The SDFG interpreter.
//!
//! This executor stands in for DaCe's C/OpenMP code generator plus CPU
//! runtime.  It walks the structured control-flow tree, executes each state's
//! dataflow graph in topological order, iterates map scopes over their index
//! domains (optionally in parallel with rayon), dispatches library nodes to
//! the `dace-tensor` kernels, and applies write-conflict resolutions.
//!
//! Memory is tracked with [`crate::memory::MemoryTracker`]: non-transient
//! inputs are counted at start, transients are allocated lazily at first
//! touch, and optional per-state *free hints* (produced by the AD engine for
//! recomputation temporaries and consumed tape entries) release containers
//! early so that peak-memory measurements reflect store/recompute choices.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use dace_sdfg::{
    CondExpr, CondOperand, ControlFlow, DataflowGraph, DfNode, LibraryOp, MapScope, Memlet, NodeId,
    Sdfg, Subset, Tasklet, Wcr,
};
use dace_tensor::Tensor;

use crate::error::{RuntimeError, RuntimeResult};
use crate::memory::MemoryTracker;

/// Execution statistics and instrumentation results.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Wall-clock time of the `run` call.
    pub elapsed: Duration,
    /// Peak bytes of live containers during execution.
    pub peak_bytes: usize,
    /// Bytes live at the end of execution.
    pub final_bytes: usize,
    /// Number of tasklet evaluations.
    pub tasklet_invocations: u64,
    /// Number of map body executions (index points).
    pub map_points: u64,
    /// Number of state executions.
    pub state_executions: u64,
    /// Number of library-node expansions executed.
    pub library_calls: u64,
}

/// Minimum number of map points before the parallel (rayon) path is used.
const PARALLEL_MAP_THRESHOLD: usize = 8192;

/// The SDFG interpreter.
pub struct Executor {
    sdfg: Sdfg,
    symbols: HashMap<String, i64>,
    arrays: HashMap<String, Tensor>,
    tracker: MemoryTracker,
    free_hints: HashMap<usize, Vec<String>>,
    report: ExecutionReport,
}

impl Executor {
    /// Create an executor for an SDFG with concrete symbol values.
    pub fn new(sdfg: &Sdfg, symbols: &HashMap<String, i64>) -> RuntimeResult<Self> {
        for s in &sdfg.symbols {
            if !symbols.contains_key(s) {
                return Err(RuntimeError::MissingSymbol(s.clone()));
            }
        }
        Ok(Executor {
            sdfg: sdfg.clone(),
            symbols: symbols.clone(),
            arrays: HashMap::new(),
            tracker: MemoryTracker::new(),
            free_hints: HashMap::new(),
            report: ExecutionReport::default(),
        })
    }

    /// Attach per-state free hints: after executing state `id`, the listed
    /// transient containers are deallocated (used by the AD engine to bound
    /// the footprint of recomputation blocks).
    pub fn with_free_hints(mut self, hints: HashMap<usize, Vec<String>>) -> Self {
        self.free_hints = hints;
        self
    }

    /// Provide an input (non-transient) array.
    pub fn set_input(&mut self, name: &str, tensor: Tensor) -> RuntimeResult<()> {
        let desc = self
            .sdfg
            .arrays
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?;
        let expected = desc.concrete_shape(&self.symbols)?;
        if expected != tensor.shape() {
            return Err(RuntimeError::ShapeMismatch {
                array: name.to_string(),
                expected,
                got: tensor.shape().to_vec(),
            });
        }
        self.arrays.insert(name.to_string(), tensor);
        Ok(())
    }

    /// Access an array after (or before) execution.
    pub fn array(&self, name: &str) -> Option<&Tensor> {
        self.arrays.get(name)
    }

    /// Take ownership of all arrays (inputs, outputs and surviving transients).
    pub fn into_arrays(self) -> HashMap<String, Tensor> {
        self.arrays
    }

    /// The memory tracker (for inspection in tests and benchmarks).
    pub fn tracker(&self) -> &MemoryTracker {
        &self.tracker
    }

    /// Concrete symbol bindings used by this executor.
    pub fn symbols(&self) -> &HashMap<String, i64> {
        &self.symbols
    }

    /// Execute the SDFG.
    pub fn run(&mut self) -> RuntimeResult<ExecutionReport> {
        let start = Instant::now();
        self.report = ExecutionReport::default();

        // Count and materialise non-transient containers.
        let names: Vec<String> = self.sdfg.arrays.keys().cloned().collect();
        for name in names {
            let desc = self.sdfg.arrays[&name].clone();
            if !desc.transient {
                if !self.arrays.contains_key(&name) {
                    // Outputs that were not provided start as zeros.
                    let shape = desc.concrete_shape(&self.symbols)?;
                    self.arrays.insert(name.clone(), Tensor::zeros(&shape));
                }
                let bytes = desc.size_bytes(&self.symbols)? as usize;
                self.tracker.alloc(&name, bytes);
            }
        }

        let cfg = self.sdfg.cfg.clone();
        let mut bindings = self.symbols.clone();
        self.exec_cfg(&cfg, &mut bindings)?;

        self.report.elapsed = start.elapsed();
        self.report.peak_bytes = self.tracker.peak_bytes();
        self.report.final_bytes = self.tracker.current_bytes();
        Ok(self.report.clone())
    }

    fn exec_cfg(
        &mut self,
        cfg: &ControlFlow,
        bindings: &mut HashMap<String, i64>,
    ) -> RuntimeResult<()> {
        match cfg {
            ControlFlow::State(id) => self.exec_state(*id, bindings),
            ControlFlow::Sequence(children) => {
                for c in children {
                    self.exec_cfg(c, bindings)?;
                }
                Ok(())
            }
            ControlFlow::Loop(l) => {
                let start = l.start.eval(bindings)?;
                let end = l.end.eval(bindings)?;
                let step = l.step.eval(bindings)?;
                if step == 0 {
                    return Err(RuntimeError::Malformed(format!(
                        "loop `{}` has zero step",
                        l.var
                    )));
                }
                let mut i = start;
                let previous = bindings.get(&l.var).copied();
                while (step > 0 && i < end) || (step < 0 && i > end) {
                    bindings.insert(l.var.clone(), i);
                    self.exec_cfg(&l.body, bindings)?;
                    i += step;
                }
                // Restore any outer binding of the same iterator name.
                match previous {
                    Some(v) => {
                        bindings.insert(l.var.clone(), v);
                    }
                    None => {
                        bindings.remove(&l.var);
                    }
                }
                Ok(())
            }
            ControlFlow::Branch(b) => {
                let taken = self.eval_cond(&b.cond, bindings)?;
                if taken {
                    self.exec_cfg(&b.then_body, bindings)
                } else if let Some(e) = &b.else_body {
                    self.exec_cfg(e, bindings)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Evaluate a control-flow condition.
    pub fn eval_cond(
        &mut self,
        cond: &CondExpr,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<bool> {
        match cond {
            CondExpr::Cmp { lhs, op, rhs } => {
                let a = self.eval_cond_operand(lhs, bindings)?;
                let b = self.eval_cond_operand(rhs, bindings)?;
                Ok(op.apply(a, b))
            }
            CondExpr::Not(inner) => Ok(!self.eval_cond(inner, bindings)?),
            CondExpr::StoredFlag(name) => {
                self.ensure_allocated(name)?;
                let t = self
                    .arrays
                    .get(name)
                    .ok_or_else(|| RuntimeError::UnknownArray(name.clone()))?;
                Ok(t.data().first().copied().unwrap_or(0.0) != 0.0)
            }
        }
    }

    fn eval_cond_operand(
        &mut self,
        op: &CondOperand,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<f64> {
        match op {
            CondOperand::Const(v) => Ok(*v),
            CondOperand::Sym(e) => Ok(e.eval(bindings)? as f64),
            CondOperand::Element { array, index } => {
                self.ensure_allocated(array)?;
                let idx: Vec<i64> = index
                    .iter()
                    .map(|e| e.eval(bindings))
                    .collect::<Result<_, _>>()?;
                let t = self
                    .arrays
                    .get(array)
                    .ok_or_else(|| RuntimeError::UnknownArray(array.clone()))?;
                let uidx = to_unsigned_index(array, &idx)?;
                t.at(&uidx).map_err(|_| RuntimeError::BadIndex {
                    array: array.clone(),
                    index: idx,
                })
            }
        }
    }

    fn exec_state(&mut self, id: usize, bindings: &mut HashMap<String, i64>) -> RuntimeResult<()> {
        self.report.state_executions += 1;
        let state = self.sdfg.states[id].clone();
        self.exec_graph(&state.graph, bindings)?;
        if let Some(frees) = self.free_hints.get(&id).cloned() {
            for name in frees {
                self.tracker.free(&name);
                self.arrays.remove(&name);
            }
        }
        Ok(())
    }

    fn exec_graph(
        &mut self,
        graph: &DataflowGraph,
        bindings: &mut HashMap<String, i64>,
    ) -> RuntimeResult<()> {
        let order = graph
            .topological_order()
            .ok_or_else(|| RuntimeError::CyclicGraph("<graph>".to_string()))?;
        for node in order {
            match &graph.nodes[node] {
                DfNode::Access(name) => {
                    // Allocate when the container is written (has in-edges) or
                    // read (must already exist for non-transients).
                    self.ensure_allocated(name)?;
                }
                DfNode::Tasklet(t) => self.exec_tasklet(graph, node, t, bindings)?,
                DfNode::MapScope(m) => self.exec_map(m, bindings)?,
                DfNode::Library(op) => self.exec_library(graph, node, op)?,
            }
        }
        Ok(())
    }

    fn ensure_allocated(&mut self, name: &str) -> RuntimeResult<()> {
        if self.arrays.contains_key(name) {
            return Ok(());
        }
        let desc = self
            .sdfg
            .arrays
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?
            .clone();
        if !desc.transient {
            return Err(RuntimeError::MissingInput(name.to_string()));
        }
        let shape = desc.concrete_shape(&self.symbols)?;
        self.arrays.insert(name.to_string(), Tensor::zeros(&shape));
        let bytes = desc.size_bytes(&self.symbols)? as usize;
        self.tracker.alloc(name, bytes);
        Ok(())
    }

    fn read_scalar(&self, memlet: &Memlet, bindings: &HashMap<String, i64>) -> RuntimeResult<f64> {
        let t = self
            .arrays
            .get(&memlet.data)
            .ok_or_else(|| RuntimeError::UnknownArray(memlet.data.clone()))?;
        let subset = &memlet.subset;
        if subset.is_all() {
            if t.len() == 1 {
                return Ok(t.data()[0]);
            }
            return Err(RuntimeError::Malformed(format!(
                "whole-array memlet of `{}` used as a scalar read",
                memlet.data
            )));
        }
        let idx = subset.eval_indices(bindings)?;
        let uidx = to_unsigned_index(&memlet.data, &idx)?;
        t.at(&uidx).map_err(|_| RuntimeError::BadIndex {
            array: memlet.data.clone(),
            index: idx,
        })
    }

    fn write_scalar(
        &mut self,
        memlet: &Memlet,
        bindings: &HashMap<String, i64>,
        value: f64,
    ) -> RuntimeResult<()> {
        self.ensure_allocated(&memlet.data)?;
        let t = self
            .arrays
            .get_mut(&memlet.data)
            .ok_or_else(|| RuntimeError::UnknownArray(memlet.data.clone()))?;
        let target: &mut f64 = if memlet.subset.is_all() {
            if t.len() == 1 {
                &mut t.data_mut()[0]
            } else {
                return Err(RuntimeError::Malformed(format!(
                    "whole-array memlet of `{}` used as a scalar write",
                    memlet.data
                )));
            }
        } else {
            let idx = memlet.subset.eval_indices(bindings)?;
            let uidx = to_unsigned_index(&memlet.data, &idx)?;
            t.at_mut(&uidx).map_err(|_| RuntimeError::BadIndex {
                array: memlet.data.clone(),
                index: idx,
            })?
        };
        match memlet.wcr {
            Some(Wcr::Sum) => *target += value,
            None => *target = value,
        }
        Ok(())
    }

    fn exec_tasklet(
        &mut self,
        graph: &DataflowGraph,
        node: NodeId,
        tasklet: &Tasklet,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<()> {
        self.report.tasklet_invocations += 1;
        // Gather inputs by destination connector.
        let mut inputs: HashMap<String, f64> = HashMap::new();
        for e in graph.in_edges(node) {
            let conn = e.dst_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("tasklet in-edge without connector".into())
            })?;
            let value = self.read_scalar(&e.memlet, bindings)?;
            inputs.insert(conn, value);
        }
        // Evaluate assignments.
        let mut outputs: HashMap<String, f64> = HashMap::new();
        for (out, expr) in &tasklet.code {
            let value = expr
                .eval(&inputs, bindings)
                .map_err(RuntimeError::Tasklet)?;
            outputs.insert(out.clone(), value);
        }
        // Write outputs via out-edges.
        for e in graph.out_edges(node) {
            let conn = e.src_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("tasklet out-edge without connector".into())
            })?;
            let value = *outputs.get(&conn).ok_or_else(|| {
                RuntimeError::Malformed(format!(
                    "tasklet `{}` has no assignment for connector `{conn}`",
                    tasklet.label
                ))
            })?;
            self.write_scalar(&e.memlet, bindings, value)?;
        }
        Ok(())
    }

    fn exec_map(
        &mut self,
        map: &MapScope,
        bindings: &mut HashMap<String, i64>,
    ) -> RuntimeResult<()> {
        // Evaluate the iteration domain.
        let mut lows = Vec::with_capacity(map.params.len());
        let mut sizes = Vec::with_capacity(map.params.len());
        for (start, end) in &map.ranges {
            let s = start.eval(bindings)?;
            let e = end.eval(bindings)?;
            lows.push(s);
            sizes.push((e - s).max(0) as usize);
        }
        let total: usize = sizes.iter().product();
        if total == 0 {
            return Ok(());
        }
        self.report.map_points += total as u64;

        // Pre-allocate every container referenced by the body so that the
        // parallel path can operate on an immutable snapshot.
        for array in map.body.referenced_arrays() {
            self.ensure_allocated(&array)?;
        }

        // Fast path: a pure element-wise map (every memlet indexes exactly by
        // the map parameters, in order) evaluates as a flat vectorized loop.
        // This models the vectorized code DaCe generates for such maps and is
        // what keeps whole-array statements competitive with the baseline's
        // whole-array kernels.
        if let Some(done) = self.try_exec_map_elementwise(map, &sizes, &lows)? {
            if done {
                return Ok(());
            }
        }

        let use_parallel =
            map.parallel && total >= PARALLEL_MAP_THRESHOLD && body_is_parallel_safe(&map.body);
        if use_parallel {
            self.exec_map_parallel(map, bindings, &lows, &sizes, total)
        } else {
            self.exec_map_sequential(map, bindings, &lows, &sizes, total)
        }
    }

    /// Attempt the element-wise fast path.  Returns `Ok(Some(true))` when the
    /// map was executed, `Ok(Some(false))`/`Ok(None)` when the caller should
    /// fall back to the general path.
    fn try_exec_map_elementwise(
        &mut self,
        map: &MapScope,
        sizes: &[usize],
        lows: &[i64],
    ) -> RuntimeResult<Option<bool>> {
        // Only zero-based dense domains qualify.
        if lows.iter().any(|&l| l != 0) {
            return Ok(None);
        }
        // Exactly one tasklet, everything else access nodes.
        let mut tasklet_id = None;
        for (i, n) in map.body.nodes.iter().enumerate() {
            match n {
                DfNode::Tasklet(_) => {
                    if tasklet_id.is_some() {
                        return Ok(None);
                    }
                    tasklet_id = Some(i);
                }
                DfNode::Access(_) => {}
                _ => return Ok(None),
            }
        }
        let Some(tnode) = tasklet_id else {
            return Ok(None);
        };
        let DfNode::Tasklet(tasklet) = &map.body.nodes[tnode] else {
            unreachable!()
        };
        if tasklet.code.len() != 1 {
            return Ok(None);
        }
        // Every memlet must index exactly by the map parameters, in order.
        let is_identity = |m: &Memlet| -> bool {
            if m.subset.0.len() != map.params.len() {
                return false;
            }
            m.subset.0.iter().zip(map.params.iter()).all(|(r, p)| {
                matches!(r, dace_sdfg::IndexRange::Index(dace_sdfg::SymExpr::Sym(s)) if s == p)
            })
        };
        let in_edges = map.body.in_edges(tnode);
        let out_edges = map.body.out_edges(tnode);
        if out_edges.len() != 1 || !is_identity(&out_edges[0].memlet) {
            return Ok(None);
        }
        if !in_edges.iter().all(|e| is_identity(&e.memlet)) {
            return Ok(None);
        }
        // The expression must not reference iteration symbols beyond inputs.
        let (_, expr) = &tasklet.code[0];
        let total: usize = sizes.iter().product();
        let out_memlet = out_edges[0].memlet.clone();
        // Gather input data as owned vectors (cheap relative to the loop).
        let mut inputs: Vec<(String, Vec<f64>)> = Vec::new();
        for e in &in_edges {
            let conn = e.dst_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("tasklet in-edge without connector".into())
            })?;
            let t = self
                .arrays
                .get(&e.memlet.data)
                .ok_or_else(|| RuntimeError::UnknownArray(e.memlet.data.clone()))?;
            if t.len() != total {
                return Ok(None);
            }
            inputs.push((conn, t.data().to_vec()));
        }
        let out_t = self
            .arrays
            .get_mut(&out_memlet.data)
            .ok_or_else(|| RuntimeError::UnknownArray(out_memlet.data.clone()))?;
        if out_t.len() != total {
            return Ok(None);
        }
        let accumulate = matches!(out_memlet.wcr, Some(Wcr::Sum));
        let mut scratch: HashMap<String, f64> = HashMap::new();
        let iters: HashMap<String, i64> = self.symbols.clone();
        // Expressions referencing the map parameters as values (e.g. index
        // arithmetic) are not handled by the flat loop — probe once and fall
        // back to the general path if evaluation needs them.
        for (conn, data) in &inputs {
            scratch.insert(conn.clone(), data[0]);
        }
        if total > 0 && expr.eval(&scratch, &iters).is_err() {
            return Ok(None);
        }
        let out_data = out_t.data_mut();
        for flat in 0..total {
            for (conn, data) in &inputs {
                scratch.insert(conn.clone(), data[flat]);
            }
            let value = expr.eval(&scratch, &iters).map_err(RuntimeError::Tasklet)?;
            if accumulate {
                out_data[flat] += value;
            } else {
                out_data[flat] = value;
            }
        }
        self.report.tasklet_invocations += total as u64;
        Ok(Some(true))
    }

    fn exec_map_sequential(
        &mut self,
        map: &MapScope,
        bindings: &mut HashMap<String, i64>,
        lows: &[i64],
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<()> {
        let saved: Vec<Option<i64>> = map
            .params
            .iter()
            .map(|p| bindings.get(p).copied())
            .collect();
        for flat in 0..total {
            let point = unflatten(flat, sizes);
            for (d, p) in map.params.iter().enumerate() {
                bindings.insert(p.clone(), lows[d] + point[d] as i64);
            }
            self.exec_graph(&map.body, bindings)?;
        }
        for (p, old) in map.params.iter().zip(saved) {
            match old {
                Some(v) => {
                    bindings.insert(p.clone(), v);
                }
                None => {
                    bindings.remove(p);
                }
            }
        }
        Ok(())
    }

    /// Parallel map execution: every index point is evaluated against an
    /// immutable snapshot of the arrays, producing buffered writes that are
    /// applied afterwards.  This mirrors the data-race-free semantics of a
    /// DaCe map (each iteration writes a disjoint subset).
    fn exec_map_parallel(
        &mut self,
        map: &MapScope,
        bindings: &HashMap<String, i64>,
        lows: &[i64],
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<()> {
        let order = map
            .body
            .topological_order()
            .ok_or_else(|| RuntimeError::CyclicGraph("<map body>".to_string()))?;
        let arrays = &self.arrays;
        let results: Result<Vec<Vec<BufferedWrite>>, RuntimeError> = (0..total)
            .into_par_iter()
            .map(|flat| {
                let point = unflatten(flat, sizes);
                let mut local = bindings.clone();
                for (d, p) in map.params.iter().enumerate() {
                    local.insert(p.clone(), lows[d] + point[d] as i64);
                }
                eval_body_readonly(&map.body, &order, arrays, &local)
            })
            .collect();
        let mut tasklets = 0u64;
        for writes in results? {
            for w in writes {
                tasklets += 1;
                let t = self
                    .arrays
                    .get_mut(&w.array)
                    .ok_or_else(|| RuntimeError::UnknownArray(w.array.clone()))?;
                let slot = t.at_mut(&w.index).map_err(|_| RuntimeError::BadIndex {
                    array: w.array.clone(),
                    index: w.index.iter().map(|&v| v as i64).collect(),
                })?;
                if w.accumulate {
                    *slot += w.value;
                } else {
                    *slot = w.value;
                }
            }
        }
        self.report.tasklet_invocations += tasklets;
        Ok(())
    }

    fn exec_library(
        &mut self,
        graph: &DataflowGraph,
        node: NodeId,
        op: &LibraryOp,
    ) -> RuntimeResult<()> {
        self.report.library_calls += 1;
        // Gather full input tensors by connector.
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        for e in graph.in_edges(node) {
            let conn = e.dst_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("library in-edge without connector".into())
            })?;
            self.ensure_allocated(&e.memlet.data)?;
            let t = self
                .arrays
                .get(&e.memlet.data)
                .ok_or_else(|| RuntimeError::UnknownArray(e.memlet.data.clone()))?;
            inputs.insert(conn, t.clone());
        }
        let get = |conn: &str| -> RuntimeResult<&Tensor> {
            inputs.get(conn).ok_or_else(|| {
                RuntimeError::Malformed(format!("library node missing input `{conn}`"))
            })
        };
        // Compute outputs by connector.
        let mut outputs: HashMap<String, Tensor> = HashMap::new();
        match op {
            LibraryOp::MatMul => {
                let c = get("A")?.matmul(get("B")?)?;
                outputs.insert("C".into(), c);
            }
            LibraryOp::MatVec => {
                let y = get("A")?.matvec(get("x")?)?;
                outputs.insert("y".into(), y);
            }
            LibraryOp::Transpose => {
                let b = get("A")?.transpose()?;
                outputs.insert("B".into(), b);
            }
            LibraryOp::SumReduce { .. } => {
                let s = get("IN")?.sum();
                outputs.insert("OUT".into(), Tensor::from_vec(vec![s], &[1])?);
            }
            LibraryOp::Copy => {
                outputs.insert("B".into(), get("A")?.clone());
            }
        }
        // Write outputs.
        for e in graph.out_edges(node) {
            let conn = e.src_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("library out-edge without connector".into())
            })?;
            let value = outputs.get(&conn).ok_or_else(|| {
                RuntimeError::Malformed(format!("library node has no output `{conn}`"))
            })?;
            self.ensure_allocated(&e.memlet.data)?;
            let accumulate =
                e.memlet.wcr.is_some() || matches!(op, LibraryOp::SumReduce { accumulate: true });
            let dst = self
                .arrays
                .get_mut(&e.memlet.data)
                .ok_or_else(|| RuntimeError::UnknownArray(e.memlet.data.clone()))?;
            if dst.shape() != value.shape() {
                return Err(RuntimeError::ShapeMismatch {
                    array: e.memlet.data.clone(),
                    expected: dst.shape().to_vec(),
                    got: value.shape().to_vec(),
                });
            }
            if accumulate {
                dst.add_assign(value)?;
            } else {
                *dst = value.clone();
            }
        }
        Ok(())
    }
}

/// A buffered element write produced by the parallel map path.
struct BufferedWrite {
    array: String,
    index: Vec<usize>,
    value: f64,
    accumulate: bool,
}

/// True if a map body contains only access nodes and tasklets with
/// element-granularity memlets (the precondition for the snapshot-based
/// parallel execution).
fn body_is_parallel_safe(body: &DataflowGraph) -> bool {
    body.nodes
        .iter()
        .all(|n| matches!(n, DfNode::Access(_) | DfNode::Tasklet(_)))
        && body
            .edges
            .iter()
            .all(|e| e.memlet.subset.is_element() || e.memlet.subset.is_all())
}

/// Evaluate a tasklet-only body against an immutable array snapshot,
/// returning the buffered writes.
fn eval_body_readonly(
    body: &DataflowGraph,
    order: &[NodeId],
    arrays: &HashMap<String, Tensor>,
    bindings: &HashMap<String, i64>,
) -> RuntimeResult<Vec<BufferedWrite>> {
    let mut writes = Vec::new();
    for &node in order {
        let DfNode::Tasklet(tasklet) = &body.nodes[node] else {
            continue;
        };
        let mut inputs: HashMap<String, f64> = HashMap::new();
        for e in body.in_edges(node) {
            let conn = e.dst_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("tasklet in-edge without connector".into())
            })?;
            let t = arrays
                .get(&e.memlet.data)
                .ok_or_else(|| RuntimeError::UnknownArray(e.memlet.data.clone()))?;
            let value = if e.memlet.subset.is_all() && t.len() == 1 {
                t.data()[0]
            } else {
                let idx = e.memlet.subset.eval_indices(bindings)?;
                let uidx = to_unsigned_index(&e.memlet.data, &idx)?;
                t.at(&uidx).map_err(|_| RuntimeError::BadIndex {
                    array: e.memlet.data.clone(),
                    index: idx,
                })?
            };
            inputs.insert(conn, value);
        }
        let mut outputs: HashMap<String, f64> = HashMap::new();
        for (out, expr) in &tasklet.code {
            outputs.insert(
                out.clone(),
                expr.eval(&inputs, bindings)
                    .map_err(RuntimeError::Tasklet)?,
            );
        }
        for e in body.out_edges(node) {
            let conn = e.src_conn.clone().ok_or_else(|| {
                RuntimeError::Malformed("tasklet out-edge without connector".into())
            })?;
            let value = *outputs.get(&conn).ok_or_else(|| {
                RuntimeError::Malformed(format!("no assignment for connector `{conn}`"))
            })?;
            let index = if e.memlet.subset.is_all() {
                vec![0usize]
            } else {
                let idx = e.memlet.subset.eval_indices(bindings)?;
                to_unsigned_index(&e.memlet.data, &idx)?
            };
            writes.push(BufferedWrite {
                array: e.memlet.data.clone(),
                index,
                value,
                accumulate: matches!(e.memlet.wcr, Some(Wcr::Sum)),
            });
        }
    }
    Ok(writes)
}

fn to_unsigned_index(array: &str, idx: &[i64]) -> RuntimeResult<Vec<usize>> {
    idx.iter()
        .map(|&v| {
            if v < 0 {
                Err(RuntimeError::BadIndex {
                    array: array.to_string(),
                    index: idx.to_vec(),
                })
            } else {
                Ok(v as usize)
            }
        })
        .collect()
}

fn unflatten(mut flat: usize, sizes: &[usize]) -> Vec<usize> {
    let mut out = vec![0usize; sizes.len()];
    for d in (0..sizes.len()).rev() {
        out[d] = flat % sizes[d];
        flat /= sizes[d];
    }
    out
}

/// Convenience: check that a subset evaluates fully (used in tests).
pub fn subset_indices(subset: &Subset, bindings: &HashMap<String, i64>) -> Option<Vec<usize>> {
    subset
        .eval_indices(bindings)
        .ok()
        .map(|v| v.into_iter().map(|x| x.max(0) as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_sdfg::{
        ArrayDesc, BranchRegion, CmpOp, CondExpr, CondOperand, ControlFlow, LoopRegion,
        ScalarExpr as E, State, SymExpr,
    };

    fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// out[i] = in[i] * k for all i, as a parallel map.
    fn scale_sdfg(k: f64) -> Sdfg {
        let mut sdfg = Sdfg::new("scale");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut body = DataflowGraph::new();
        let r = body.add_access("X");
        let t = body.add_tasklet(Tasklet::new("scale", "o", E::input("x").mul(E::c(k))));
        let w = body.add_access("Y");
        body.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("X", vec![SymExpr::sym("i")]),
        );
        body.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        let rn = g.add_access("X");
        let m = g.add_map(MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
            body,
            parallel: true,
        });
        let wn = g.add_access("Y");
        g.add_edge(rn, None, m, None, Memlet::all("X"));
        g.add_edge(m, None, wn, None, Memlet::all("Y"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        sdfg
    }

    #[test]
    fn elementwise_map_executes() {
        let sdfg = scale_sdfg(3.0);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 5)])).unwrap();
        ex.set_input(
            "X",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]).unwrap(),
        )
        .unwrap();
        let report = ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[3.0, 6.0, 9.0, 12.0, 15.0]);
        assert_eq!(report.map_points, 5);
        assert_eq!(report.tasklet_invocations, 5);
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let sdfg = scale_sdfg(2.0);
        let n = (PARALLEL_MAP_THRESHOLD + 100) as i64;
        let x = dace_tensor::random::uniform(&[n as usize], 1);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", n)])).unwrap();
        ex.set_input("X", x.clone()).unwrap();
        ex.run().unwrap();
        let expected = x.scale(2.0);
        assert!(dace_tensor::allclose_default(
            ex.array("Y").unwrap(),
            &expected
        ));
    }

    #[test]
    fn missing_symbol_is_error() {
        let sdfg = scale_sdfg(1.0);
        assert!(matches!(
            Executor::new(&sdfg, &HashMap::new()),
            Err(RuntimeError::MissingSymbol(_))
        ));
    }

    #[test]
    fn missing_input_is_error() {
        let sdfg = scale_sdfg(1.0);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 4)])).unwrap();
        // X not provided: reading it must fail (Y would be zero-filled output).
        let err = ex.run();
        // X is non-transient so it is zero-initialised as an "output"; the
        // run succeeds and Y is all zeros.  This mirrors DaCe semantics where
        // missing inputs are undefined; we choose zero-fill.
        assert!(err.is_ok());
        assert_eq!(ex.array("Y").unwrap().sum(), 0.0);
    }

    #[test]
    fn wrong_shape_input_rejected() {
        let sdfg = scale_sdfg(1.0);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 4)])).unwrap();
        let bad = Tensor::zeros(&[5]);
        assert!(matches!(
            ex.set_input("X", bad),
            Err(RuntimeError::ShapeMismatch { .. })
        ));
    }

    /// Sequential loop with an element tasklet: out[0] = sum of i for i in 0..N.
    #[test]
    fn sequential_loop_with_accumulation() {
        let mut sdfg = Sdfg::new("loop");
        sdfg.add_symbol("N");
        sdfg.add_array("ACC", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("acc", "o", E::iter("i")));
        let w = g.add_access("ACC");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("ACC", vec![SymExpr::int(0)]).with_wcr_sum(),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "i".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("N"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::State(sid)),
        });
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 10)])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("ACC").unwrap().data()[0], 45.0);
    }

    #[test]
    fn reverse_loop_executes_in_descending_order() {
        // ACC = last i written (no WCR): with a reversed loop it ends at 0.
        let mut sdfg = Sdfg::new("revloop");
        sdfg.add_array("ACC", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("set", "o", E::iter("i")));
        let w = g.add_access("ACC");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("ACC", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "i".into(),
            start: SymExpr::int(9),
            end: SymExpr::int(-1),
            step: SymExpr::int(-1),
            body: Box::new(ControlFlow::State(sid)),
        });
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("ACC").unwrap().data()[0], 0.0);
    }

    #[test]
    fn branch_takes_correct_arm() {
        // if P[0] > 0 { Y[0] = 1 } else { Y[0] = 2 }
        let mut sdfg = Sdfg::new("branch");
        sdfg.add_array("P", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mk = |v: f64| {
            let mut g = DataflowGraph::new();
            let t = g.add_tasklet(Tasklet::new("c", "o", E::c(v)));
            let w = g.add_access("Y");
            g.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element("Y", vec![SymExpr::int(0)]),
            );
            g
        };
        let then_id = sdfg.add_state(State {
            name: "t".into(),
            graph: mk(1.0),
        });
        let else_id = sdfg.add_state(State {
            name: "e".into(),
            graph: mk(2.0),
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            then_body: Box::new(ControlFlow::State(then_id)),
            else_body: Some(Box::new(ControlFlow::State(else_id))),
        });
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("P", Tensor::from_vec(vec![5.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 1.0);

        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("P", Tensor::from_vec(vec![-5.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 2.0);
    }

    #[test]
    fn matmul_library_node() {
        let mut sdfg = Sdfg::new("mm");
        sdfg.add_symbol("N");
        for n in ["A", "B", "C"] {
            sdfg.add_array(
                n,
                ArrayDesc::input(vec![SymExpr::sym("N"), SymExpr::sym("N")]),
            )
            .unwrap();
        }
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let b = g.add_access("B");
        let mm = g.add_library(LibraryOp::MatMul);
        let c = g.add_access("C");
        g.add_edge(a, None, mm, Some("A"), Memlet::all("A"));
        g.add_edge(b, None, mm, Some("B"), Memlet::all("B"));
        g.add_edge(mm, Some("C"), c, None, Memlet::all("C"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 4)])).unwrap();
        let a_t = dace_tensor::random::uniform(&[4, 4], 3);
        let b_t = dace_tensor::random::uniform(&[4, 4], 4);
        ex.set_input("A", a_t.clone()).unwrap();
        ex.set_input("B", b_t.clone()).unwrap();
        let report = ex.run().unwrap();
        assert_eq!(report.library_calls, 1);
        assert!(dace_tensor::allclose_default(
            ex.array("C").unwrap(),
            &a_t.matmul(&b_t).unwrap()
        ));
    }

    #[test]
    fn sum_reduce_library_node() {
        let mut sdfg = Sdfg::new("sum");
        sdfg.add_symbol("N");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("S", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let r = g.add_library(LibraryOp::SumReduce { accumulate: false });
        let s = g.add_access("S");
        g.add_edge(a, None, r, Some("IN"), Memlet::all("A"));
        g.add_edge(r, Some("OUT"), s, None, Memlet::all("S"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 6)])).unwrap();
        ex.set_input("A", Tensor::ones(&[6])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("S").unwrap().data()[0], 6.0);
    }

    #[test]
    fn transient_allocation_and_free_hints() {
        // X -> T (transient) -> Y; free T after the state.
        let mut sdfg = Sdfg::new("transient");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("T", ArrayDesc::transient(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mk = |src: &str, dst: &str| {
            let mut body = DataflowGraph::new();
            let r = body.add_access(src);
            let t = body.add_tasklet(Tasklet::new("x2", "o", E::input("x").mul(E::c(2.0))));
            let w = body.add_access(dst);
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element(src, vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element(dst, vec![SymExpr::sym("i")]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access(src);
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access(dst);
            g.add_edge(rn, None, m, None, Memlet::all(src));
            g.add_edge(m, None, wn, None, Memlet::all(dst));
            g
        };
        let s0 = sdfg.add_state(State {
            name: "s0".into(),
            graph: mk("X", "T"),
        });
        let s1 = sdfg.add_state(State {
            name: "s1".into(),
            graph: mk("T", "Y"),
        });
        sdfg.cfg = ControlFlow::Sequence(vec![ControlFlow::State(s0), ControlFlow::State(s1)]);

        let mut hints = HashMap::new();
        hints.insert(s1, vec!["T".to_string()]);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 8)]))
            .unwrap()
            .with_free_hints(hints);
        ex.set_input("X", Tensor::ones(&[8])).unwrap();
        let report = ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 4.0);
        // Peak memory saw X + Y + T = 3 * 8 * 8 bytes; at the end T is freed.
        assert_eq!(report.peak_bytes, 3 * 64);
        assert_eq!(report.final_bytes, 2 * 64);
        assert!(ex.array("T").is_none());
    }

    #[test]
    fn stored_flag_condition() {
        let mut sdfg = Sdfg::new("flag");
        sdfg.add_array("F", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("one", "o", E::c(1.0)));
        let w = g.add_access("Y");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::StoredFlag("F".into()),
            then_body: Box::new(ControlFlow::State(sid)),
            else_body: None,
        });
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("F", Tensor::from_vec(vec![0.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 0.0);
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("F", Tensor::from_vec(vec![1.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 1.0);
    }

    #[test]
    fn nested_loops_stencil_style() {
        // for t in 0..T: for i in 1..N-1: A[i] = (A[i-1] + A[i] + A[i+1]) / 3
        let mut sdfg = Sdfg::new("jacobi_inplace");
        sdfg.add_symbol("N");
        sdfg.add_symbol("T");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let r = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new(
            "avg",
            "o",
            E::input("l")
                .add(E::input("c"))
                .add(E::input("r"))
                .div(E::c(3.0)),
        ));
        let w = g.add_access("A");
        g.add_edge(
            r,
            None,
            t,
            Some("l"),
            Memlet::element("A", vec![SymExpr::sym("i").sub(&SymExpr::int(1))]),
        );
        g.add_edge(
            r,
            None,
            t,
            Some("c"),
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        g.add_edge(
            r,
            None,
            t,
            Some("r"),
            Memlet::element("A", vec![SymExpr::sym("i").add_int(1)]),
        );
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "ts".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("T"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::Loop(LoopRegion {
                var: "i".into(),
                start: SymExpr::int(1),
                end: SymExpr::sym("N").sub(&SymExpr::int(1)),
                step: SymExpr::int(1),
                body: Box::new(ControlFlow::State(sid)),
            })),
        });
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 6), ("T", 2)])).unwrap();
        ex.set_input(
            "A",
            Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[6]).unwrap(),
        )
        .unwrap();
        let report = ex.run().unwrap();
        assert_eq!(report.state_executions, 8);
        // Reference: straightforward Rust implementation.
        let mut a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        for _ in 0..2 {
            for i in 1..5 {
                a[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
            }
        }
        let got = ex.array("A").unwrap().data().to_vec();
        for (x, y) in got.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_bounds_index_is_reported() {
        let mut sdfg = Sdfg::new("oob");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::int(2)]))
            .unwrap();
        sdfg.add_array("B", ArrayDesc::input(vec![SymExpr::int(2)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let r = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("id", "o", E::input("x")));
        let w = g.add_access("B");
        g.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::int(5)]),
        );
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("B", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("A", Tensor::zeros(&[2])).unwrap();
        assert!(matches!(ex.run(), Err(RuntimeError::BadIndex { .. })));
    }
}
