//! The SDFG interpreter, driven by a compiled execution plan.
//!
//! This module holds the plan *walker*: the hot loops (sequential maps, the
//! element-wise fast path, and the snapshot-based parallel path) touch no
//! string keys and perform no per-iteration clones or allocations.  The
//! parallel path fans out over a persistent rayon worker pool with one
//! register file per chunk.
//!
//! The public entry point is the compile-once API at the crate root:
//! [`crate::compile`] lowers the SDFG into a [`crate::CompiledProgram`]
//! (with plan caching) and [`crate::Session`] drives the walker defined
//! here.  The [`Executor`] type in this module is a deprecated shim kept
//! for source compatibility; it simply wraps a `Session`.
//!
//! Memory is tracked with [`crate::memory::MemoryTracker`]: non-transient
//! inputs are counted at start, transients are allocated lazily at first
//! touch, and optional per-state *free hints* (produced by the AD engine for
//! recomputation temporaries and consumed tape entries) release containers
//! early so that peak-memory measurements reflect store/recompute choices.

use std::collections::HashMap;
use std::time::Duration;

use rayon::prelude::*;

use dace_sdfg::{CondExpr, LibraryOp, Sdfg, Subset};
use dace_tensor::Tensor;

use crate::error::{RuntimeError, RuntimeResult};
use crate::memory::MemoryTracker;
use crate::plan::{
    CIdx, ExecPlan, Layout, PlanAccess, PlanCf, PlanCond, PlanElementwise, PlanGraph, PlanLibrary,
    PlanMap, PlanNode, PlanOperand, PlanTasklet, SymFile,
};
use crate::program::Session;
use crate::spec::SpecMode;

/// Execution statistics and instrumentation results.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Wall-clock time of the `run` call.
    pub elapsed: Duration,
    /// Peak bytes of *logically live* containers during execution, as
    /// tracked by [`crate::MemoryTracker`] (the analytic model the
    /// checkpointing experiments measure).  Tensors released by free hints
    /// are parked in the session's recycle pool for in-place reuse, so the
    /// process-resident footprint can exceed this figure by the pooled
    /// bytes.
    pub peak_bytes: usize,
    /// Bytes logically live at the end of execution.
    pub final_bytes: usize,
    /// Number of tasklet evaluations.
    pub tasklet_invocations: u64,
    /// Number of map body executions (index points).
    pub map_points: u64,
    /// Number of state executions.
    pub state_executions: u64,
    /// Number of library-node expansions executed.
    pub library_calls: u64,
    /// Number of specialized-kernel dispatches: each covers one whole
    /// innermost-loop or map execution handled by the specialization tier
    /// instead of the register VM (see [`crate::SpecMode`]).
    pub specialized_dispatches: u64,
    /// Plan-cache hits recorded for this program's cache entry (snapshot at
    /// the end of the run; see [`crate::PlanCacheStats`]).
    pub plan_cache_hits: u64,
    /// Plan-cache misses for this program's cache entry — the number of
    /// times this (SDFG, symbols) pair was actually lowered.  Stays at `1`
    /// across repeated runs of a cached program.
    pub plan_cache_misses: u64,
}

/// Minimum number of map points before the parallel (rayon) path is used.
const PARALLEL_MAP_THRESHOLD: usize = 8192;

/// Map execution path selection.  `Auto` (the default) picks the fastest
/// applicable path; the forced variants exist so tests and instrumentation
/// can compare the element-wise, sequential and parallel paths on the same
/// map and assert identical results and counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MapPath {
    /// Element-wise fast path if eligible, then parallel above the point
    /// threshold, otherwise sequential.
    #[default]
    Auto,
    /// Always the general sequential loop.
    Sequential,
    /// The snapshot-based parallel path whenever the body permits it
    /// (ignoring the point threshold); sequential otherwise.
    Parallel,
}

/// Scratch buffers reused across tasklet evaluations: the expression slot
/// array, the floating-point and integer register files, and the per-tasklet
/// output values.  One `Scratch` lives per executor; the parallel map path
/// creates one per chunk.
#[derive(Default)]
pub(crate) struct Scratch {
    pub(crate) slots: Vec<f64>,
    pub(crate) f_regs: Vec<f64>,
    pub(crate) i_regs: Vec<i64>,
    pub(crate) outs: Vec<f64>,
}

/// A buffered element write produced by the parallel map path.
struct BufferedWrite {
    array: u32,
    flat: usize,
    value: f64,
    accumulate: bool,
}

/// Mutable execution state, separated from the immutable plan so the
/// recursive walkers can borrow both disjointly.  Owned by
/// [`crate::Session`]; the walker methods live here.
pub(crate) struct RunState {
    pub(crate) slab: Vec<Option<Tensor>>,
    /// Recycled transient tensors: when a run (or a free hint) releases a
    /// transient, its allocation parks here and `ensure_allocated` reuses it
    /// (zero-filled in place) instead of allocating a fresh tensor.
    pub(crate) pool: Vec<Option<Tensor>>,
    pub(crate) syms: SymFile,
    pub(crate) tracker: MemoryTracker,
    pub(crate) report: ExecutionReport,
    pub(crate) free_hints: Vec<Vec<u32>>,
    pub(crate) scratch: Scratch,
    pub(crate) path: MapPath,
    pub(crate) spec_mode: SpecMode,
    /// Per-specialization-site dispatch counters (profile-guided upgrade;
    /// deliberately *not* reset across runs — warmth persists per session).
    pub(crate) spec_exec_counts: Vec<u64>,
}

/// The legacy coupled compile-and-run interface: a thin wrapper over
/// [`crate::compile`] + [`Session`] kept for source compatibility.
///
/// New code should call [`crate::compile`] once and open [`Session`]s from
/// the resulting [`crate::CompiledProgram`]; that shape shares lowered plans
/// through the plan cache and reuses the tensor slab across runs.
pub struct Executor {
    session: Session,
}

impl Executor {
    /// Create an executor for an SDFG with concrete symbol values.
    ///
    /// Deprecated: this shim wraps the compile-once API and exists only for
    /// source compatibility.  The "Migrating from `Executor::new`" section of
    /// the repository README (under "Execution pipeline: build → compile
    /// once → run many") maps every `Executor` method to its
    /// `compile`/[`Session`] replacement, and `ARCHITECTURE.md` documents
    /// where the compile-once pipeline sits in the overall system.
    #[deprecated(
        since = "0.2.0",
        note = "use `dace_runtime::compile(sdfg, symbols)?.session()` — see the \"Migrating \
                from `Executor::new`\" section of README.md for the method-by-method mapping"
    )]
    pub fn new(sdfg: &Sdfg, symbols: &HashMap<String, i64>) -> RuntimeResult<Self> {
        Ok(Executor {
            session: crate::program::compile(sdfg, symbols)?.session(),
        })
    }

    /// Attach per-state free hints (see [`Session::set_free_hints`]).
    pub fn with_free_hints(mut self, hints: HashMap<usize, Vec<String>>) -> Self {
        self.session.set_free_hints(&hints);
        self
    }

    /// Force a map execution path (testing/instrumentation knob).
    pub fn force_map_path(&mut self, path: MapPath) {
        self.session.force_map_path(path);
    }

    /// Provide an input (non-transient) array.
    pub fn set_input(&mut self, name: &str, tensor: Tensor) -> RuntimeResult<()> {
        self.session.set_input(name, tensor)
    }

    /// Access an array after (or before) execution.
    pub fn array(&self, name: &str) -> Option<&Tensor> {
        self.session.array(name)
    }

    /// Take ownership of all arrays (inputs, outputs and surviving transients).
    pub fn into_arrays(mut self) -> HashMap<String, Tensor> {
        self.session.take_arrays()
    }

    /// The memory tracker (for inspection in tests and benchmarks).
    pub fn tracker(&self) -> &MemoryTracker {
        self.session.tracker()
    }

    /// Concrete symbol bindings used by this executor.
    pub fn symbols(&self) -> &HashMap<String, i64> {
        self.session.symbols()
    }

    /// Execute the SDFG.
    pub fn run(&mut self) -> RuntimeResult<ExecutionReport> {
        self.session.run()
    }

    /// Evaluate a control-flow condition against explicit string bindings
    /// (see [`Session::eval_cond`]).
    pub fn eval_cond(
        &mut self,
        cond: &CondExpr,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<bool> {
        self.session.eval_cond(cond, bindings)
    }
}

impl RunState {
    /// Fresh run state for a plan: empty slab and pool, initial symbol file.
    pub(crate) fn new(plan: &ExecPlan) -> Self {
        let n_arrays = plan.arrays.names.len();
        RunState {
            slab: vec![None; n_arrays],
            pool: vec![None; n_arrays],
            syms: plan.init_syms.clone(),
            tracker: MemoryTracker::new(),
            report: ExecutionReport::default(),
            free_hints: vec![Vec::new(); plan.states.len()],
            scratch: Scratch::default(),
            path: MapPath::Auto,
            spec_mode: SpecMode::from_env(),
            spec_exec_counts: vec![0; plan.specs.len()],
        }
    }

    pub(crate) fn ensure_allocated(&mut self, plan: &ExecPlan, id: u32) -> RuntimeResult<()> {
        if self.slab[id as usize].is_some() {
            return Ok(());
        }
        if !plan.arrays.transient[id as usize] {
            return Err(RuntimeError::MissingInput(
                plan.arrays.names[id as usize].clone(),
            ));
        }
        let layout = plan.arrays.layout(id)?;
        // Reuse a pooled tensor from a previous run when available: the
        // layout is identical (same plan), so a zero-fill in place replaces
        // the allocation.
        let tensor = match self.pool[id as usize].take() {
            Some(mut t) => {
                t.data_mut().fill(0.0);
                t
            }
            None => Tensor::zeros(&layout.dims),
        };
        self.slab[id as usize] = Some(tensor);
        self.tracker
            .alloc(&plan.arrays.names[id as usize], layout.bytes);
        Ok(())
    }

    #[inline]
    fn idx(&mut self, plan: &ExecPlan, c: &CIdx) -> RuntimeResult<i64> {
        c.eval(&self.syms, &plan.syms.names, &mut self.scratch.i_regs)
    }

    pub(crate) fn exec_cfg(&mut self, plan: &ExecPlan, cf: &PlanCf) -> RuntimeResult<()> {
        match cf {
            PlanCf::State(id) => self.exec_state(plan, *id),
            PlanCf::Seq(children) => {
                for c in children {
                    self.exec_cfg(plan, c)?;
                }
                Ok(())
            }
            PlanCf::Loop {
                var,
                start,
                end,
                step,
                body,
                spec,
            } => {
                let start = self.idx(plan, start)?;
                let end = self.idx(plan, end)?;
                let step = self.idx(plan, step)?;
                if step == 0 {
                    return Err(RuntimeError::Malformed(format!(
                        "loop `{}` has zero step",
                        plan.syms.names[*var as usize]
                    )));
                }
                // Specialized innermost-loop dispatch.  The specialized run
                // never touches the symbol file, matching the VM's net
                // save/restore effect; per-state free hints keep the VM path
                // (the hint fires per state execution).
                if step == 1 {
                    if let Some(spec_id) = *spec {
                        let hints_clear = plan.specs[spec_id as usize]
                            .state
                            .is_none_or(|s| self.free_hints[s].is_empty());
                        if hints_clear
                            && self.spec_should_dispatch(spec_id)
                            && self.exec_spec(plan, spec_id, start, end)?
                        {
                            let trip = (end - start) as u64;
                            self.report.state_executions += trip;
                            self.report.tasklet_invocations += trip;
                            self.report.specialized_dispatches += 1;
                            return Ok(());
                        }
                    }
                }
                let v = *var as usize;
                let previous = (self.syms.vals[v], self.syms.defined[v]);
                self.syms.defined[v] = true;
                let mut i = start;
                while (step > 0 && i < end) || (step < 0 && i > end) {
                    self.syms.vals[v] = i;
                    self.exec_cfg(plan, body)?;
                    i += step;
                }
                // Restore any outer binding of the same iterator name.
                self.syms.vals[v] = previous.0;
                self.syms.defined[v] = previous.1;
                Ok(())
            }
            PlanCf::Branch {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval_plan_cond(plan, cond)? {
                    self.exec_cfg(plan, then_body)
                } else if let Some(e) = else_body {
                    self.exec_cfg(plan, e)
                } else {
                    Ok(())
                }
            }
        }
    }

    fn eval_plan_cond(&mut self, plan: &ExecPlan, cond: &PlanCond) -> RuntimeResult<bool> {
        match cond {
            PlanCond::Cmp { lhs, op, rhs } => {
                let a = self.eval_plan_operand(plan, lhs)?;
                let b = self.eval_plan_operand(plan, rhs)?;
                Ok(op.apply(a, b))
            }
            PlanCond::Not(inner) => Ok(!self.eval_plan_cond(plan, inner)?),
            PlanCond::StoredFlag(a) => {
                self.ensure_allocated(plan, *a)?;
                let t = self.slab[*a as usize].as_ref().expect("just allocated");
                Ok(t.data().first().copied().unwrap_or(0.0) != 0.0)
            }
            PlanCond::Fail(e) => Err(e.clone()),
        }
    }

    fn eval_plan_operand(&mut self, plan: &ExecPlan, op: &PlanOperand) -> RuntimeResult<f64> {
        match op {
            PlanOperand::Const(v) => Ok(*v),
            PlanOperand::Sym(c) => Ok(self.idx(plan, c)? as f64),
            PlanOperand::Element { array, index } => {
                self.ensure_allocated(plan, *array)?;
                let RunState {
                    slab,
                    syms,
                    scratch,
                    ..
                } = self;
                let layout = plan.arrays.layout(*array)?;
                let flat = flat_offset(plan, syms, &mut scratch.i_regs, *array, index, layout)?;
                Ok(slab[*array as usize]
                    .as_ref()
                    .expect("just allocated")
                    .data()[flat])
            }
        }
    }

    fn exec_state(&mut self, plan: &ExecPlan, id: usize) -> RuntimeResult<()> {
        self.report.state_executions += 1;
        self.exec_graph(plan, &plan.states[id])?;
        for k in 0..self.free_hints[id].len() {
            let aid = self.free_hints[id][k] as usize;
            self.tracker.free(&plan.arrays.names[aid]);
            // Park the released tensor in the pool so a later allocation of
            // the same container reuses it instead of reallocating.  Guarded
            // so a hint firing while the container is unallocated (skipped
            // branch, duplicate hint) does not clobber a parked buffer.
            if let Some(t) = self.slab[aid].take() {
                self.pool[aid] = Some(t);
            }
        }
        Ok(())
    }

    fn exec_graph(&mut self, plan: &ExecPlan, g: &PlanGraph) -> RuntimeResult<()> {
        if let Some(e) = &g.fail {
            return Err(e.clone());
        }
        for &n in &g.order {
            match &g.nodes[n] {
                PlanNode::Access(a) => {
                    // Allocate when the container is written (has in-edges) or
                    // read (must already exist for non-transients).
                    self.ensure_allocated(plan, *a)?;
                }
                PlanNode::Tasklet(t) => self.exec_tasklet(plan, t)?,
                PlanNode::Map(m) => self.exec_map(plan, m)?,
                PlanNode::Library(l) => self.exec_library(plan, l)?,
                PlanNode::Fail(e) => return Err(e.clone()),
            }
        }
        Ok(())
    }

    fn exec_tasklet(&mut self, plan: &ExecPlan, t: &PlanTasklet) -> RuntimeResult<()> {
        self.report.tasklet_invocations += 1;
        {
            let RunState {
                slab,
                syms,
                scratch,
                ..
            } = self;
            scratch.slots.clear();
            scratch.slots.resize(t.n_slots, 0.0);
            for r in &t.reads {
                let v = read_access(plan, slab, syms, &mut scratch.i_regs, r.array, &r.access)?;
                scratch.slots[r.slot as usize] = v;
            }
            load_iters(plan, syms, &mut scratch.slots, &t.iter_loads)?;
            scratch.outs.clear();
            for e in &t.exprs {
                let v = e.eval(&scratch.slots, &mut scratch.f_regs);
                scratch.outs.push(v);
            }
        }
        for w in &t.writes {
            let value = self.scratch.outs[w.expr as usize];
            self.write_access(plan, w.array, &w.access, value, w.accumulate)?;
        }
        Ok(())
    }

    fn write_access(
        &mut self,
        plan: &ExecPlan,
        array: u32,
        access: &PlanAccess,
        value: f64,
        accumulate: bool,
    ) -> RuntimeResult<()> {
        self.ensure_allocated(plan, array)?;
        let RunState {
            slab,
            syms,
            scratch,
            ..
        } = self;
        let flat = match access {
            PlanAccess::All => {
                let t = slab[array as usize].as_ref().expect("just allocated");
                if t.len() != 1 {
                    return Err(RuntimeError::Malformed(format!(
                        "whole-array memlet of `{}` used as a scalar write",
                        plan.arrays.names[array as usize]
                    )));
                }
                0
            }
            PlanAccess::Element(idx) => {
                let layout = plan.arrays.layout(array)?;
                flat_offset(plan, syms, &mut scratch.i_regs, array, idx, layout)?
            }
        };
        let t = slab[array as usize].as_mut().expect("just allocated");
        let target = &mut t.data_mut()[flat];
        if accumulate {
            *target += value;
        } else {
            *target = value;
        }
        Ok(())
    }

    fn exec_map(&mut self, plan: &ExecPlan, m: &PlanMap) -> RuntimeResult<()> {
        // Evaluate the iteration domain.
        let ndim = m.ranges.len();
        let mut lows = Vec::with_capacity(ndim);
        let mut sizes = Vec::with_capacity(ndim);
        for (s, e) in &m.ranges {
            let lo = self.idx(plan, s)?;
            let hi = self.idx(plan, e)?;
            lows.push(lo);
            sizes.push((hi - lo).max(0) as usize);
        }
        // Symbolic extents are attacker/user-controlled: the domain size must
        // not wrap (wrapping would silently truncate the iteration count in
        // release builds and panic in debug builds).
        let total: usize = sizes
            .iter()
            .try_fold(1usize, |acc, &s| acc.checked_mul(s))
            .ok_or_else(|| RuntimeError::MapDomainOverflow {
                sizes: sizes.clone(),
            })?;
        if total == 0 {
            return Ok(());
        }
        self.report.map_points += total as u64;

        // Pre-allocate every container referenced by the body so that the
        // parallel path can operate on an immutable snapshot.
        for &a in &m.referenced {
            self.ensure_allocated(plan, a)?;
        }

        // Fast path: a pure element-wise map (every memlet indexes exactly by
        // the map parameters, in order) evaluates as a flat vectorized loop.
        // This models the vectorized code DaCe generates for such maps and is
        // what keeps whole-array statements competitive with the baseline's
        // whole-array kernels.
        if self.path == MapPath::Auto {
            if let Some(ew) = &m.elementwise {
                if lows.iter().all(|&l| l == 0) && self.exec_map_elementwise(ew, &sizes, total)? {
                    return Ok(());
                }
            }
            // Specialized 1-D strided-loop dispatch: covers offset and
            // strided memlets the identity-indexed element-wise path cannot
            // express (e.g. 1-D stencils).
            if let Some(spec_id) = m.spec {
                if self.spec_should_dispatch(spec_id)
                    && self.exec_spec(plan, spec_id, lows[0], lows[0] + sizes[0] as i64)?
                {
                    self.report.tasklet_invocations += total as u64;
                    self.report.specialized_dispatches += 1;
                    return Ok(());
                }
            }
        }

        // The parallel path is gated on the affine dependence verdict
        // computed at lowering: `Safe` and `Reduction` maps are provably
        // bit-identical under the snapshot/buffered-write scheme, while
        // `Race` and `Unknown` maps run sequentially even when explicitly
        // requested via `MapPath::Parallel`.
        let use_parallel = match self.path {
            MapPath::Auto => {
                m.parallel && total >= PARALLEL_MAP_THRESHOLD && m.verdict.allows_parallel()
            }
            MapPath::Parallel => m.verdict.allows_parallel(),
            MapPath::Sequential => false,
        };
        if use_parallel {
            self.exec_map_parallel(plan, m, &lows, &sizes, total)
        } else {
            self.exec_map_sequential(plan, m, &lows, &sizes, total)
        }
    }

    /// The element-wise flat-loop fast path.  Returns `Ok(false)` when a
    /// runtime condition (array shapes, iterator availability) rules it out
    /// and the caller should fall back to the general path.
    ///
    /// Every identity-indexed array must have exactly the iteration domain as
    /// its shape — a length match alone is not enough, because an array whose
    /// dimensions are a permutation of the map sizes would be traversed with
    /// the wrong strides by the flat loop.
    fn exec_map_elementwise(
        &mut self,
        ew: &PlanElementwise,
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<bool> {
        let shape_matches = |t: Option<&Tensor>| -> bool {
            match t {
                Some(t) => t.len() == total && t.shape() == sizes,
                None => false,
            }
        };
        if !shape_matches(self.slab[ew.out_array as usize].as_ref()) {
            return Ok(false);
        }
        for &(_, a) in &ew.reads {
            if !shape_matches(self.slab[a as usize].as_ref()) {
                return Ok(false);
            }
        }
        for &(_, sym) in &ew.iter_loads {
            if !self.syms.defined[sym as usize] {
                return Ok(false);
            }
        }
        let RunState {
            slab,
            syms,
            scratch,
            report,
            ..
        } = self;
        scratch.slots.clear();
        scratch.slots.resize(ew.n_slots, 0.0);
        // Outer iterators are loop-invariant: promote them once.
        for &(slot, sym) in &ew.iter_loads {
            scratch.slots[slot as usize] = syms.vals[sym as usize] as f64;
        }
        // Snapshot inputs that alias the output, then take the output tensor
        // out of the slab so the remaining inputs can be borrowed directly.
        let aliased: Vec<Option<Vec<f64>>> = ew
            .reads
            .iter()
            .map(|&(_, a)| {
                if a == ew.out_array {
                    Some(
                        slab[a as usize]
                            .as_ref()
                            .expect("checked above")
                            .data()
                            .to_vec(),
                    )
                } else {
                    None
                }
            })
            .collect();
        let mut out_t = slab[ew.out_array as usize].take().expect("checked above");
        {
            let srcs: Vec<(u32, &[f64])> = ew
                .reads
                .iter()
                .zip(&aliased)
                .map(|(&(slot, a), owned)| match owned {
                    Some(v) => (slot, v.as_slice()),
                    None => (
                        slot,
                        slab[a as usize].as_ref().expect("checked above").data(),
                    ),
                })
                .collect();
            let out_data = out_t.data_mut();
            if ew.accumulate {
                for (flat, out) in out_data.iter_mut().enumerate().take(total) {
                    for &(slot, data) in &srcs {
                        scratch.slots[slot as usize] = data[flat];
                    }
                    *out += ew.expr.eval(&scratch.slots, &mut scratch.f_regs);
                }
            } else {
                for (flat, out) in out_data.iter_mut().enumerate().take(total) {
                    for &(slot, data) in &srcs {
                        scratch.slots[slot as usize] = data[flat];
                    }
                    *out = ew.expr.eval(&scratch.slots, &mut scratch.f_regs);
                }
            }
        }
        slab[ew.out_array as usize] = Some(out_t);
        report.tasklet_invocations += total as u64;
        Ok(true)
    }

    fn exec_map_sequential(
        &mut self,
        plan: &ExecPlan,
        m: &PlanMap,
        lows: &[i64],
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<()> {
        let ndim = m.params.len();
        let saved: Vec<(i64, bool)> = m
            .params
            .iter()
            .map(|&p| (self.syms.vals[p as usize], self.syms.defined[p as usize]))
            .collect();
        for (d, &p) in m.params.iter().enumerate() {
            self.syms.set(p, lows[d]);
        }
        // Odometer over the index domain (last dimension fastest), matching
        // the row-major flat order of the old unflatten-per-point loop but
        // without any per-point allocation.
        let mut counters = vec![0usize; ndim];
        let mut remaining = total;
        loop {
            self.exec_graph(plan, &m.body)?;
            remaining -= 1;
            if remaining == 0 {
                break;
            }
            advance_odometer(&mut counters, &mut self.syms, &m.params, lows, sizes);
        }
        for (&p, &(v, def)) in m.params.iter().zip(&saved) {
            self.syms.vals[p as usize] = v;
            self.syms.defined[p as usize] = def;
        }
        Ok(())
    }

    /// Parallel map execution: every index point is evaluated against an
    /// immutable snapshot of the arrays, producing buffered writes that are
    /// applied afterwards.  This mirrors the data-race-free semantics of a
    /// DaCe map (each iteration writes a disjoint subset).  Work is split
    /// into one contiguous chunk per pool thread; each chunk reuses its own
    /// symbol file and register scratch across its points.
    fn exec_map_parallel(
        &mut self,
        plan: &ExecPlan,
        m: &PlanMap,
        lows: &[i64],
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<()> {
        if let Some(e) = &m.body.fail {
            return Err(e.clone());
        }
        let n_chunks = rayon::current_num_threads().max(1).min(total);
        let chunk = total.div_ceil(n_chunks);
        let slab = &self.slab;
        let base_syms = &self.syms;
        let results: Result<Vec<(Vec<BufferedWrite>, AccessLog)>, RuntimeError> = (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(total);
                let mut log = AccessLog::default();
                if lo >= hi {
                    return Ok((Vec::new(), log));
                }
                let mut syms = base_syms.clone();
                let mut scratch = Scratch::default();
                let mut writes: Vec<BufferedWrite> = Vec::new();
                let mut counters = unflatten(lo, sizes);
                for (d, &p) in m.params.iter().enumerate() {
                    syms.set(p, lows[d] + counters[d] as i64);
                }
                let mut iter = lo;
                let mut remaining = hi - lo;
                loop {
                    eval_body_readonly(
                        plan,
                        &m.body,
                        slab,
                        &syms,
                        &mut scratch,
                        &mut writes,
                        iter,
                        &mut log,
                    )?;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                    iter += 1;
                    advance_odometer(&mut counters, &mut syms, &m.params, lows, sizes);
                }
                Ok((writes, log))
            })
            .collect();
        let chunks = results?;
        if cfg!(feature = "race-check") {
            check_race_free(plan, &chunks);
        }
        for (chunk_writes, _) in chunks {
            for w in chunk_writes {
                let t = self.slab[w.array as usize].as_mut().ok_or_else(|| {
                    RuntimeError::UnknownArray(plan.arrays.names[w.array as usize].clone())
                })?;
                let target = &mut t.data_mut()[w.flat];
                if w.accumulate {
                    *target += w.value;
                } else {
                    *target = w.value;
                }
            }
        }
        // Count tasklet *evaluations* (not buffered writes): each index point
        // evaluates every tasklet of the body exactly once.
        self.report.tasklet_invocations += total as u64 * m.body_tasklets;
        Ok(())
    }

    fn exec_library(&mut self, plan: &ExecPlan, l: &PlanLibrary) -> RuntimeResult<()> {
        self.report.library_calls += 1;
        for &(_, a) in l.inputs.iter() {
            self.ensure_allocated(plan, a)?;
        }
        // Compute outputs by connector against immutable slab borrows (the
        // old interpreter cloned every input tensor first).
        let outputs: Vec<(&'static str, Tensor)> = {
            let slab = &self.slab;
            let get = |conn: &str| -> RuntimeResult<&Tensor> {
                for (c, a) in &l.inputs {
                    if c == conn {
                        return slab[*a as usize].as_ref().ok_or_else(|| {
                            RuntimeError::UnknownArray(plan.arrays.names[*a as usize].clone())
                        });
                    }
                }
                Err(RuntimeError::Malformed(format!(
                    "library node missing input `{conn}`"
                )))
            };
            match &l.op {
                LibraryOp::MatMul => vec![("C", get("A")?.matmul(get("B")?)?)],
                LibraryOp::MatVec => vec![("y", get("A")?.matvec(get("x")?)?)],
                LibraryOp::Transpose => vec![("B", get("A")?.transpose()?)],
                LibraryOp::SumReduce { .. } => {
                    let s = get("IN")?.sum();
                    vec![("OUT", Tensor::from_vec(vec![s], &[1])?)]
                }
                LibraryOp::Copy => vec![("B", get("A")?.clone())],
            }
        };
        // Write outputs.
        for (conn, array, wcr) in &l.outputs {
            let value = outputs
                .iter()
                .find(|(c, _)| c == conn)
                .map(|(_, t)| t)
                .ok_or_else(|| {
                    RuntimeError::Malformed(format!("library node has no output `{conn}`"))
                })?;
            self.ensure_allocated(plan, *array)?;
            let accumulate = *wcr || matches!(l.op, LibraryOp::SumReduce { accumulate: true });
            let dst = self.slab[*array as usize].as_mut().expect("just allocated");
            if dst.shape() != value.shape() {
                return Err(RuntimeError::ShapeMismatch {
                    array: plan.arrays.names[*array as usize].clone(),
                    expected: dst.shape().to_vec(),
                    got: value.shape().to_vec(),
                });
            }
            if accumulate {
                dst.add_assign(value)?;
            } else {
                *dst = value.clone();
            }
        }
        Ok(())
    }
}

/// Promote iteration-symbol values into expression slots, with the same
/// missing-symbol error the tree-walking evaluator produced.
#[inline]
fn load_iters(
    plan: &ExecPlan,
    syms: &SymFile,
    slots: &mut [f64],
    iter_loads: &[(u32, u32)],
) -> RuntimeResult<()> {
    for &(slot, sym) in iter_loads {
        if !syms.defined[sym as usize] {
            return Err(RuntimeError::Tasklet(format!(
                "missing iteration symbol `{}`",
                plan.syms.names[sym as usize]
            )));
        }
        slots[slot as usize] = syms.vals[sym as usize] as f64;
    }
    Ok(())
}

/// Read the scalar selected by a pre-classified access.
#[inline]
fn read_access(
    plan: &ExecPlan,
    slab: &[Option<Tensor>],
    syms: &SymFile,
    i_regs: &mut Vec<i64>,
    array: u32,
    access: &PlanAccess,
) -> RuntimeResult<f64> {
    let t = slab[array as usize]
        .as_ref()
        .ok_or_else(|| RuntimeError::UnknownArray(plan.arrays.names[array as usize].clone()))?;
    match access {
        PlanAccess::All => {
            if t.len() == 1 {
                Ok(t.data()[0])
            } else {
                Err(RuntimeError::Malformed(format!(
                    "whole-array memlet of `{}` used as a scalar read",
                    plan.arrays.names[array as usize]
                )))
            }
        }
        PlanAccess::Element(idx) => {
            let layout = plan.arrays.layout(array)?;
            let flat = flat_offset(plan, syms, i_regs, array, idx, layout)?;
            Ok(t.data()[flat])
        }
    }
}

/// Maximum rank handled without a heap allocation in the offset computation.
const MAX_INLINE_RANK: usize = 8;

/// Compute the flat row-major offset of a compiled element subset, with the
/// per-dimension bounds checks the tensor indexing used to perform.
#[inline]
fn flat_offset(
    plan: &ExecPlan,
    syms: &SymFile,
    i_regs: &mut Vec<i64>,
    array: u32,
    idx: &[CIdx],
    layout: &Layout,
) -> RuntimeResult<usize> {
    let names = &plan.syms.names;
    let rank = idx.len();
    let mut inline_buf = [0i64; MAX_INLINE_RANK];
    let mut heap_buf;
    let vals: &mut [i64] = if rank <= MAX_INLINE_RANK {
        &mut inline_buf[..rank]
    } else {
        heap_buf = vec![0i64; rank];
        &mut heap_buf
    };
    for (d, c) in idx.iter().enumerate() {
        vals[d] = c.eval(syms, names, i_regs)?;
    }
    let bad = |vals: &[i64]| RuntimeError::BadIndex {
        array: plan.arrays.names[array as usize].clone(),
        index: vals.to_vec(),
    };
    if rank != layout.dims.len() {
        return Err(bad(vals));
    }
    let mut flat = 0usize;
    for d in 0..rank {
        let v = vals[d];
        if v < 0 || v as usize >= layout.dims[d] {
            return Err(bad(vals));
        }
        flat += v as usize * layout.strides[d];
    }
    Ok(flat)
}

/// Shadow access log of the `race-check` dynamic detector: one entry per
/// snapshot read and per buffered write, tagged with the flat iteration
/// index.  Populated only when the `race-check` feature is enabled (the
/// vectors stay empty — and the branches fold away — otherwise).
#[derive(Default)]
struct AccessLog {
    /// `(array, flat offset, flat iteration index)` per snapshot read.
    reads: Vec<(u32, usize, usize)>,
    /// `(array, flat offset, flat iteration index, accumulate)` per write.
    writes: Vec<(u32, usize, usize, bool)>,
}

/// Cross-validate a static `Safe`/`Reduction` verdict against the observed
/// accesses of one parallel map execution: no two *distinct* iterations may
/// touch the same element unless both touches are accumulating writes.
/// Panics on violation — that means the dependence analyzer admitted a racy
/// map and must be fixed.
fn check_race_free(plan: &ExecPlan, chunks: &[(Vec<BufferedWrite>, AccessLog)]) {
    // (array, flat) -> (iteration, accumulate) of a previous write.
    let mut writes: HashMap<(u32, usize), (usize, bool)> = HashMap::new();
    let conflict = |array: u32, what: &str| -> ! {
        panic!(
            "race-check: the dependence analyzer admitted a parallel map, but two \
             iterations touched the same element of `{}` ({what})",
            plan.arrays.names[array as usize]
        )
    };
    for (_, log) in chunks {
        for &(array, flat, iter, acc) in &log.writes {
            if let Some((prev_iter, prev_acc)) = writes.insert((array, flat), (iter, acc)) {
                if prev_iter != iter && !(acc && prev_acc) {
                    conflict(array, "conflicting writes");
                }
            }
        }
    }
    for (_, log) in chunks {
        for &(array, flat, iter) in &log.reads {
            if let Some(&(w_iter, _)) = writes.get(&(array, flat)) {
                if w_iter != iter {
                    conflict(array, "a read overlapping another iteration's write");
                }
            }
        }
    }
}

/// Evaluate a tasklet-only body against an immutable array snapshot,
/// appending the buffered writes.
#[allow(clippy::too_many_arguments)]
fn eval_body_readonly(
    plan: &ExecPlan,
    body: &PlanGraph,
    slab: &[Option<Tensor>],
    syms: &SymFile,
    scratch: &mut Scratch,
    writes: &mut Vec<BufferedWrite>,
    iter: usize,
    log: &mut AccessLog,
) -> RuntimeResult<()> {
    for &n in &body.order {
        let t = match &body.nodes[n] {
            PlanNode::Tasklet(t) => t,
            PlanNode::Fail(e) => return Err(e.clone()),
            _ => continue,
        };
        scratch.slots.clear();
        scratch.slots.resize(t.n_slots, 0.0);
        for r in &t.reads {
            let v = read_access(plan, slab, syms, &mut scratch.i_regs, r.array, &r.access)?;
            scratch.slots[r.slot as usize] = v;
            if cfg!(feature = "race-check") {
                let flat = match &r.access {
                    PlanAccess::All => 0,
                    PlanAccess::Element(idx) => {
                        let layout = plan.arrays.layout(r.array)?;
                        flat_offset(plan, syms, &mut scratch.i_regs, r.array, idx, layout)?
                    }
                };
                log.reads.push((r.array, flat, iter));
            }
        }
        load_iters(plan, syms, &mut scratch.slots, &t.iter_loads)?;
        scratch.outs.clear();
        for e in &t.exprs {
            let v = e.eval(&scratch.slots, &mut scratch.f_regs);
            scratch.outs.push(v);
        }
        for w in &t.writes {
            let flat = match &w.access {
                PlanAccess::All => {
                    let t2 = slab[w.array as usize].as_ref().ok_or_else(|| {
                        RuntimeError::UnknownArray(plan.arrays.names[w.array as usize].clone())
                    })?;
                    if t2.len() != 1 {
                        return Err(RuntimeError::Malformed(format!(
                            "whole-array memlet of `{}` used as a scalar write",
                            plan.arrays.names[w.array as usize]
                        )));
                    }
                    0
                }
                PlanAccess::Element(idx) => {
                    let layout = plan.arrays.layout(w.array)?;
                    flat_offset(plan, syms, &mut scratch.i_regs, w.array, idx, layout)?
                }
            };
            if cfg!(feature = "race-check") {
                log.writes.push((w.array, flat, iter, w.accumulate));
            }
            writes.push(BufferedWrite {
                array: w.array,
                flat,
                value: scratch.outs[w.expr as usize],
                accumulate: w.accumulate,
            });
        }
    }
    Ok(())
}

/// Advance a row-major index odometer by one step (last dimension fastest)
/// and mirror the new per-dimension indices into the map-parameter symbol
/// slots.  Shared by the sequential and parallel map paths so their
/// iteration orders cannot drift apart.
#[inline]
fn advance_odometer(
    counters: &mut [usize],
    syms: &mut SymFile,
    params: &[u32],
    lows: &[i64],
    sizes: &[usize],
) {
    for d in (0..sizes.len()).rev() {
        counters[d] += 1;
        if counters[d] < sizes[d] {
            syms.vals[params[d] as usize] = lows[d] + counters[d] as i64;
            return;
        }
        counters[d] = 0;
        syms.vals[params[d] as usize] = lows[d];
    }
}

fn unflatten(mut flat: usize, sizes: &[usize]) -> Vec<usize> {
    let mut out = vec![0usize; sizes.len()];
    for d in (0..sizes.len()).rev() {
        out[d] = flat % sizes[d];
        flat /= sizes[d];
    }
    out
}

/// Convenience: check that a subset evaluates fully (used in tests).
pub fn subset_indices(subset: &Subset, bindings: &HashMap<String, i64>) -> Option<Vec<usize>> {
    subset
        .eval_indices(bindings)
        .ok()
        .map(|v| v.into_iter().map(|x| x.max(0) as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_sdfg::{
        ArrayDesc, BranchRegion, CmpOp, CondExpr, CondOperand, ControlFlow, DataflowGraph,
        IndexRange, LoopRegion, MapScope, Memlet, ParVerdict, ScalarExpr as E, State, Subset,
        SymExpr, Tasklet, Wcr,
    };

    fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Compile and open a session (what most of these walker tests need).
    fn mk_session(sdfg: &Sdfg, symbols: &HashMap<String, i64>) -> RuntimeResult<Session> {
        Ok(crate::program::compile(sdfg, symbols)?.session())
    }

    /// out[i] = in[i] * k for all i, as a parallel map.
    fn scale_sdfg(k: f64) -> Sdfg {
        let mut sdfg = Sdfg::new("scale");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut body = DataflowGraph::new();
        let r = body.add_access("X");
        let t = body.add_tasklet(Tasklet::new("scale", "o", E::input("x").mul(E::c(k))));
        let w = body.add_access("Y");
        body.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("X", vec![SymExpr::sym("i")]),
        );
        body.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        let rn = g.add_access("X");
        let m = g.add_map(MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
            body,
            parallel: true,
        });
        let wn = g.add_access("Y");
        g.add_edge(rn, None, m, None, Memlet::all("X"));
        g.add_edge(m, None, wn, None, Memlet::all("Y"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        sdfg
    }

    #[test]
    fn elementwise_map_executes() {
        let sdfg = scale_sdfg(3.0);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 5)])).unwrap();
        ex.set_input(
            "X",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]).unwrap(),
        )
        .unwrap();
        let report = ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[3.0, 6.0, 9.0, 12.0, 15.0]);
        assert_eq!(report.map_points, 5);
        assert_eq!(report.tasklet_invocations, 5);
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let sdfg = scale_sdfg(2.0);
        let n = (PARALLEL_MAP_THRESHOLD + 100) as i64;
        let x = dace_tensor::random::uniform(&[n as usize], 1);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", n)])).unwrap();
        ex.set_input("X", x.clone()).unwrap();
        ex.run().unwrap();
        let expected = x.scale(2.0);
        assert!(dace_tensor::allclose_default(
            ex.array("Y").unwrap(),
            &expected
        ));
    }

    /// A symbolic iteration domain whose point count overflows `usize` must
    /// surface as a typed error, not wrap in release or panic in debug.
    #[test]
    fn oversized_map_domain_is_a_typed_error() {
        let mut sdfg = Sdfg::new("huge");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut body = DataflowGraph::new();
        let r = body.add_access("X");
        let t = body.add_tasklet(Tasklet::new("id", "o", E::input("x")));
        let w = body.add_access("Y");
        body.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("X", vec![SymExpr::int(0)]),
        );
        body.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::int(0)]),
        );
        let mut g = DataflowGraph::new();
        let rn = g.add_access("X");
        let m = g.add_map(MapScope {
            params: vec!["i".into(), "j".into(), "k".into()],
            ranges: vec![
                (SymExpr::int(0), SymExpr::sym("N")),
                (SymExpr::int(0), SymExpr::sym("N")),
                (SymExpr::int(0), SymExpr::sym("N")),
            ],
            body,
            parallel: false,
        });
        let wn = g.add_access("Y");
        g.add_edge(rn, None, m, None, Memlet::all("X"));
        g.add_edge(m, None, wn, None, Memlet::all("Y"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);

        // 2^22 per dimension: the product 2^66 does not fit in a u64-sized
        // usize, and must error before any per-point work or allocation.
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 1 << 22)])).unwrap();
        ex.set_input("X", Tensor::from_vec(vec![1.0], &[1]).unwrap())
            .unwrap();
        let err = ex.run().unwrap_err();
        assert_eq!(
            err,
            RuntimeError::MapDomainOverflow {
                sizes: vec![1 << 22; 3],
            }
        );
    }

    /// The same elementwise-eligible map must produce identical results and
    /// identical counters on all three execution paths.
    #[test]
    fn all_paths_report_identical_counters() {
        let x = dace_tensor::random::uniform(&[64], 9);
        let mut reports = Vec::new();
        let mut outputs = Vec::new();
        for path in [MapPath::Auto, MapPath::Sequential, MapPath::Parallel] {
            let sdfg = scale_sdfg(1.5);
            let mut ex = mk_session(&sdfg, &symbols(&[("N", 64)])).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            let report = ex.run().unwrap();
            outputs.push(ex.array("Y").unwrap().data().to_vec());
            reports.push(report);
        }
        for r in &reports[1..] {
            assert_eq!(r.tasklet_invocations, reports[0].tasklet_invocations);
            assert_eq!(r.map_points, reports[0].map_points);
            assert_eq!(r.state_executions, reports[0].state_executions);
        }
        assert_eq!(reports[0].tasklet_invocations, 64);
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0], "paths disagree on results");
        }
    }

    /// The dependence verdict of the single map node in `sdfg`'s plan.
    fn map_verdict(sdfg: &Sdfg, syms: &HashMap<String, i64>) -> ParVerdict {
        let plan = crate::plan::compile_plan(sdfg, syms);
        for st in &plan.states {
            for n in &st.nodes {
                if let PlanNode::Map(m) = n {
                    return m.verdict.clone();
                }
            }
        }
        panic!("no map node in lowered plan");
    }

    /// A parallel map accumulating into a fixed element (`A[0] = A[0] + X[i]`
    /// without WCR) passed the old syntactic heuristic and raced across
    /// workers.  The dependence analyzer classifies it `Race` and forces the
    /// sequential path, so results are bit-identical however the path is
    /// requested.
    #[test]
    fn fixed_element_rmw_map_is_forced_sequential() {
        let build = || {
            let mut sdfg = Sdfg::new("rmw_scalar");
            sdfg.add_symbol("N");
            sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
                .unwrap();
            sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::int(1)]))
                .unwrap();
            let mut body = DataflowGraph::new();
            let rx = body.add_access("X");
            let ra = body.add_access("A");
            let t = body.add_tasklet(Tasklet::new("acc", "o", E::input("a").add(E::input("x"))));
            let wa = body.add_access("A");
            body.add_edge(
                rx,
                None,
                t,
                Some("x"),
                Memlet::element("X", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                ra,
                None,
                t,
                Some("a"),
                Memlet::element("A", vec![SymExpr::int(0)]),
            );
            body.add_edge(
                t,
                Some("o"),
                wa,
                None,
                Memlet::element("A", vec![SymExpr::int(0)]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access("X");
            let an = g.add_access("A");
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access("A");
            g.add_edge(rn, None, m, None, Memlet::all("X"));
            g.add_edge(an, None, m, None, Memlet::all("A"));
            g.add_edge(m, None, wn, None, Memlet::all("A"));
            let sid = sdfg.add_state(State {
                name: "s".into(),
                graph: g,
            });
            sdfg.cfg = ControlFlow::State(sid);
            sdfg
        };
        let n = 64usize;
        let syms = symbols(&[("N", n as i64)]);
        assert!(matches!(map_verdict(&build(), &syms), ParVerdict::Race(_)));

        let x = dace_tensor::random::uniform(&[n], 17);
        let mut outs = Vec::new();
        for path in [MapPath::Sequential, MapPath::Parallel] {
            let mut ex = mk_session(&build(), &syms).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            ex.set_input("A", Tensor::from_vec(vec![10.0], &[1]).unwrap())
                .unwrap();
            ex.run().unwrap();
            outs.push(ex.array("A").unwrap().data().to_vec());
        }
        assert_eq!(outs[0], outs[1], "forced-parallel RMW diverged");
        // And the value really is the sequential accumulation.
        let expected = x.data().iter().fold(10.0, |a, &v| a + v);
        assert_eq!(outs[0][0], expected);
    }

    /// A parallel map writing a whole-array (scalar) subset every iteration
    /// is likewise a race: last-iteration-wins only holds sequentially.
    #[test]
    fn whole_array_write_map_is_forced_sequential() {
        let build = || {
            let mut sdfg = Sdfg::new("scalar_overwrite");
            sdfg.add_symbol("N");
            sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
                .unwrap();
            sdfg.add_array("S", ArrayDesc::input(vec![SymExpr::int(1)]))
                .unwrap();
            let mut body = DataflowGraph::new();
            let rx = body.add_access("X");
            let t = body.add_tasklet(Tasklet::new("last", "o", E::input("x")));
            let ws = body.add_access("S");
            body.add_edge(
                rx,
                None,
                t,
                Some("x"),
                Memlet::element("X", vec![SymExpr::sym("i")]),
            );
            body.add_edge(t, Some("o"), ws, None, Memlet::all("S"));
            let mut g = DataflowGraph::new();
            let rn = g.add_access("X");
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access("S");
            g.add_edge(rn, None, m, None, Memlet::all("X"));
            g.add_edge(m, None, wn, None, Memlet::all("S"));
            let sid = sdfg.add_state(State {
                name: "s".into(),
                graph: g,
            });
            sdfg.cfg = ControlFlow::State(sid);
            sdfg
        };
        let n = 32usize;
        let syms = symbols(&[("N", n as i64)]);
        assert!(matches!(map_verdict(&build(), &syms), ParVerdict::Race(_)));
        let x = dace_tensor::random::uniform(&[n], 23);
        for path in [MapPath::Sequential, MapPath::Parallel] {
            let mut ex = mk_session(&build(), &syms).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            ex.run().unwrap();
            // Sequential semantics: the last iteration's value sticks.
            assert_eq!(ex.array("S").unwrap().data(), &[x.data()[n - 1]]);
        }
    }

    /// A strided injective write (`A[2*i+1]`) fed by a *ranged* read
    /// (`X[i:i+1]`) was kept sequential by the old heuristic (any non-element
    /// subset edge failed it).  The analyzer proves it `Safe`, so the map now
    /// takes the parallel path — with bit-identical results.
    #[test]
    fn strided_injective_map_is_newly_parallel() {
        let build = || {
            let mut sdfg = Sdfg::new("strided");
            sdfg.add_symbol("N");
            sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
                .unwrap();
            sdfg.add_array(
                "A",
                ArrayDesc::input(vec![SymExpr::sym("N").mul_int(2).add_int(1)]),
            )
            .unwrap();
            let i = SymExpr::sym("i");
            let mut body = DataflowGraph::new();
            let rx = body.add_access("X");
            let t = body.add_tasklet(Tasklet::new("sc", "o", E::input("x").mul(E::c(3.0))));
            let wa = body.add_access("A");
            body.add_edge(
                rx,
                None,
                t,
                Some("x"),
                Memlet {
                    data: "X".into(),
                    subset: Subset(vec![IndexRange::range(i.clone(), i.add_int(1))]),
                    wcr: None,
                },
            );
            body.add_edge(
                t,
                Some("o"),
                wa,
                None,
                Memlet::element("A", vec![i.mul_int(2).add_int(1)]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access("X");
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access("A");
            g.add_edge(rn, None, m, None, Memlet::all("X"));
            g.add_edge(m, None, wn, None, Memlet::all("A"));
            let sid = sdfg.add_state(State {
                name: "s".into(),
                graph: g,
            });
            sdfg.cfg = ControlFlow::State(sid);
            sdfg
        };
        let n = 100usize;
        let syms = symbols(&[("N", n as i64)]);
        assert_eq!(map_verdict(&build(), &syms), ParVerdict::Safe);

        let x = dace_tensor::random::uniform(&[n], 41);
        let mut outs = Vec::new();
        for path in [MapPath::Sequential, MapPath::Parallel] {
            let mut ex = mk_session(&build(), &syms).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            ex.set_input("A", Tensor::zeros(&[2 * n + 1])).unwrap();
            ex.run().unwrap();
            outs.push(ex.array("A").unwrap().data().to_vec());
        }
        assert_eq!(outs[0], outs[1], "parallel strided write diverged");
        for (k, &v) in outs[0].iter().enumerate() {
            if k % 2 == 1 {
                assert_eq!(v, x.data()[(k - 1) / 2] * 3.0);
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }

    /// A WCR-sum accumulation into one element is a `Reduction`: admitted to
    /// the parallel path and bit-identical to sequential accumulation (the
    /// buffered writes apply in flat iteration order).  Under
    /// `--features race-check` this also exercises the dynamic detector on
    /// an accumulate-only overlap, which it must accept.
    #[test]
    fn wcr_reduction_map_is_parallel_and_bit_identical() {
        let build = || {
            let mut sdfg = Sdfg::new("wcr_sum");
            sdfg.add_symbol("N");
            sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
                .unwrap();
            sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::int(1)]))
                .unwrap();
            let mut body = DataflowGraph::new();
            let rx = body.add_access("X");
            let t = body.add_tasklet(Tasklet::new("add", "o", E::input("x")));
            let wa = body.add_access("A");
            body.add_edge(
                rx,
                None,
                t,
                Some("x"),
                Memlet::element("X", vec![SymExpr::sym("i")]),
            );
            let mut wm = Memlet::element("A", vec![SymExpr::int(0)]);
            wm.wcr = Some(Wcr::Sum);
            body.add_edge(t, Some("o"), wa, None, wm);
            let mut g = DataflowGraph::new();
            let rn = g.add_access("X");
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access("A");
            g.add_edge(rn, None, m, None, Memlet::all("X"));
            g.add_edge(m, None, wn, None, Memlet::all("A"));
            let sid = sdfg.add_state(State {
                name: "s".into(),
                graph: g,
            });
            sdfg.cfg = ControlFlow::State(sid);
            sdfg
        };
        let n = 512usize;
        let syms = symbols(&[("N", n as i64)]);
        assert_eq!(map_verdict(&build(), &syms), ParVerdict::Reduction);
        let x = dace_tensor::random::uniform(&[n], 7);
        let mut outs = Vec::new();
        for path in [MapPath::Sequential, MapPath::Parallel] {
            let mut ex = mk_session(&build(), &syms).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            ex.set_input("A", Tensor::zeros(&[1])).unwrap();
            ex.run().unwrap();
            outs.push(ex.array("A").unwrap().data().to_vec());
        }
        assert_eq!(outs[0], outs[1], "WCR reduction diverged across paths");
    }

    /// A tasklet with two out-edges must count as ONE evaluation per index
    /// point on every path (the parallel path used to count buffered writes,
    /// i.e. two per point).
    #[test]
    fn multi_output_tasklet_counts_evaluations_not_writes() {
        let build = || {
            let mut sdfg = Sdfg::new("two_outs");
            sdfg.add_symbol("N");
            for n in ["X", "Y", "Z"] {
                sdfg.add_array(n, ArrayDesc::input(vec![SymExpr::sym("N")]))
                    .unwrap();
            }
            let mut body = DataflowGraph::new();
            let r = body.add_access("X");
            let t = body.add_tasklet(Tasklet::multi(
                "fan",
                vec![
                    ("a".into(), E::input("x").mul(E::c(2.0))),
                    ("b".into(), E::input("x").add(E::c(1.0))),
                ],
            ));
            let wy = body.add_access("Y");
            let wz = body.add_access("Z");
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element("X", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("a"),
                wy,
                None,
                Memlet::element("Y", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("b"),
                wz,
                None,
                Memlet::element("Z", vec![SymExpr::sym("i")]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access("X");
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access("Y");
            let zn = g.add_access("Z");
            g.add_edge(rn, None, m, None, Memlet::all("X"));
            g.add_edge(m, None, wn, None, Memlet::all("Y"));
            g.add_edge(m, None, zn, None, Memlet::all("Z"));
            let sid = sdfg.add_state(State {
                name: "s".into(),
                graph: g,
            });
            sdfg.cfg = ControlFlow::State(sid);
            sdfg
        };
        let x = dace_tensor::random::uniform(&[100], 4);
        let mut reports = Vec::new();
        let mut ys = Vec::new();
        for path in [MapPath::Sequential, MapPath::Parallel] {
            let sdfg = build();
            let mut ex = mk_session(&sdfg, &symbols(&[("N", 100)])).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            reports.push(ex.run().unwrap());
            ys.push((
                ex.array("Y").unwrap().data().to_vec(),
                ex.array("Z").unwrap().data().to_vec(),
            ));
        }
        assert_eq!(reports[0].tasklet_invocations, 100);
        assert_eq!(
            reports[1].tasklet_invocations, 100,
            "parallel path must count tasklet evaluations, not buffered writes"
        );
        assert_eq!(ys[0], ys[1]);
    }

    #[test]
    fn missing_symbol_is_error() {
        let sdfg = scale_sdfg(1.0);
        assert!(matches!(
            mk_session(&sdfg, &HashMap::new()),
            Err(RuntimeError::MissingSymbol(_))
        ));
    }

    #[test]
    fn missing_input_is_error() {
        let sdfg = scale_sdfg(1.0);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 4)])).unwrap();
        // X not provided: reading it must fail (Y would be zero-filled output).
        let err = ex.run();
        // X is non-transient so it is zero-initialised as an "output"; the
        // run succeeds and Y is all zeros.  This mirrors DaCe semantics where
        // missing inputs are undefined; we choose zero-fill.
        assert!(err.is_ok());
        assert_eq!(ex.array("Y").unwrap().sum(), 0.0);
    }

    #[test]
    fn wrong_shape_input_rejected() {
        let sdfg = scale_sdfg(1.0);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 4)])).unwrap();
        let bad = Tensor::zeros(&[5]);
        assert!(matches!(
            ex.set_input("X", bad),
            Err(RuntimeError::ShapeMismatch { .. })
        ));
    }

    /// Sequential loop with an element tasklet: out[0] = sum of i for i in 0..N.
    #[test]
    fn sequential_loop_with_accumulation() {
        let mut sdfg = Sdfg::new("loop");
        sdfg.add_symbol("N");
        sdfg.add_array("ACC", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("acc", "o", E::iter("i")));
        let w = g.add_access("ACC");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("ACC", vec![SymExpr::int(0)]).with_wcr_sum(),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "i".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("N"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::State(sid)),
        });
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 10)])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("ACC").unwrap().data()[0], 45.0);
    }

    #[test]
    fn reverse_loop_executes_in_descending_order() {
        // ACC = last i written (no WCR): with a reversed loop it ends at 0.
        let mut sdfg = Sdfg::new("revloop");
        sdfg.add_array("ACC", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("set", "o", E::iter("i")));
        let w = g.add_access("ACC");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("ACC", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "i".into(),
            start: SymExpr::int(9),
            end: SymExpr::int(-1),
            step: SymExpr::int(-1),
            body: Box::new(ControlFlow::State(sid)),
        });
        let mut ex = mk_session(&sdfg, &HashMap::new()).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("ACC").unwrap().data()[0], 0.0);
    }

    #[test]
    fn branch_takes_correct_arm() {
        // if P[0] > 0 { Y[0] = 1 } else { Y[0] = 2 }
        let mut sdfg = Sdfg::new("branch");
        sdfg.add_array("P", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mk = |v: f64| {
            let mut g = DataflowGraph::new();
            let t = g.add_tasklet(Tasklet::new("c", "o", E::c(v)));
            let w = g.add_access("Y");
            g.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element("Y", vec![SymExpr::int(0)]),
            );
            g
        };
        let then_id = sdfg.add_state(State {
            name: "t".into(),
            graph: mk(1.0),
        });
        let else_id = sdfg.add_state(State {
            name: "e".into(),
            graph: mk(2.0),
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            then_body: Box::new(ControlFlow::State(then_id)),
            else_body: Some(Box::new(ControlFlow::State(else_id))),
        });
        let mut ex = mk_session(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("P", Tensor::from_vec(vec![5.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 1.0);

        let mut ex = mk_session(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("P", Tensor::from_vec(vec![-5.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 2.0);
    }

    #[test]
    fn matmul_library_node() {
        let mut sdfg = Sdfg::new("mm");
        sdfg.add_symbol("N");
        for n in ["A", "B", "C"] {
            sdfg.add_array(
                n,
                ArrayDesc::input(vec![SymExpr::sym("N"), SymExpr::sym("N")]),
            )
            .unwrap();
        }
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let b = g.add_access("B");
        let mm = g.add_library(LibraryOp::MatMul);
        let c = g.add_access("C");
        g.add_edge(a, None, mm, Some("A"), Memlet::all("A"));
        g.add_edge(b, None, mm, Some("B"), Memlet::all("B"));
        g.add_edge(mm, Some("C"), c, None, Memlet::all("C"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 4)])).unwrap();
        let a_t = dace_tensor::random::uniform(&[4, 4], 3);
        let b_t = dace_tensor::random::uniform(&[4, 4], 4);
        ex.set_input("A", a_t.clone()).unwrap();
        ex.set_input("B", b_t.clone()).unwrap();
        let report = ex.run().unwrap();
        assert_eq!(report.library_calls, 1);
        assert!(dace_tensor::allclose_default(
            ex.array("C").unwrap(),
            &a_t.matmul(&b_t).unwrap()
        ));
    }

    #[test]
    fn sum_reduce_library_node() {
        let mut sdfg = Sdfg::new("sum");
        sdfg.add_symbol("N");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("S", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let r = g.add_library(LibraryOp::SumReduce { accumulate: false });
        let s = g.add_access("S");
        g.add_edge(a, None, r, Some("IN"), Memlet::all("A"));
        g.add_edge(r, Some("OUT"), s, None, Memlet::all("S"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 6)])).unwrap();
        ex.set_input("A", Tensor::ones(&[6])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("S").unwrap().data()[0], 6.0);
    }

    #[test]
    fn transient_allocation_and_free_hints() {
        // X -> T (transient) -> Y; free T after the state.
        let mut sdfg = Sdfg::new("transient");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("T", ArrayDesc::transient(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mk = |src: &str, dst: &str| {
            let mut body = DataflowGraph::new();
            let r = body.add_access(src);
            let t = body.add_tasklet(Tasklet::new("x2", "o", E::input("x").mul(E::c(2.0))));
            let w = body.add_access(dst);
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element(src, vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element(dst, vec![SymExpr::sym("i")]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access(src);
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access(dst);
            g.add_edge(rn, None, m, None, Memlet::all(src));
            g.add_edge(m, None, wn, None, Memlet::all(dst));
            g
        };
        let s0 = sdfg.add_state(State {
            name: "s0".into(),
            graph: mk("X", "T"),
        });
        let s1 = sdfg.add_state(State {
            name: "s1".into(),
            graph: mk("T", "Y"),
        });
        sdfg.cfg = ControlFlow::Sequence(vec![ControlFlow::State(s0), ControlFlow::State(s1)]);

        let mut hints = HashMap::new();
        hints.insert(s1, vec!["T".to_string()]);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 8)]))
            .unwrap()
            .with_free_hints(&hints);
        ex.set_input("X", Tensor::ones(&[8])).unwrap();
        let report = ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 4.0);
        // Peak memory saw X + Y + T = 3 * 8 * 8 bytes; at the end T is freed.
        assert_eq!(report.peak_bytes, 3 * 64);
        assert_eq!(report.final_bytes, 2 * 64);
        assert!(ex.array("T").is_none());
    }

    #[test]
    fn stored_flag_condition() {
        let mut sdfg = Sdfg::new("flag");
        sdfg.add_array("F", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("one", "o", E::c(1.0)));
        let w = g.add_access("Y");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::StoredFlag("F".into()),
            then_body: Box::new(ControlFlow::State(sid)),
            else_body: None,
        });
        let mut ex = mk_session(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("F", Tensor::from_vec(vec![0.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 0.0);
        let mut ex = mk_session(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("F", Tensor::from_vec(vec![1.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 1.0);
    }

    #[test]
    fn nested_loops_stencil_style() {
        // for t in 0..T: for i in 1..N-1: A[i] = (A[i-1] + A[i] + A[i+1]) / 3
        let mut sdfg = Sdfg::new("jacobi_inplace");
        sdfg.add_symbol("N");
        sdfg.add_symbol("T");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let r = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new(
            "avg",
            "o",
            E::input("l")
                .add(E::input("c"))
                .add(E::input("r"))
                .div(E::c(3.0)),
        ));
        let w = g.add_access("A");
        g.add_edge(
            r,
            None,
            t,
            Some("l"),
            Memlet::element("A", vec![SymExpr::sym("i").sub(&SymExpr::int(1))]),
        );
        g.add_edge(
            r,
            None,
            t,
            Some("c"),
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        g.add_edge(
            r,
            None,
            t,
            Some("r"),
            Memlet::element("A", vec![SymExpr::sym("i").add_int(1)]),
        );
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "ts".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("T"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::Loop(LoopRegion {
                var: "i".into(),
                start: SymExpr::int(1),
                end: SymExpr::sym("N").sub(&SymExpr::int(1)),
                step: SymExpr::int(1),
                body: Box::new(ControlFlow::State(sid)),
            })),
        });
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 6), ("T", 2)])).unwrap();
        ex.set_input(
            "A",
            Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[6]).unwrap(),
        )
        .unwrap();
        let report = ex.run().unwrap();
        assert_eq!(report.state_executions, 8);
        // Reference: straightforward Rust implementation.
        let mut a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        for _ in 0..2 {
            for i in 1..5 {
                a[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
            }
        }
        let got = ex.array("A").unwrap().data().to_vec();
        for (x, y) in got.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_bounds_index_is_reported() {
        let mut sdfg = Sdfg::new("oob");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::int(2)]))
            .unwrap();
        sdfg.add_array("B", ArrayDesc::input(vec![SymExpr::int(2)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let r = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("id", "o", E::input("x")));
        let w = g.add_access("B");
        g.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::int(5)]),
        );
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("B", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        // The static verifier catches the constant out-of-bounds index at
        // compile time now, before the executor ever runs.
        assert!(matches!(
            mk_session(&sdfg, &HashMap::new()),
            Err(RuntimeError::InvalidSdfg { .. })
        ));
    }

    /// A transient bound via `set_input` provides the initial contents (the
    /// legacy executor honoured such bindings) and must not be zero-filled
    /// by the per-run reset.
    #[test]
    fn provided_transient_keeps_its_contents() {
        let mut sdfg = Sdfg::new("seeded_transient");
        sdfg.add_symbol("N");
        sdfg.add_array("T", ArrayDesc::transient(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut body = DataflowGraph::new();
        let r = body.add_access("T");
        let t = body.add_tasklet(Tasklet::new("x2", "o", E::input("x").mul(E::c(2.0))));
        let w = body.add_access("Y");
        body.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("T", vec![SymExpr::sym("i")]),
        );
        body.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        let rn = g.add_access("T");
        let m = g.add_map(MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
            body,
            parallel: true,
        });
        let wn = g.add_access("Y");
        g.add_edge(rn, None, m, None, Memlet::all("T"));
        g.add_edge(m, None, wn, None, Memlet::all("Y"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);

        let mut ex = mk_session(&sdfg, &symbols(&[("N", 3)])).unwrap();
        ex.set_input("T", Tensor::full(&[3], 3.0)).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[6.0, 6.0, 6.0]);
        // The binding persists across runs; clearing it restores lazy zeros.
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[6.0, 6.0, 6.0]);
        ex.clear_bindings();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[0.0, 0.0, 0.0]);
    }

    /// Free hints naming non-transient arrays are ignored: releasing a
    /// bound input would silently zero it on the next run.
    #[test]
    fn free_hints_ignore_non_transient_arrays() {
        let sdfg = scale_sdfg(2.0);
        let mut hints = HashMap::new();
        hints.insert(0usize, vec!["X".to_string()]);
        let mut ex = mk_session(&sdfg, &symbols(&[("N", 4)]))
            .unwrap()
            .with_free_hints(&hints);
        ex.set_input("X", Tensor::full(&[4], 1.5)).unwrap();
        ex.run().unwrap();
        assert!(ex.array("X").is_some(), "input must survive the free hint");
        assert_eq!(ex.array("Y").unwrap().data(), &[3.0, 3.0, 3.0, 3.0]);
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    /// A tasklet with two assignments to the same output connector must
    /// write the LAST one (the map-based interpreter's insertion order).
    #[test]
    fn duplicate_output_connector_last_assignment_wins() {
        let mut sdfg = Sdfg::new("dup_conn");
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::multi(
            "dup",
            vec![("o".into(), E::c(1.0)), ("o".into(), E::c(2.0))],
        ));
        let w = g.add_access("Y");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = mk_session(&sdfg, &HashMap::new()).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 2.0);
    }

    /// The deprecated `Executor::new` shim must behave exactly like
    /// `compile(...).session()` (it wraps one).
    #[test]
    #[allow(deprecated)]
    fn deprecated_executor_shim_matches_session() {
        let sdfg = scale_sdfg(3.0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]).unwrap();

        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 5)])).unwrap();
        ex.set_input("X", x.clone()).unwrap();
        let shim_report = ex.run().unwrap();
        let shim_y = ex.array("Y").unwrap().data().to_vec();
        assert_eq!(ex.symbols().get("N"), Some(&5));
        let arrays = ex.into_arrays();
        assert_eq!(arrays["Y"].data(), shim_y.as_slice());

        let mut session = mk_session(&sdfg, &symbols(&[("N", 5)])).unwrap();
        session.set_input("X", x).unwrap();
        let report = session.run().unwrap();
        assert_eq!(session.array("Y").unwrap().data(), shim_y.as_slice());
        assert_eq!(report.tasklet_invocations, shim_report.tasklet_invocations);
        assert_eq!(report.peak_bytes, shim_report.peak_bytes);
        assert!(matches!(
            Executor::new(&sdfg, &HashMap::new()),
            Err(RuntimeError::MissingSymbol(_))
        ));
    }
}
