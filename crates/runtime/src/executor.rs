//! The SDFG interpreter, driven by a compiled execution plan.
//!
//! This executor stands in for DaCe's C/OpenMP code generator plus CPU
//! runtime.  Construction lowers the SDFG once into an
//! [`crate::plan::ExecPlan`] (interned array/symbol ids, precomputed
//! topological orders, pre-classified memlet subsets, register-compiled
//! tasklet expressions); `run` then walks the plan, so the hot loops
//! (sequential maps, the element-wise fast path, and the snapshot-based
//! parallel path) touch no string keys and perform no per-iteration clones
//! or allocations.  The parallel path fans out over a persistent rayon
//! worker pool with one register file per chunk.
//!
//! Memory is tracked with [`crate::memory::MemoryTracker`]: non-transient
//! inputs are counted at start, transients are allocated lazily at first
//! touch, and optional per-state *free hints* (produced by the AD engine for
//! recomputation temporaries and consumed tape entries) release containers
//! early so that peak-memory measurements reflect store/recompute choices.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use dace_sdfg::{CondExpr, CondOperand, LibraryOp, Sdfg, Subset};
use dace_tensor::Tensor;

use crate::error::{RuntimeError, RuntimeResult};
use crate::memory::MemoryTracker;
use crate::plan::{
    compile_plan, CIdx, ExecPlan, Layout, PlanAccess, PlanCf, PlanCond, PlanElementwise, PlanGraph,
    PlanLibrary, PlanMap, PlanNode, PlanOperand, PlanTasklet, SymFile,
};

/// Execution statistics and instrumentation results.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Wall-clock time of the `run` call.
    pub elapsed: Duration,
    /// Peak bytes of live containers during execution.
    pub peak_bytes: usize,
    /// Bytes live at the end of execution.
    pub final_bytes: usize,
    /// Number of tasklet evaluations.
    pub tasklet_invocations: u64,
    /// Number of map body executions (index points).
    pub map_points: u64,
    /// Number of state executions.
    pub state_executions: u64,
    /// Number of library-node expansions executed.
    pub library_calls: u64,
}

/// Minimum number of map points before the parallel (rayon) path is used.
const PARALLEL_MAP_THRESHOLD: usize = 8192;

/// Map execution path selection.  `Auto` (the default) picks the fastest
/// applicable path; the forced variants exist so tests and instrumentation
/// can compare the element-wise, sequential and parallel paths on the same
/// map and assert identical results and counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MapPath {
    /// Element-wise fast path if eligible, then parallel above the point
    /// threshold, otherwise sequential.
    #[default]
    Auto,
    /// Always the general sequential loop.
    Sequential,
    /// The snapshot-based parallel path whenever the body permits it
    /// (ignoring the point threshold); sequential otherwise.
    Parallel,
}

/// Scratch buffers reused across tasklet evaluations: the expression slot
/// array, the floating-point and integer register files, and the per-tasklet
/// output values.  One `Scratch` lives per executor; the parallel map path
/// creates one per chunk.
#[derive(Default)]
struct Scratch {
    slots: Vec<f64>,
    f_regs: Vec<f64>,
    i_regs: Vec<i64>,
    outs: Vec<f64>,
}

/// A buffered element write produced by the parallel map path.
struct BufferedWrite {
    array: u32,
    flat: usize,
    value: f64,
    accumulate: bool,
}

/// Mutable execution state, separated from the immutable plan so the
/// recursive walkers can borrow both disjointly.
struct RunState {
    slab: Vec<Option<Tensor>>,
    syms: SymFile,
    tracker: MemoryTracker,
    report: ExecutionReport,
    free_hints: Vec<Vec<u32>>,
    scratch: Scratch,
    path: MapPath,
}

/// The SDFG interpreter.
pub struct Executor {
    symbols: HashMap<String, i64>,
    plan: ExecPlan,
    st: RunState,
}

impl Executor {
    /// Create an executor for an SDFG with concrete symbol values.  The SDFG
    /// is lowered into an execution plan here, once; `run` only walks it.
    pub fn new(sdfg: &Sdfg, symbols: &HashMap<String, i64>) -> RuntimeResult<Self> {
        for s in &sdfg.symbols {
            if !symbols.contains_key(s) {
                return Err(RuntimeError::MissingSymbol(s.clone()));
            }
        }
        let plan = compile_plan(sdfg, symbols);
        let n_arrays = plan.arrays.names.len();
        let n_states = plan.states.len();
        let syms = plan.init_syms.clone();
        Ok(Executor {
            symbols: symbols.clone(),
            st: RunState {
                slab: vec![None; n_arrays],
                syms,
                tracker: MemoryTracker::new(),
                report: ExecutionReport::default(),
                free_hints: vec![Vec::new(); n_states],
                scratch: Scratch::default(),
                path: MapPath::Auto,
            },
            plan,
        })
    }

    /// Attach per-state free hints: after executing state `id`, the listed
    /// transient containers are deallocated (used by the AD engine to bound
    /// the footprint of recomputation blocks).
    pub fn with_free_hints(mut self, hints: HashMap<usize, Vec<String>>) -> Self {
        let mut resolved = vec![Vec::new(); self.plan.states.len()];
        for (state, names) in hints {
            if state < resolved.len() {
                for name in names {
                    if let Some(id) = self.plan.arrays.id(&name) {
                        resolved[state].push(id);
                    }
                }
            }
        }
        self.st.free_hints = resolved;
        self
    }

    /// Force a map execution path (testing/instrumentation knob).
    pub fn force_map_path(&mut self, path: MapPath) {
        self.st.path = path;
    }

    /// Provide an input (non-transient) array.
    pub fn set_input(&mut self, name: &str, tensor: Tensor) -> RuntimeResult<()> {
        let id = self
            .plan
            .arrays
            .id(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?;
        let layout = self.plan.arrays.layout(id)?;
        if layout.dims.as_slice() != tensor.shape() {
            return Err(RuntimeError::ShapeMismatch {
                array: name.to_string(),
                expected: layout.dims.clone(),
                got: tensor.shape().to_vec(),
            });
        }
        self.st.slab[id as usize] = Some(tensor);
        Ok(())
    }

    /// Access an array after (or before) execution.
    pub fn array(&self, name: &str) -> Option<&Tensor> {
        self.plan
            .arrays
            .id(name)
            .and_then(|id| self.st.slab[id as usize].as_ref())
    }

    /// Take ownership of all arrays (inputs, outputs and surviving transients).
    pub fn into_arrays(self) -> HashMap<String, Tensor> {
        self.plan
            .arrays
            .names
            .iter()
            .zip(self.st.slab)
            .filter_map(|(name, t)| t.map(|t| (name.clone(), t)))
            .collect()
    }

    /// The memory tracker (for inspection in tests and benchmarks).
    pub fn tracker(&self) -> &MemoryTracker {
        &self.st.tracker
    }

    /// Concrete symbol bindings used by this executor.
    pub fn symbols(&self) -> &HashMap<String, i64> {
        &self.symbols
    }

    /// Execute the SDFG.
    pub fn run(&mut self) -> RuntimeResult<ExecutionReport> {
        let start = Instant::now();
        self.st.report = ExecutionReport::default();

        // Count and materialise non-transient containers.
        for id in 0..self.plan.arrays.names.len() {
            if !self.plan.arrays.transient[id] {
                let layout = self.plan.arrays.layout(id as u32)?;
                if self.st.slab[id].is_none() {
                    // Outputs that were not provided start as zeros.
                    self.st.slab[id] = Some(Tensor::zeros(&layout.dims));
                }
                let bytes = layout.bytes;
                self.st.tracker.alloc(&self.plan.arrays.names[id], bytes);
            }
        }

        self.st.syms = self.plan.init_syms.clone();
        self.st.exec_cfg(&self.plan, &self.plan.cfg)?;

        self.st.report.elapsed = start.elapsed();
        self.st.report.peak_bytes = self.st.tracker.peak_bytes();
        self.st.report.final_bytes = self.st.tracker.current_bytes();
        Ok(self.st.report.clone())
    }

    /// Evaluate a control-flow condition against explicit string bindings.
    ///
    /// Retained for source compatibility with pre-plan callers of the public
    /// `Executor` API; internal execution never calls this — it evaluates the
    /// lowered [`PlanCond`] over the symbol file instead, so changes to
    /// condition semantics belong in `eval_plan_cond` first.
    pub fn eval_cond(
        &mut self,
        cond: &CondExpr,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<bool> {
        match cond {
            CondExpr::Cmp { lhs, op, rhs } => {
                let a = self.eval_cond_operand(lhs, bindings)?;
                let b = self.eval_cond_operand(rhs, bindings)?;
                Ok(op.apply(a, b))
            }
            CondExpr::Not(inner) => Ok(!self.eval_cond(inner, bindings)?),
            CondExpr::StoredFlag(name) => {
                self.ensure_allocated_by_name(name)?;
                let t = self
                    .array(name)
                    .ok_or_else(|| RuntimeError::UnknownArray(name.clone()))?;
                Ok(t.data().first().copied().unwrap_or(0.0) != 0.0)
            }
        }
    }

    fn eval_cond_operand(
        &mut self,
        op: &CondOperand,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<f64> {
        match op {
            CondOperand::Const(v) => Ok(*v),
            CondOperand::Sym(e) => Ok(e.eval(bindings)? as f64),
            CondOperand::Element { array, index } => {
                self.ensure_allocated_by_name(array)?;
                let idx: Vec<i64> = index
                    .iter()
                    .map(|e| e.eval(bindings))
                    .collect::<Result<_, _>>()?;
                let t = self
                    .array(array)
                    .ok_or_else(|| RuntimeError::UnknownArray(array.clone()))?;
                let uidx = to_unsigned_index(array, &idx)?;
                t.at(&uidx).map_err(|_| RuntimeError::BadIndex {
                    array: array.clone(),
                    index: idx,
                })
            }
        }
    }

    fn ensure_allocated_by_name(&mut self, name: &str) -> RuntimeResult<()> {
        let id = self
            .plan
            .arrays
            .id(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?;
        self.st.ensure_allocated(&self.plan, id)
    }
}

impl RunState {
    fn ensure_allocated(&mut self, plan: &ExecPlan, id: u32) -> RuntimeResult<()> {
        if self.slab[id as usize].is_some() {
            return Ok(());
        }
        if !plan.arrays.transient[id as usize] {
            return Err(RuntimeError::MissingInput(
                plan.arrays.names[id as usize].clone(),
            ));
        }
        let layout = plan.arrays.layout(id)?;
        self.slab[id as usize] = Some(Tensor::zeros(&layout.dims));
        self.tracker
            .alloc(&plan.arrays.names[id as usize], layout.bytes);
        Ok(())
    }

    #[inline]
    fn idx(&mut self, plan: &ExecPlan, c: &CIdx) -> RuntimeResult<i64> {
        c.eval(&self.syms, &plan.syms.names, &mut self.scratch.i_regs)
    }

    fn exec_cfg(&mut self, plan: &ExecPlan, cf: &PlanCf) -> RuntimeResult<()> {
        match cf {
            PlanCf::State(id) => self.exec_state(plan, *id),
            PlanCf::Seq(children) => {
                for c in children {
                    self.exec_cfg(plan, c)?;
                }
                Ok(())
            }
            PlanCf::Loop {
                var,
                start,
                end,
                step,
                body,
            } => {
                let start = self.idx(plan, start)?;
                let end = self.idx(plan, end)?;
                let step = self.idx(plan, step)?;
                if step == 0 {
                    return Err(RuntimeError::Malformed(format!(
                        "loop `{}` has zero step",
                        plan.syms.names[*var as usize]
                    )));
                }
                let v = *var as usize;
                let previous = (self.syms.vals[v], self.syms.defined[v]);
                self.syms.defined[v] = true;
                let mut i = start;
                while (step > 0 && i < end) || (step < 0 && i > end) {
                    self.syms.vals[v] = i;
                    self.exec_cfg(plan, body)?;
                    i += step;
                }
                // Restore any outer binding of the same iterator name.
                self.syms.vals[v] = previous.0;
                self.syms.defined[v] = previous.1;
                Ok(())
            }
            PlanCf::Branch {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval_plan_cond(plan, cond)? {
                    self.exec_cfg(plan, then_body)
                } else if let Some(e) = else_body {
                    self.exec_cfg(plan, e)
                } else {
                    Ok(())
                }
            }
        }
    }

    fn eval_plan_cond(&mut self, plan: &ExecPlan, cond: &PlanCond) -> RuntimeResult<bool> {
        match cond {
            PlanCond::Cmp { lhs, op, rhs } => {
                let a = self.eval_plan_operand(plan, lhs)?;
                let b = self.eval_plan_operand(plan, rhs)?;
                Ok(op.apply(a, b))
            }
            PlanCond::Not(inner) => Ok(!self.eval_plan_cond(plan, inner)?),
            PlanCond::StoredFlag(a) => {
                self.ensure_allocated(plan, *a)?;
                let t = self.slab[*a as usize].as_ref().expect("just allocated");
                Ok(t.data().first().copied().unwrap_or(0.0) != 0.0)
            }
            PlanCond::Fail(e) => Err(e.clone()),
        }
    }

    fn eval_plan_operand(&mut self, plan: &ExecPlan, op: &PlanOperand) -> RuntimeResult<f64> {
        match op {
            PlanOperand::Const(v) => Ok(*v),
            PlanOperand::Sym(c) => Ok(self.idx(plan, c)? as f64),
            PlanOperand::Element { array, index } => {
                self.ensure_allocated(plan, *array)?;
                let RunState {
                    slab,
                    syms,
                    scratch,
                    ..
                } = self;
                let layout = plan.arrays.layout(*array)?;
                let flat = flat_offset(plan, syms, &mut scratch.i_regs, *array, index, layout)?;
                Ok(slab[*array as usize]
                    .as_ref()
                    .expect("just allocated")
                    .data()[flat])
            }
        }
    }

    fn exec_state(&mut self, plan: &ExecPlan, id: usize) -> RuntimeResult<()> {
        self.report.state_executions += 1;
        self.exec_graph(plan, &plan.states[id])?;
        for k in 0..self.free_hints[id].len() {
            let aid = self.free_hints[id][k] as usize;
            self.tracker.free(&plan.arrays.names[aid]);
            self.slab[aid] = None;
        }
        Ok(())
    }

    fn exec_graph(&mut self, plan: &ExecPlan, g: &PlanGraph) -> RuntimeResult<()> {
        if let Some(e) = &g.fail {
            return Err(e.clone());
        }
        for &n in &g.order {
            match &g.nodes[n] {
                PlanNode::Access(a) => {
                    // Allocate when the container is written (has in-edges) or
                    // read (must already exist for non-transients).
                    self.ensure_allocated(plan, *a)?;
                }
                PlanNode::Tasklet(t) => self.exec_tasklet(plan, t)?,
                PlanNode::Map(m) => self.exec_map(plan, m)?,
                PlanNode::Library(l) => self.exec_library(plan, l)?,
                PlanNode::Fail(e) => return Err(e.clone()),
            }
        }
        Ok(())
    }

    fn exec_tasklet(&mut self, plan: &ExecPlan, t: &PlanTasklet) -> RuntimeResult<()> {
        self.report.tasklet_invocations += 1;
        {
            let RunState {
                slab,
                syms,
                scratch,
                ..
            } = self;
            scratch.slots.clear();
            scratch.slots.resize(t.n_slots, 0.0);
            for r in &t.reads {
                let v = read_access(plan, slab, syms, &mut scratch.i_regs, r.array, &r.access)?;
                scratch.slots[r.slot as usize] = v;
            }
            load_iters(plan, syms, &mut scratch.slots, &t.iter_loads)?;
            scratch.outs.clear();
            for e in &t.exprs {
                let v = e.eval(&scratch.slots, &mut scratch.f_regs);
                scratch.outs.push(v);
            }
        }
        for w in &t.writes {
            let value = self.scratch.outs[w.expr as usize];
            self.write_access(plan, w.array, &w.access, value, w.accumulate)?;
        }
        Ok(())
    }

    fn write_access(
        &mut self,
        plan: &ExecPlan,
        array: u32,
        access: &PlanAccess,
        value: f64,
        accumulate: bool,
    ) -> RuntimeResult<()> {
        self.ensure_allocated(plan, array)?;
        let RunState {
            slab,
            syms,
            scratch,
            ..
        } = self;
        let flat = match access {
            PlanAccess::All => {
                let t = slab[array as usize].as_ref().expect("just allocated");
                if t.len() != 1 {
                    return Err(RuntimeError::Malformed(format!(
                        "whole-array memlet of `{}` used as a scalar write",
                        plan.arrays.names[array as usize]
                    )));
                }
                0
            }
            PlanAccess::Element(idx) => {
                let layout = plan.arrays.layout(array)?;
                flat_offset(plan, syms, &mut scratch.i_regs, array, idx, layout)?
            }
        };
        let t = slab[array as usize].as_mut().expect("just allocated");
        let target = &mut t.data_mut()[flat];
        if accumulate {
            *target += value;
        } else {
            *target = value;
        }
        Ok(())
    }

    fn exec_map(&mut self, plan: &ExecPlan, m: &PlanMap) -> RuntimeResult<()> {
        // Evaluate the iteration domain.
        let ndim = m.ranges.len();
        let mut lows = Vec::with_capacity(ndim);
        let mut sizes = Vec::with_capacity(ndim);
        for (s, e) in &m.ranges {
            let lo = self.idx(plan, s)?;
            let hi = self.idx(plan, e)?;
            lows.push(lo);
            sizes.push((hi - lo).max(0) as usize);
        }
        let total: usize = sizes.iter().product();
        if total == 0 {
            return Ok(());
        }
        self.report.map_points += total as u64;

        // Pre-allocate every container referenced by the body so that the
        // parallel path can operate on an immutable snapshot.
        for &a in &m.referenced {
            self.ensure_allocated(plan, a)?;
        }

        // Fast path: a pure element-wise map (every memlet indexes exactly by
        // the map parameters, in order) evaluates as a flat vectorized loop.
        // This models the vectorized code DaCe generates for such maps and is
        // what keeps whole-array statements competitive with the baseline's
        // whole-array kernels.
        if self.path == MapPath::Auto {
            if let Some(ew) = &m.elementwise {
                if lows.iter().all(|&l| l == 0) && self.exec_map_elementwise(ew, &sizes, total)? {
                    return Ok(());
                }
            }
        }

        let use_parallel = match self.path {
            MapPath::Auto => m.parallel && total >= PARALLEL_MAP_THRESHOLD && m.parallel_safe,
            MapPath::Parallel => m.parallel_safe,
            MapPath::Sequential => false,
        };
        if use_parallel {
            self.exec_map_parallel(plan, m, &lows, &sizes, total)
        } else {
            self.exec_map_sequential(plan, m, &lows, &sizes, total)
        }
    }

    /// The element-wise flat-loop fast path.  Returns `Ok(false)` when a
    /// runtime condition (array shapes, iterator availability) rules it out
    /// and the caller should fall back to the general path.
    ///
    /// Every identity-indexed array must have exactly the iteration domain as
    /// its shape — a length match alone is not enough, because an array whose
    /// dimensions are a permutation of the map sizes would be traversed with
    /// the wrong strides by the flat loop.
    fn exec_map_elementwise(
        &mut self,
        ew: &PlanElementwise,
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<bool> {
        let shape_matches = |t: Option<&Tensor>| -> bool {
            match t {
                Some(t) => t.len() == total && t.shape() == sizes,
                None => false,
            }
        };
        if !shape_matches(self.slab[ew.out_array as usize].as_ref()) {
            return Ok(false);
        }
        for &(_, a) in &ew.reads {
            if !shape_matches(self.slab[a as usize].as_ref()) {
                return Ok(false);
            }
        }
        for &(_, sym) in &ew.iter_loads {
            if !self.syms.defined[sym as usize] {
                return Ok(false);
            }
        }
        let RunState {
            slab,
            syms,
            scratch,
            report,
            ..
        } = self;
        scratch.slots.clear();
        scratch.slots.resize(ew.n_slots, 0.0);
        // Outer iterators are loop-invariant: promote them once.
        for &(slot, sym) in &ew.iter_loads {
            scratch.slots[slot as usize] = syms.vals[sym as usize] as f64;
        }
        // Snapshot inputs that alias the output, then take the output tensor
        // out of the slab so the remaining inputs can be borrowed directly.
        let aliased: Vec<Option<Vec<f64>>> = ew
            .reads
            .iter()
            .map(|&(_, a)| {
                if a == ew.out_array {
                    Some(
                        slab[a as usize]
                            .as_ref()
                            .expect("checked above")
                            .data()
                            .to_vec(),
                    )
                } else {
                    None
                }
            })
            .collect();
        let mut out_t = slab[ew.out_array as usize].take().expect("checked above");
        {
            let srcs: Vec<(u32, &[f64])> = ew
                .reads
                .iter()
                .zip(&aliased)
                .map(|(&(slot, a), owned)| match owned {
                    Some(v) => (slot, v.as_slice()),
                    None => (
                        slot,
                        slab[a as usize].as_ref().expect("checked above").data(),
                    ),
                })
                .collect();
            let out_data = out_t.data_mut();
            if ew.accumulate {
                for (flat, out) in out_data.iter_mut().enumerate().take(total) {
                    for &(slot, data) in &srcs {
                        scratch.slots[slot as usize] = data[flat];
                    }
                    *out += ew.expr.eval(&scratch.slots, &mut scratch.f_regs);
                }
            } else {
                for (flat, out) in out_data.iter_mut().enumerate().take(total) {
                    for &(slot, data) in &srcs {
                        scratch.slots[slot as usize] = data[flat];
                    }
                    *out = ew.expr.eval(&scratch.slots, &mut scratch.f_regs);
                }
            }
        }
        slab[ew.out_array as usize] = Some(out_t);
        report.tasklet_invocations += total as u64;
        Ok(true)
    }

    fn exec_map_sequential(
        &mut self,
        plan: &ExecPlan,
        m: &PlanMap,
        lows: &[i64],
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<()> {
        let ndim = m.params.len();
        let saved: Vec<(i64, bool)> = m
            .params
            .iter()
            .map(|&p| (self.syms.vals[p as usize], self.syms.defined[p as usize]))
            .collect();
        for (d, &p) in m.params.iter().enumerate() {
            self.syms.set(p, lows[d]);
        }
        // Odometer over the index domain (last dimension fastest), matching
        // the row-major flat order of the old unflatten-per-point loop but
        // without any per-point allocation.
        let mut counters = vec![0usize; ndim];
        let mut remaining = total;
        loop {
            self.exec_graph(plan, &m.body)?;
            remaining -= 1;
            if remaining == 0 {
                break;
            }
            for d in (0..ndim).rev() {
                counters[d] += 1;
                if counters[d] < sizes[d] {
                    self.syms.vals[m.params[d] as usize] = lows[d] + counters[d] as i64;
                    break;
                }
                counters[d] = 0;
                self.syms.vals[m.params[d] as usize] = lows[d];
            }
        }
        for (&p, &(v, def)) in m.params.iter().zip(&saved) {
            self.syms.vals[p as usize] = v;
            self.syms.defined[p as usize] = def;
        }
        Ok(())
    }

    /// Parallel map execution: every index point is evaluated against an
    /// immutable snapshot of the arrays, producing buffered writes that are
    /// applied afterwards.  This mirrors the data-race-free semantics of a
    /// DaCe map (each iteration writes a disjoint subset).  Work is split
    /// into one contiguous chunk per pool thread; each chunk reuses its own
    /// symbol file and register scratch across its points.
    fn exec_map_parallel(
        &mut self,
        plan: &ExecPlan,
        m: &PlanMap,
        lows: &[i64],
        sizes: &[usize],
        total: usize,
    ) -> RuntimeResult<()> {
        if let Some(e) = &m.body.fail {
            return Err(e.clone());
        }
        let n_chunks = rayon::current_num_threads().max(1).min(total);
        let chunk = total.div_ceil(n_chunks);
        let slab = &self.slab;
        let base_syms = &self.syms;
        let results: Result<Vec<Vec<BufferedWrite>>, RuntimeError> = (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(total);
                if lo >= hi {
                    return Ok(Vec::new());
                }
                let mut syms = base_syms.clone();
                let mut scratch = Scratch::default();
                let mut writes: Vec<BufferedWrite> = Vec::new();
                let mut counters = unflatten(lo, sizes);
                for (d, &p) in m.params.iter().enumerate() {
                    syms.set(p, lows[d] + counters[d] as i64);
                }
                let mut remaining = hi - lo;
                loop {
                    eval_body_readonly(plan, &m.body, slab, &syms, &mut scratch, &mut writes)?;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                    for d in (0..sizes.len()).rev() {
                        counters[d] += 1;
                        if counters[d] < sizes[d] {
                            syms.vals[m.params[d] as usize] = lows[d] + counters[d] as i64;
                            break;
                        }
                        counters[d] = 0;
                        syms.vals[m.params[d] as usize] = lows[d];
                    }
                }
                Ok(writes)
            })
            .collect();
        for chunk_writes in results? {
            for w in chunk_writes {
                let t = self.slab[w.array as usize].as_mut().ok_or_else(|| {
                    RuntimeError::UnknownArray(plan.arrays.names[w.array as usize].clone())
                })?;
                let target = &mut t.data_mut()[w.flat];
                if w.accumulate {
                    *target += w.value;
                } else {
                    *target = w.value;
                }
            }
        }
        // Count tasklet *evaluations* (not buffered writes): each index point
        // evaluates every tasklet of the body exactly once.
        self.report.tasklet_invocations += total as u64 * m.body_tasklets;
        Ok(())
    }

    fn exec_library(&mut self, plan: &ExecPlan, l: &PlanLibrary) -> RuntimeResult<()> {
        self.report.library_calls += 1;
        for &(_, a) in l.inputs.iter() {
            self.ensure_allocated(plan, a)?;
        }
        // Compute outputs by connector against immutable slab borrows (the
        // old interpreter cloned every input tensor first).
        let outputs: Vec<(&'static str, Tensor)> = {
            let slab = &self.slab;
            let get = |conn: &str| -> RuntimeResult<&Tensor> {
                for (c, a) in &l.inputs {
                    if c == conn {
                        return slab[*a as usize].as_ref().ok_or_else(|| {
                            RuntimeError::UnknownArray(plan.arrays.names[*a as usize].clone())
                        });
                    }
                }
                Err(RuntimeError::Malformed(format!(
                    "library node missing input `{conn}`"
                )))
            };
            match &l.op {
                LibraryOp::MatMul => vec![("C", get("A")?.matmul(get("B")?)?)],
                LibraryOp::MatVec => vec![("y", get("A")?.matvec(get("x")?)?)],
                LibraryOp::Transpose => vec![("B", get("A")?.transpose()?)],
                LibraryOp::SumReduce { .. } => {
                    let s = get("IN")?.sum();
                    vec![("OUT", Tensor::from_vec(vec![s], &[1])?)]
                }
                LibraryOp::Copy => vec![("B", get("A")?.clone())],
            }
        };
        // Write outputs.
        for (conn, array, wcr) in &l.outputs {
            let value = outputs
                .iter()
                .find(|(c, _)| c == conn)
                .map(|(_, t)| t)
                .ok_or_else(|| {
                    RuntimeError::Malformed(format!("library node has no output `{conn}`"))
                })?;
            self.ensure_allocated(plan, *array)?;
            let accumulate = *wcr || matches!(l.op, LibraryOp::SumReduce { accumulate: true });
            let dst = self.slab[*array as usize].as_mut().expect("just allocated");
            if dst.shape() != value.shape() {
                return Err(RuntimeError::ShapeMismatch {
                    array: plan.arrays.names[*array as usize].clone(),
                    expected: dst.shape().to_vec(),
                    got: value.shape().to_vec(),
                });
            }
            if accumulate {
                dst.add_assign(value)?;
            } else {
                *dst = value.clone();
            }
        }
        Ok(())
    }
}

/// Promote iteration-symbol values into expression slots, with the same
/// missing-symbol error the tree-walking evaluator produced.
#[inline]
fn load_iters(
    plan: &ExecPlan,
    syms: &SymFile,
    slots: &mut [f64],
    iter_loads: &[(u32, u32)],
) -> RuntimeResult<()> {
    for &(slot, sym) in iter_loads {
        if !syms.defined[sym as usize] {
            return Err(RuntimeError::Tasklet(format!(
                "missing iteration symbol `{}`",
                plan.syms.names[sym as usize]
            )));
        }
        slots[slot as usize] = syms.vals[sym as usize] as f64;
    }
    Ok(())
}

/// Read the scalar selected by a pre-classified access.
#[inline]
fn read_access(
    plan: &ExecPlan,
    slab: &[Option<Tensor>],
    syms: &SymFile,
    i_regs: &mut Vec<i64>,
    array: u32,
    access: &PlanAccess,
) -> RuntimeResult<f64> {
    let t = slab[array as usize]
        .as_ref()
        .ok_or_else(|| RuntimeError::UnknownArray(plan.arrays.names[array as usize].clone()))?;
    match access {
        PlanAccess::All => {
            if t.len() == 1 {
                Ok(t.data()[0])
            } else {
                Err(RuntimeError::Malformed(format!(
                    "whole-array memlet of `{}` used as a scalar read",
                    plan.arrays.names[array as usize]
                )))
            }
        }
        PlanAccess::Element(idx) => {
            let layout = plan.arrays.layout(array)?;
            let flat = flat_offset(plan, syms, i_regs, array, idx, layout)?;
            Ok(t.data()[flat])
        }
    }
}

/// Maximum rank handled without a heap allocation in the offset computation.
const MAX_INLINE_RANK: usize = 8;

/// Compute the flat row-major offset of a compiled element subset, with the
/// per-dimension bounds checks the tensor indexing used to perform.
#[inline]
fn flat_offset(
    plan: &ExecPlan,
    syms: &SymFile,
    i_regs: &mut Vec<i64>,
    array: u32,
    idx: &[CIdx],
    layout: &Layout,
) -> RuntimeResult<usize> {
    let names = &plan.syms.names;
    let rank = idx.len();
    let mut inline_buf = [0i64; MAX_INLINE_RANK];
    let mut heap_buf;
    let vals: &mut [i64] = if rank <= MAX_INLINE_RANK {
        &mut inline_buf[..rank]
    } else {
        heap_buf = vec![0i64; rank];
        &mut heap_buf
    };
    for (d, c) in idx.iter().enumerate() {
        vals[d] = c.eval(syms, names, i_regs)?;
    }
    let bad = |vals: &[i64]| RuntimeError::BadIndex {
        array: plan.arrays.names[array as usize].clone(),
        index: vals.to_vec(),
    };
    if rank != layout.dims.len() {
        return Err(bad(vals));
    }
    let mut flat = 0usize;
    for d in 0..rank {
        let v = vals[d];
        if v < 0 || v as usize >= layout.dims[d] {
            return Err(bad(vals));
        }
        flat += v as usize * layout.strides[d];
    }
    Ok(flat)
}

/// Evaluate a tasklet-only body against an immutable array snapshot,
/// appending the buffered writes.
fn eval_body_readonly(
    plan: &ExecPlan,
    body: &PlanGraph,
    slab: &[Option<Tensor>],
    syms: &SymFile,
    scratch: &mut Scratch,
    writes: &mut Vec<BufferedWrite>,
) -> RuntimeResult<()> {
    for &n in &body.order {
        let t = match &body.nodes[n] {
            PlanNode::Tasklet(t) => t,
            PlanNode::Fail(e) => return Err(e.clone()),
            _ => continue,
        };
        scratch.slots.clear();
        scratch.slots.resize(t.n_slots, 0.0);
        for r in &t.reads {
            let v = read_access(plan, slab, syms, &mut scratch.i_regs, r.array, &r.access)?;
            scratch.slots[r.slot as usize] = v;
        }
        load_iters(plan, syms, &mut scratch.slots, &t.iter_loads)?;
        scratch.outs.clear();
        for e in &t.exprs {
            let v = e.eval(&scratch.slots, &mut scratch.f_regs);
            scratch.outs.push(v);
        }
        for w in &t.writes {
            let flat = match &w.access {
                PlanAccess::All => {
                    let t2 = slab[w.array as usize].as_ref().ok_or_else(|| {
                        RuntimeError::UnknownArray(plan.arrays.names[w.array as usize].clone())
                    })?;
                    if t2.len() != 1 {
                        return Err(RuntimeError::Malformed(format!(
                            "whole-array memlet of `{}` used as a scalar write",
                            plan.arrays.names[w.array as usize]
                        )));
                    }
                    0
                }
                PlanAccess::Element(idx) => {
                    let layout = plan.arrays.layout(w.array)?;
                    flat_offset(plan, syms, &mut scratch.i_regs, w.array, idx, layout)?
                }
            };
            writes.push(BufferedWrite {
                array: w.array,
                flat,
                value: scratch.outs[w.expr as usize],
                accumulate: w.accumulate,
            });
        }
    }
    Ok(())
}

fn to_unsigned_index(array: &str, idx: &[i64]) -> RuntimeResult<Vec<usize>> {
    idx.iter()
        .map(|&v| {
            if v < 0 {
                Err(RuntimeError::BadIndex {
                    array: array.to_string(),
                    index: idx.to_vec(),
                })
            } else {
                Ok(v as usize)
            }
        })
        .collect()
}

fn unflatten(mut flat: usize, sizes: &[usize]) -> Vec<usize> {
    let mut out = vec![0usize; sizes.len()];
    for d in (0..sizes.len()).rev() {
        out[d] = flat % sizes[d];
        flat /= sizes[d];
    }
    out
}

/// Convenience: check that a subset evaluates fully (used in tests).
pub fn subset_indices(subset: &Subset, bindings: &HashMap<String, i64>) -> Option<Vec<usize>> {
    subset
        .eval_indices(bindings)
        .ok()
        .map(|v| v.into_iter().map(|x| x.max(0) as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_sdfg::{
        ArrayDesc, BranchRegion, CmpOp, CondExpr, CondOperand, ControlFlow, DataflowGraph,
        LoopRegion, MapScope, Memlet, ScalarExpr as E, State, SymExpr, Tasklet,
    };

    fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// out[i] = in[i] * k for all i, as a parallel map.
    fn scale_sdfg(k: f64) -> Sdfg {
        let mut sdfg = Sdfg::new("scale");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut body = DataflowGraph::new();
        let r = body.add_access("X");
        let t = body.add_tasklet(Tasklet::new("scale", "o", E::input("x").mul(E::c(k))));
        let w = body.add_access("Y");
        body.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("X", vec![SymExpr::sym("i")]),
        );
        body.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        let rn = g.add_access("X");
        let m = g.add_map(MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
            body,
            parallel: true,
        });
        let wn = g.add_access("Y");
        g.add_edge(rn, None, m, None, Memlet::all("X"));
        g.add_edge(m, None, wn, None, Memlet::all("Y"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        sdfg
    }

    #[test]
    fn elementwise_map_executes() {
        let sdfg = scale_sdfg(3.0);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 5)])).unwrap();
        ex.set_input(
            "X",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]).unwrap(),
        )
        .unwrap();
        let report = ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data(), &[3.0, 6.0, 9.0, 12.0, 15.0]);
        assert_eq!(report.map_points, 5);
        assert_eq!(report.tasklet_invocations, 5);
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let sdfg = scale_sdfg(2.0);
        let n = (PARALLEL_MAP_THRESHOLD + 100) as i64;
        let x = dace_tensor::random::uniform(&[n as usize], 1);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", n)])).unwrap();
        ex.set_input("X", x.clone()).unwrap();
        ex.run().unwrap();
        let expected = x.scale(2.0);
        assert!(dace_tensor::allclose_default(
            ex.array("Y").unwrap(),
            &expected
        ));
    }

    /// The same elementwise-eligible map must produce identical results and
    /// identical counters on all three execution paths.
    #[test]
    fn all_paths_report_identical_counters() {
        let x = dace_tensor::random::uniform(&[64], 9);
        let mut reports = Vec::new();
        let mut outputs = Vec::new();
        for path in [MapPath::Auto, MapPath::Sequential, MapPath::Parallel] {
            let sdfg = scale_sdfg(1.5);
            let mut ex = Executor::new(&sdfg, &symbols(&[("N", 64)])).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            let report = ex.run().unwrap();
            outputs.push(ex.array("Y").unwrap().data().to_vec());
            reports.push(report);
        }
        for r in &reports[1..] {
            assert_eq!(r.tasklet_invocations, reports[0].tasklet_invocations);
            assert_eq!(r.map_points, reports[0].map_points);
            assert_eq!(r.state_executions, reports[0].state_executions);
        }
        assert_eq!(reports[0].tasklet_invocations, 64);
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0], "paths disagree on results");
        }
    }

    /// A tasklet with two out-edges must count as ONE evaluation per index
    /// point on every path (the parallel path used to count buffered writes,
    /// i.e. two per point).
    #[test]
    fn multi_output_tasklet_counts_evaluations_not_writes() {
        let build = || {
            let mut sdfg = Sdfg::new("two_outs");
            sdfg.add_symbol("N");
            for n in ["X", "Y", "Z"] {
                sdfg.add_array(n, ArrayDesc::input(vec![SymExpr::sym("N")]))
                    .unwrap();
            }
            let mut body = DataflowGraph::new();
            let r = body.add_access("X");
            let t = body.add_tasklet(Tasklet::multi(
                "fan",
                vec![
                    ("a".into(), E::input("x").mul(E::c(2.0))),
                    ("b".into(), E::input("x").add(E::c(1.0))),
                ],
            ));
            let wy = body.add_access("Y");
            let wz = body.add_access("Z");
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element("X", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("a"),
                wy,
                None,
                Memlet::element("Y", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("b"),
                wz,
                None,
                Memlet::element("Z", vec![SymExpr::sym("i")]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access("X");
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access("Y");
            let zn = g.add_access("Z");
            g.add_edge(rn, None, m, None, Memlet::all("X"));
            g.add_edge(m, None, wn, None, Memlet::all("Y"));
            g.add_edge(m, None, zn, None, Memlet::all("Z"));
            let sid = sdfg.add_state(State {
                name: "s".into(),
                graph: g,
            });
            sdfg.cfg = ControlFlow::State(sid);
            sdfg
        };
        let x = dace_tensor::random::uniform(&[100], 4);
        let mut reports = Vec::new();
        let mut ys = Vec::new();
        for path in [MapPath::Sequential, MapPath::Parallel] {
            let sdfg = build();
            let mut ex = Executor::new(&sdfg, &symbols(&[("N", 100)])).unwrap();
            ex.force_map_path(path);
            ex.set_input("X", x.clone()).unwrap();
            reports.push(ex.run().unwrap());
            ys.push((
                ex.array("Y").unwrap().data().to_vec(),
                ex.array("Z").unwrap().data().to_vec(),
            ));
        }
        assert_eq!(reports[0].tasklet_invocations, 100);
        assert_eq!(
            reports[1].tasklet_invocations, 100,
            "parallel path must count tasklet evaluations, not buffered writes"
        );
        assert_eq!(ys[0], ys[1]);
    }

    #[test]
    fn missing_symbol_is_error() {
        let sdfg = scale_sdfg(1.0);
        assert!(matches!(
            Executor::new(&sdfg, &HashMap::new()),
            Err(RuntimeError::MissingSymbol(_))
        ));
    }

    #[test]
    fn missing_input_is_error() {
        let sdfg = scale_sdfg(1.0);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 4)])).unwrap();
        // X not provided: reading it must fail (Y would be zero-filled output).
        let err = ex.run();
        // X is non-transient so it is zero-initialised as an "output"; the
        // run succeeds and Y is all zeros.  This mirrors DaCe semantics where
        // missing inputs are undefined; we choose zero-fill.
        assert!(err.is_ok());
        assert_eq!(ex.array("Y").unwrap().sum(), 0.0);
    }

    #[test]
    fn wrong_shape_input_rejected() {
        let sdfg = scale_sdfg(1.0);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 4)])).unwrap();
        let bad = Tensor::zeros(&[5]);
        assert!(matches!(
            ex.set_input("X", bad),
            Err(RuntimeError::ShapeMismatch { .. })
        ));
    }

    /// Sequential loop with an element tasklet: out[0] = sum of i for i in 0..N.
    #[test]
    fn sequential_loop_with_accumulation() {
        let mut sdfg = Sdfg::new("loop");
        sdfg.add_symbol("N");
        sdfg.add_array("ACC", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("acc", "o", E::iter("i")));
        let w = g.add_access("ACC");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("ACC", vec![SymExpr::int(0)]).with_wcr_sum(),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "i".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("N"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::State(sid)),
        });
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 10)])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("ACC").unwrap().data()[0], 45.0);
    }

    #[test]
    fn reverse_loop_executes_in_descending_order() {
        // ACC = last i written (no WCR): with a reversed loop it ends at 0.
        let mut sdfg = Sdfg::new("revloop");
        sdfg.add_array("ACC", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("set", "o", E::iter("i")));
        let w = g.add_access("ACC");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("ACC", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "i".into(),
            start: SymExpr::int(9),
            end: SymExpr::int(-1),
            step: SymExpr::int(-1),
            body: Box::new(ControlFlow::State(sid)),
        });
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("ACC").unwrap().data()[0], 0.0);
    }

    #[test]
    fn branch_takes_correct_arm() {
        // if P[0] > 0 { Y[0] = 1 } else { Y[0] = 2 }
        let mut sdfg = Sdfg::new("branch");
        sdfg.add_array("P", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mk = |v: f64| {
            let mut g = DataflowGraph::new();
            let t = g.add_tasklet(Tasklet::new("c", "o", E::c(v)));
            let w = g.add_access("Y");
            g.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element("Y", vec![SymExpr::int(0)]),
            );
            g
        };
        let then_id = sdfg.add_state(State {
            name: "t".into(),
            graph: mk(1.0),
        });
        let else_id = sdfg.add_state(State {
            name: "e".into(),
            graph: mk(2.0),
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            then_body: Box::new(ControlFlow::State(then_id)),
            else_body: Some(Box::new(ControlFlow::State(else_id))),
        });
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("P", Tensor::from_vec(vec![5.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 1.0);

        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("P", Tensor::from_vec(vec![-5.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 2.0);
    }

    #[test]
    fn matmul_library_node() {
        let mut sdfg = Sdfg::new("mm");
        sdfg.add_symbol("N");
        for n in ["A", "B", "C"] {
            sdfg.add_array(
                n,
                ArrayDesc::input(vec![SymExpr::sym("N"), SymExpr::sym("N")]),
            )
            .unwrap();
        }
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let b = g.add_access("B");
        let mm = g.add_library(LibraryOp::MatMul);
        let c = g.add_access("C");
        g.add_edge(a, None, mm, Some("A"), Memlet::all("A"));
        g.add_edge(b, None, mm, Some("B"), Memlet::all("B"));
        g.add_edge(mm, Some("C"), c, None, Memlet::all("C"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 4)])).unwrap();
        let a_t = dace_tensor::random::uniform(&[4, 4], 3);
        let b_t = dace_tensor::random::uniform(&[4, 4], 4);
        ex.set_input("A", a_t.clone()).unwrap();
        ex.set_input("B", b_t.clone()).unwrap();
        let report = ex.run().unwrap();
        assert_eq!(report.library_calls, 1);
        assert!(dace_tensor::allclose_default(
            ex.array("C").unwrap(),
            &a_t.matmul(&b_t).unwrap()
        ));
    }

    #[test]
    fn sum_reduce_library_node() {
        let mut sdfg = Sdfg::new("sum");
        sdfg.add_symbol("N");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("S", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let r = g.add_library(LibraryOp::SumReduce { accumulate: false });
        let s = g.add_access("S");
        g.add_edge(a, None, r, Some("IN"), Memlet::all("A"));
        g.add_edge(r, Some("OUT"), s, None, Memlet::all("S"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 6)])).unwrap();
        ex.set_input("A", Tensor::ones(&[6])).unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("S").unwrap().data()[0], 6.0);
    }

    #[test]
    fn transient_allocation_and_free_hints() {
        // X -> T (transient) -> Y; free T after the state.
        let mut sdfg = Sdfg::new("transient");
        sdfg.add_symbol("N");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("T", ArrayDesc::transient(vec![SymExpr::sym("N")]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mk = |src: &str, dst: &str| {
            let mut body = DataflowGraph::new();
            let r = body.add_access(src);
            let t = body.add_tasklet(Tasklet::new("x2", "o", E::input("x").mul(E::c(2.0))));
            let w = body.add_access(dst);
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element(src, vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element(dst, vec![SymExpr::sym("i")]),
            );
            let mut g = DataflowGraph::new();
            let rn = g.add_access(src);
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
                body,
                parallel: true,
            });
            let wn = g.add_access(dst);
            g.add_edge(rn, None, m, None, Memlet::all(src));
            g.add_edge(m, None, wn, None, Memlet::all(dst));
            g
        };
        let s0 = sdfg.add_state(State {
            name: "s0".into(),
            graph: mk("X", "T"),
        });
        let s1 = sdfg.add_state(State {
            name: "s1".into(),
            graph: mk("T", "Y"),
        });
        sdfg.cfg = ControlFlow::Sequence(vec![ControlFlow::State(s0), ControlFlow::State(s1)]);

        let mut hints = HashMap::new();
        hints.insert(s1, vec!["T".to_string()]);
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 8)]))
            .unwrap()
            .with_free_hints(hints);
        ex.set_input("X", Tensor::ones(&[8])).unwrap();
        let report = ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 4.0);
        // Peak memory saw X + Y + T = 3 * 8 * 8 bytes; at the end T is freed.
        assert_eq!(report.peak_bytes, 3 * 64);
        assert_eq!(report.final_bytes, 2 * 64);
        assert!(ex.array("T").is_none());
    }

    #[test]
    fn stored_flag_condition() {
        let mut sdfg = Sdfg::new("flag");
        sdfg.add_array("F", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(1)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("one", "o", E::c(1.0)));
        let w = g.add_access("Y");
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("Y", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::StoredFlag("F".into()),
            then_body: Box::new(ControlFlow::State(sid)),
            else_body: None,
        });
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("F", Tensor::from_vec(vec![0.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 0.0);
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("F", Tensor::from_vec(vec![1.0], &[1]).unwrap())
            .unwrap();
        ex.run().unwrap();
        assert_eq!(ex.array("Y").unwrap().data()[0], 1.0);
    }

    #[test]
    fn nested_loops_stencil_style() {
        // for t in 0..T: for i in 1..N-1: A[i] = (A[i-1] + A[i] + A[i+1]) / 3
        let mut sdfg = Sdfg::new("jacobi_inplace");
        sdfg.add_symbol("N");
        sdfg.add_symbol("T");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let r = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new(
            "avg",
            "o",
            E::input("l")
                .add(E::input("c"))
                .add(E::input("r"))
                .div(E::c(3.0)),
        ));
        let w = g.add_access("A");
        g.add_edge(
            r,
            None,
            t,
            Some("l"),
            Memlet::element("A", vec![SymExpr::sym("i").sub(&SymExpr::int(1))]),
        );
        g.add_edge(
            r,
            None,
            t,
            Some("c"),
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        g.add_edge(
            r,
            None,
            t,
            Some("r"),
            Memlet::element("A", vec![SymExpr::sym("i").add_int(1)]),
        );
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        let sid = sdfg.add_state(State {
            name: "body".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "ts".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("T"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::Loop(LoopRegion {
                var: "i".into(),
                start: SymExpr::int(1),
                end: SymExpr::sym("N").sub(&SymExpr::int(1)),
                step: SymExpr::int(1),
                body: Box::new(ControlFlow::State(sid)),
            })),
        });
        let mut ex = Executor::new(&sdfg, &symbols(&[("N", 6), ("T", 2)])).unwrap();
        ex.set_input(
            "A",
            Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[6]).unwrap(),
        )
        .unwrap();
        let report = ex.run().unwrap();
        assert_eq!(report.state_executions, 8);
        // Reference: straightforward Rust implementation.
        let mut a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        for _ in 0..2 {
            for i in 1..5 {
                a[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
            }
        }
        let got = ex.array("A").unwrap().data().to_vec();
        for (x, y) in got.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_bounds_index_is_reported() {
        let mut sdfg = Sdfg::new("oob");
        sdfg.add_array("A", ArrayDesc::input(vec![SymExpr::int(2)]))
            .unwrap();
        sdfg.add_array("B", ArrayDesc::input(vec![SymExpr::int(2)]))
            .unwrap();
        let mut g = DataflowGraph::new();
        let r = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("id", "o", E::input("x")));
        let w = g.add_access("B");
        g.add_edge(
            r,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::int(5)]),
        );
        g.add_edge(
            t,
            Some("o"),
            w,
            None,
            Memlet::element("B", vec![SymExpr::int(0)]),
        );
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let mut ex = Executor::new(&sdfg, &HashMap::new()).unwrap();
        ex.set_input("A", Tensor::zeros(&[2])).unwrap();
        assert!(matches!(ex.run(), Err(RuntimeError::BadIndex { .. })));
    }
}
