//! Multi-tenant gateway: admission, backpressure and fault tolerance over
//! many compiled programs.
//!
//! [`crate::ServeDriver`] serves one program with an *unbounded* queue and
//! no failure policy beyond per-item panic isolation.  A front door shared
//! by many programs — the ROADMAP's "multi-tenant serving" layer — needs
//! more, and [`Gateway`] provides it:
//!
//! * **Backpressure** — each tenant owns a *bounded* admission queue; a
//!   submission that would overflow it is rejected immediately with
//!   [`ServeError::Overloaded`] carrying a `retry_after_hint`, instead of
//!   growing the queue without bound.  Across tenants, batches are formed
//!   by **weighted deficit round-robin** (WDRR): every round a tenant earns
//!   `max_batch × weight` credits, spends one per dispatched request, and
//!   banks the rest (capped at two rounds' worth) — so a hot tenant cannot
//!   starve the others, and a weight-2 tenant gets twice the dispatch share
//!   of a weight-1 tenant under contention.
//! * **Fault tolerance** — a panicking request quarantines its session (the
//!   [`crate::BatchDriver`] guarantee) and, when the request is idempotent,
//!   is retried up to [`GatewayOptions::retry_budget`] times with
//!   exponential backoff.  Repeated *infrastructure* failures (panics,
//!   session-checkout failures) trip a per-tenant **circuit breaker**:
//!   while open, new admissions are shed early with [`ServeError::Degraded`]
//!   instead of queueing behind a failing backend; after a cooldown the
//!   breaker goes **half-open** and sends a single probe request — success
//!   closes it, failure re-opens it.  Plain execution errors (bad shapes,
//!   unknown arrays) are data-dependent: they fail the request but never
//!   trip the breaker and are never retried.
//! * **Graceful reload** — [`Gateway::reload`] swaps a tenant's program
//!   for a recompiled one: requests already dispatched drain against the
//!   old plan (the call blocks until they have), requests still queued and
//!   all new admissions run on the new one.  No handle is lost or torn
//!   between plans.
//! * **Deterministic fault injection** — [`Gateway::inject_faults`] arms a
//!   [`FaultPlan`] against a tenant's *dispatch sequence numbers*
//!   (panic-on-Nth-dispatch, forced session-checkout failure, artificial
//!   dispatch latency), so every behaviour above is exercised by tests and
//!   the `npbench --gateway` chaos harness rather than asserted in prose.
//!
//! # The exactly-once handle contract
//!
//! Every submitted [`GatewayHandle`] resolves **exactly once** with a typed
//! outcome: a [`ServeResponse`], or one of `DeadlineExceeded` / `Cancelled`
//! / `Overloaded` / `Degraded` / `Execution` / `Panicked` / `Checkout` /
//! `ShuttingDown`.  This holds under injected panics, latency spikes,
//! concurrent reloads, sustained overload and mid-retry shutdown — the
//! per-tenant counters conserve on *every* [`Gateway::stats`] snapshot
//! (see [`TenantStats::conserves`]), not just at quiescence.
//!
//! ```
//! use std::collections::HashMap;
//! use dace_frontend::{ArrayExpr, ProgramBuilder};
//! use dace_runtime::{compile, Gateway, GatewayOptions};
//! use dace_tensor::Tensor;
//!
//! let mut b = ProgramBuilder::new("double");
//! let n = b.symbol("N");
//! b.add_input("X", vec![n.clone()]).unwrap();
//! b.add_input("Y", vec![n.clone()]).unwrap();
//! b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
//! let sdfg = b.build().unwrap();
//! let program = compile(&sdfg, &HashMap::from([("N".to_string(), 3)])).unwrap();
//!
//! let gateway = Gateway::new(GatewayOptions::default());
//! gateway.register("double", program).unwrap();
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
//! let handle = gateway
//!     .submit("double", HashMap::from([("X".to_string(), x)]), &["Y"])
//!     .unwrap();
//! let response = handle.wait().unwrap();
//! assert_eq!(response.outputs["Y"].data(), &[2.0, 4.0, 6.0]);
//! assert!(gateway.stats().tenants["double"].conserves());
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dace_tensor::Tensor;

use crate::batch::{BatchDriver, BatchError};
use crate::error::RuntimeError;
use crate::program::CompiledProgram;
use crate::serve::{LatencyWindow, ServeError, ServeResponse};

/// Floor for every `retry_after_hint` handed to clients, so a rejection
/// never tells a client to retry immediately (which would amplify the very
/// overload being shed).
const MIN_RETRY_HINT: Duration = Duration::from_millis(1);

/// Cap on the retry-backoff exponent: backoff stops doubling after
/// `base × 2^10`, bounding the sleep however large the retry budget is.
const MAX_BACKOFF_SHIFT: u32 = 10;

/// Gateway-wide tuning knobs.
///
/// `max_batch`/`max_wait`/`workers` mean what they mean on
/// [`crate::ServeOptions`], applied per formed batch.  The rest govern the
/// robustness machinery: queue bounds, the retry budget and the circuit
/// breaker.  See `docs/serving.md` for a tuning table.
#[derive(Clone, Debug)]
pub struct GatewayOptions {
    /// Maximum requests one dispatch may coalesce (clamped to >= 1).  Also
    /// the WDRR quantum: credits a tenant earns per round-robin visit,
    /// multiplied by its weight.
    pub max_batch: usize,
    /// Maximum time the oldest ready request lingers before its tenant's
    /// batch dispatches however full it is.
    pub max_wait: Duration,
    /// Default per-tenant admission-queue bound (clamped to >= 1);
    /// overridable per tenant via [`TenantConfig::queue_capacity`].  A
    /// submission finding the queue full is rejected with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// How many times an *idempotent* request is re-dispatched after an
    /// infrastructure failure (panic or checkout failure) before its handle
    /// resolves with the last error.  `0` disables retries.
    pub retry_budget: u32,
    /// Backoff before the first retry; doubles per attempt
    /// (`base × 2^(attempt-1)`, exponent capped).
    pub retry_backoff: Duration,
    /// Consecutive infrastructure failures that trip a tenant's circuit
    /// breaker open (clamped to >= 1).  Execution errors never count.
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds load before going half-open and
    /// sending a recovery probe.
    pub breaker_cooldown: Duration,
    /// Fan-out cap within each dispatched batch (0 = the worker pool's full
    /// width); stamped onto every tenant's [`BatchDriver`].
    pub workers: usize,
}

impl Default for GatewayOptions {
    fn default() -> Self {
        GatewayOptions {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            retry_budget: 2,
            retry_backoff: Duration::from_micros(500),
            breaker_threshold: 4,
            breaker_cooldown: Duration::from_millis(25),
            workers: 0,
        }
    }
}

/// Per-tenant registration knobs for [`Gateway::register_with`].
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// WDRR weight (clamped to >= 1): under contention a weight-`w` tenant
    /// receives `w` times the dispatch share of a weight-1 tenant.
    pub weight: u32,
    /// Admission-queue bound for this tenant; `None` inherits
    /// [`GatewayOptions::queue_capacity`].
    pub queue_capacity: Option<usize>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            queue_capacity: None,
        }
    }
}

/// Per-request submission knobs for [`Gateway::submit_with`].
#[derive(Clone, Debug)]
pub struct SubmitOptions {
    /// Admission deadline, measured from submission (see
    /// `docs/serving.md`: a deadline bounds admission, not execution).
    pub deadline: Option<Duration>,
    /// Whether the request may be transparently re-dispatched after an
    /// infrastructure failure.  Defaults to `true` — a pure-function
    /// gradient evaluation is safe to re-run; set `false` for requests
    /// whose execution has observable side effects, and the first failure
    /// resolves the handle instead.
    pub idempotent: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            deadline: None,
            idempotent: true,
        }
    }
}

/// Deterministic fault plan, armed per tenant via
/// [`Gateway::inject_faults`] and matched against that tenant's dispatch
/// sequence (1-based, incremented once per *dispatched attempt*, so a
/// retry consumes the next number).
///
/// This is a chaos-testing hook: it exists so the fault-tolerance paths are
/// driven by tests (`tests/gateway.rs`, `npbench --gateway`) instead of
/// waiting for production to exercise them.  An empty (default) plan
/// injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Panic on exactly these dispatch sequence numbers.
    pub panic_on: Vec<u64>,
    /// Panic on every `k`-th dispatch (`seq % k == 0`).
    pub panic_every: Option<u64>,
    /// Fail session checkout on exactly these sequence numbers.
    pub checkout_fail_on: Vec<u64>,
    /// Fail session checkout on every `k`-th dispatch.
    pub checkout_fail_every: Option<u64>,
    /// Artificial latency added to every dispatched item (a latency-spike
    /// injector for deadline/backpressure tests).
    pub delay: Duration,
}

impl FaultPlan {
    fn fires(list: &[u64], every: Option<u64>, seq: u64) -> bool {
        list.contains(&seq) || every.is_some_and(|k| k >= 1 && seq.is_multiple_of(k))
    }

    /// The action this plan injects at dispatch number `seq` (panic wins
    /// over checkout failure when both match).
    fn action(&self, seq: u64) -> FaultAction {
        if Self::fires(&self.panic_on, self.panic_every, seq) {
            FaultAction::Panic(seq)
        } else if Self::fires(&self.checkout_fail_on, self.checkout_fail_every, seq) {
            FaultAction::Checkout(seq)
        } else {
            FaultAction::None
        }
    }
}

/// What the armed [`FaultPlan`] injects into one dispatched item.
#[derive(Clone, Copy, Debug)]
enum FaultAction {
    None,
    Panic(u64),
    Checkout(u64),
}

/// Public view of a tenant's circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests dispatch normally.
    Closed,
    /// Tripped: new admissions are shed with [`ServeError::Degraded`]
    /// until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next dispatch is a single probe request;
    /// success closes the breaker, failure re-opens it.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Per-tenant circuit breaker over consecutive infrastructure failures.
struct Breaker {
    inner: BreakerInner,
    trips: u64,
}

enum BreakerInner {
    Closed { fails: u32 },
    Open { until: Instant },
    HalfOpen,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            inner: BreakerInner::Closed { fails: 0 },
            trips: 0,
        }
    }

    fn state(&self) -> BreakerState {
        match self.inner {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// When an open breaker will transition to half-open.
    fn reopen_at(&self) -> Option<Instant> {
        match self.inner {
            BreakerInner::Open { until } => Some(until),
            _ => None,
        }
    }

    /// Advance time-based transitions (open → half-open after cooldown).
    fn tick(&mut self, now: Instant) {
        if let BreakerInner::Open { until } = self.inner {
            if now >= until {
                self.inner = BreakerInner::HalfOpen;
            }
        }
    }

    /// Any successful dispatch fully closes the breaker (a half-open probe
    /// that succeeds restores the tenant; a success under `Closed` resets
    /// the consecutive-failure count).
    fn on_success(&mut self) {
        self.inner = BreakerInner::Closed { fails: 0 };
    }

    /// Record an infrastructure failure (panic / checkout failure).
    fn on_infra_failure(&mut self, threshold: u32, cooldown: Duration, now: Instant) {
        match &mut self.inner {
            BreakerInner::Closed { fails } => {
                *fails += 1;
                if *fails >= threshold {
                    self.inner = BreakerInner::Open {
                        until: now + cooldown,
                    };
                    self.trips += 1;
                }
            }
            // A failed recovery probe re-opens for a full fresh cooldown.
            BreakerInner::HalfOpen => {
                self.inner = BreakerInner::Open {
                    until: now + cooldown,
                };
                self.trips += 1;
            }
            // Already shedding; push the horizon out, never pull it in.
            BreakerInner::Open { until } => {
                *until = (*until).max(now + cooldown);
            }
        }
    }
}

/// Why a [`Gateway`] call failed outright (as opposed to a *request*
/// failing, which resolves through its handle with a [`ServeError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GatewayError {
    /// No tenant registered under this name.
    UnknownTenant(String),
    /// [`Gateway::register`] with a name that is already taken.
    DuplicateTenant(String),
    /// The gateway is shutting down; registrations and reloads are refused.
    ShuttingDown,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::UnknownTenant(name) => write!(f, "unknown tenant: {name:?}"),
            GatewayError::DuplicateTenant(name) => {
                write!(f, "tenant already registered: {name:?}")
            }
            GatewayError::ShuttingDown => write!(f, "gateway is shutting down"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Point-in-time snapshot of one tenant, from [`Gateway::stats`].
///
/// Lifecycle counters partition every admitted request: see
/// [`TenantStats::conserves`].  `retried`, `panics` and
/// `checkout_failures` count *attempts*, not requests, and sit outside the
/// conservation sum (a request that panics twice and then completes is one
/// `completed` plus two `panics` plus two `retried`).
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Requests waiting in this tenant's admission queue (awaiting-backoff
    /// retries included).
    pub queue_depth: usize,
    /// Requests claimed by the dispatcher and not yet completed.
    pub in_flight: u64,
    /// Requests ever submitted to this tenant.
    pub admitted: u64,
    /// Requests that executed and returned a result.
    pub completed: u64,
    /// Requests resolved with an execution error, or an infrastructure
    /// error after the retry budget was spent.
    pub failed: u64,
    /// Requests cancelled while queued.
    pub cancelled: u64,
    /// Requests whose deadline passed before dispatch.
    pub expired: u64,
    /// Requests shed at admission because the queue was full.
    pub overloaded: u64,
    /// Requests shed at admission because the circuit breaker was open.
    pub degraded: u64,
    /// Requests refused because the gateway was shutting down.
    pub rejected: u64,
    /// Retry dispatches performed (attempt-level; outside conservation).
    pub retried: u64,
    /// Dispatched attempts that panicked (attempt-level).
    pub panics: u64,
    /// Dispatched attempts whose session checkout failed (attempt-level;
    /// today only reachable via [`FaultPlan`]).
    pub checkout_failures: u64,
    /// Batches dispatched for this tenant.
    pub batches: u64,
    /// Largest batch one dispatch coalesced for this tenant.
    pub largest_batch: usize,
    /// Current circuit-breaker state.
    pub breaker: BreakerState,
    /// Times the breaker tripped open over the tenant's lifetime.
    pub breaker_trips: u64,
    /// Program epoch: starts at 1, incremented by every
    /// [`Gateway::reload`].
    pub epoch: u64,
    /// The tenant's WDRR weight.
    pub weight: u32,
    /// Median submit-to-completion latency over a sliding window.
    pub p50_latency: Duration,
    /// 95th-percentile submit-to-completion latency over the same window.
    pub p95_latency: Duration,
    /// Sessions created by the tenant's *current* driver (counters reset
    /// on reload with the driver they belong to).
    pub sessions_created: u64,
    /// Checkouts served from the current driver's idle pool.
    pub sessions_reused: u64,
    /// Sessions parked in the current driver's idle pool.
    pub pooled_sessions: usize,
    /// Sessions quarantined by the current driver because their item
    /// panicked — the observable proof that panic quarantine fired.
    pub sessions_discarded: u64,
}

impl TenantStats {
    /// The conservation invariant: every admitted request is in exactly one
    /// lifecycle bucket at every instant.
    ///
    /// ```text
    /// admitted == queue_depth + in_flight + completed + failed
    ///           + cancelled + expired + overloaded + degraded + rejected
    /// ```
    ///
    /// Holds on **every** snapshot — all counters live under the gateway's
    /// one state lock and every transition moves a request between buckets
    /// in a single critical section.  Worth alerting on verbatim.
    pub fn conserves(&self) -> bool {
        self.admitted
            == self.queue_depth as u64
                + self.in_flight
                + self.completed
                + self.failed
                + self.cancelled
                + self.expired
                + self.overloaded
                + self.degraded
                + self.rejected
    }
}

/// Point-in-time snapshot of the whole gateway: total dispatches plus one
/// [`TenantStats`] per registered tenant (ordered by name for stable
/// display).
#[derive(Clone, Debug, Default)]
pub struct GatewayStats {
    /// Batches dispatched across all tenants.
    pub dispatches: u64,
    /// Per-tenant snapshots, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
}

impl GatewayStats {
    /// Whether [`TenantStats::conserves`] holds for every tenant.
    pub fn conserves(&self) -> bool {
        self.tenants.values().all(TenantStats::conserves)
    }
}

/// The bind/fetch payload of one request.
type Payload = (HashMap<String, Tensor>, Vec<String>);

/// Lifecycle of one gateway request, guarded by `GwRequest::phase`.
enum GwPhase {
    /// In the admission queue (or awaiting a retry backoff); owns the
    /// payload.
    Queued {
        inputs: HashMap<String, Tensor>,
        fetch: Vec<String>,
    },
    /// Claimed by the dispatcher and running (or about to).
    Dispatched,
    /// Finished; the result waits for `wait`/`try_wait`.
    Done(Result<ServeResponse, ServeError>),
    /// The result was consumed by `wait`.
    Taken,
}

struct GwRequest {
    id: u64,
    tenant: String,
    submitted: Instant,
    deadline: Option<Instant>,
    idempotent: bool,
    phase: Mutex<GwPhase>,
    done_cv: Condvar,
}

impl GwRequest {
    fn lock_phase(&self) -> MutexGuard<'_, GwPhase> {
        self.phase.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn complete(&self, result: Result<ServeResponse, ServeError>) {
        *self.lock_phase() = GwPhase::Done(result);
        self.done_cv.notify_all();
    }
}

/// Handle to one request submitted through a [`Gateway`].
///
/// Mirrors [`crate::RequestHandle`]: the result is retrieved exactly once
/// with [`GatewayHandle::wait`]; [`GatewayHandle::try_wait`] and
/// [`GatewayHandle::wait_timeout`] poll without consuming it;
/// [`GatewayHandle::cancel`] is best-effort.  Dropping a handle does not
/// cancel the request.
pub struct GatewayHandle {
    req: Arc<GwRequest>,
    shared: Arc<GwShared>,
}

impl std::fmt::Debug for GatewayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayHandle")
            .field("id", &self.req.id)
            .field("tenant", &self.req.tenant)
            .field("done", &self.is_done())
            .finish()
    }
}

impl GatewayHandle {
    /// Monotonic id of this request (unique per gateway).
    pub fn id(&self) -> u64 {
        self.req.id
    }

    /// The tenant this request was submitted to.
    pub fn tenant(&self) -> &str {
        &self.req.tenant
    }

    /// Whether a result (or rejection) is available.
    pub fn is_done(&self) -> bool {
        matches!(&*self.req.lock_phase(), GwPhase::Done(_) | GwPhase::Taken)
    }

    /// Block until the request completes and take its result.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut phase = self.req.lock_phase();
        loop {
            match &*phase {
                GwPhase::Done(_) => break,
                GwPhase::Taken => unreachable!("wait consumes the handle"),
                _ => {
                    phase = self
                        .req
                        .done_cv
                        .wait(phase)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        match std::mem::replace(&mut *phase, GwPhase::Taken) {
            GwPhase::Done(result) => result,
            _ => unreachable!("loop above exits only on Done"),
        }
    }

    /// Non-blocking poll: `Some(result)` once completed (cloned, so a later
    /// [`GatewayHandle::wait`] still succeeds), `None` while pending.
    pub fn try_wait(&self) -> Option<Result<ServeResponse, ServeError>> {
        match &*self.req.lock_phase() {
            GwPhase::Done(result) => Some(result.clone()),
            _ => None,
        }
    }

    /// Bounded blocking wait, with the same semantics (and the same benign
    /// expired-then-completed race) as
    /// [`crate::RequestHandle::wait_timeout`]: `None` on timeout with the
    /// handle fully usable, `Some(result)` once completed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, ServeError>> {
        let deadline = Instant::now() + timeout;
        let mut phase = self.req.lock_phase();
        loop {
            if let GwPhase::Done(result) = &*phase {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .req
                .done_cv
                .wait_timeout(phase, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            phase = guard;
        }
    }

    /// Best-effort cancellation: succeeds (returns `true`) only while the
    /// request is queued — which *includes* a retry awaiting its backoff,
    /// so a request mid-retry can still be called off.  Once dispatched it
    /// completes normally (`false`).
    pub fn cancel(&self) -> bool {
        // Lock order: gateway state, then request phase — matching every
        // other state-and-phase critical section in this module.
        let mut state = self.shared.lock_state();
        let Some(tenant) = state.tenants.get_mut(&self.req.tenant) else {
            return false;
        };
        let mut phase = self.req.lock_phase();
        if matches!(&*phase, GwPhase::Queued { .. }) {
            *phase = GwPhase::Done(Err(ServeError::Cancelled));
            self.req.done_cv.notify_all();
            tenant.counters.queued -= 1;
            tenant.counters.cancelled += 1;
            // The queue entry is left in place; the dispatcher's sweep
            // drops entries whose phase is no longer Queued.
            true
        } else {
            false
        }
    }
}

/// Request-lifecycle counters of one tenant.  All under the gateway's one
/// state lock, so snapshots are coherent (see [`TenantStats::conserves`]).
#[derive(Default)]
struct TenantCounters {
    admitted: u64,
    queued: u64,
    in_flight: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    expired: u64,
    overloaded: u64,
    degraded: u64,
    rejected: u64,
    retried: u64,
    panics: u64,
    checkout_failures: u64,
    batches: u64,
    largest_batch: usize,
}

/// One queued request plus its retry bookkeeping.
struct QueueEntry {
    req: Arc<GwRequest>,
    /// Dispatch attempts already made (0 for a fresh request).
    attempts: u32,
    /// When a retry becomes eligible for dispatch (`None` = immediately).
    retry_at: Option<Instant>,
}

/// A tenant's executable: its session-pool driver stamped with the program
/// epoch it belongs to.  `Arc`-swapped by [`Gateway::reload`] so in-flight
/// batches keep the old driver alive while new dispatches use the new one.
struct TenantExec {
    driver: BatchDriver,
    epoch: u64,
}

struct TenantState {
    weight: u32,
    capacity: usize,
    /// WDRR credit balance: earned on each round-robin visit, spent one
    /// per dispatched request, zeroed when the queue empties.
    deficit: u64,
    queue: VecDeque<QueueEntry>,
    exec: Arc<TenantExec>,
    /// Program epoch, starts at 1; bumped by reload.
    epoch: u64,
    /// Epoch of the most recently dispatched batch — `reload` drains until
    /// `in_flight == 0` or this catches up with the new epoch.
    inflight_epoch: u64,
    /// A half-open recovery probe is currently in flight; no further
    /// dispatches for this tenant until it resolves.
    probing: bool,
    counters: TenantCounters,
    breaker: Breaker,
    faults: FaultPlan,
    /// 1-based count of dispatched attempts, the clock [`FaultPlan`]s are
    /// matched against.
    dispatch_seq: u64,
    latencies: LatencyWindow,
}

impl TenantState {
    /// Whether the dispatcher may form a batch for this tenant right now.
    /// Shutdown overrides the breaker and probe gating: the final drain
    /// dispatches everything.
    fn dispatch_allowed(&self, shutdown: bool) -> bool {
        shutdown
            || match self.breaker.state() {
                BreakerState::Closed => true,
                BreakerState::HalfOpen => !self.probing,
                BreakerState::Open => false,
            }
    }

    /// Entries eligible for dispatch now (backoff elapsed; shutdown
    /// ignores backoff — the final drain does not wait out retry timers).
    fn ready_count(&self, now: Instant, shutdown: bool) -> usize {
        self.queue
            .iter()
            .filter(|e| shutdown || e.retry_at.is_none_or(|r| r <= now))
            .count()
    }
}

struct GwState {
    shutdown: bool,
    /// Round-robin order of tenant names (registration order).
    rr: Vec<String>,
    /// Next RR position to scan from.
    cursor: usize,
    /// Tenant whose earned deficit the dispatcher is still spending —
    /// WDRR weight manifests as *consecutive* dispatches for the same
    /// tenant before the cursor moves on.
    active: Option<String>,
    dispatches: u64,
    tenants: HashMap<String, TenantState>,
}

struct GwShared {
    opts: GatewayOptions,
    state: Mutex<GwState>,
    /// Wakes the dispatcher: new work, cancellation, shutdown.
    work_cv: Condvar,
    /// Wakes reload/drain waiters when in-flight counts change.
    drain_cv: Condvar,
    next_id: AtomicU64,
}

impl GwShared {
    fn lock_state(&self) -> MutexGuard<'_, GwState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Exponential retry backoff: `base × 2^(attempt-1)`, exponent capped so
/// the sleep stays bounded (`attempt` is 1-based).
fn retry_backoff(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.saturating_sub(1).min(MAX_BACKOFF_SHIFT))
}

/// Multi-tenant serving gateway: bounded admission, WDRR scheduling,
/// retries, circuit breaking, graceful reload (see the module docs).
///
/// Construct with [`Gateway::new`], [`Gateway::register`] one or more
/// compiled programs, then [`Gateway::submit`] from any number of threads.
/// Dropping the gateway drains every queue (no handle is stranded) and
/// stops the dispatcher.
pub struct Gateway {
    shared: Arc<GwShared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock_state();
        f.debug_struct("Gateway")
            .field("tenants", &state.rr)
            .field("dispatches", &state.dispatches)
            .field("shutdown", &state.shutdown)
            .finish()
    }
}

impl Gateway {
    /// Create a gateway (with its dispatcher thread) and no tenants yet.
    pub fn new(options: GatewayOptions) -> Self {
        let mut opts = options;
        opts.max_batch = opts.max_batch.max(1);
        opts.queue_capacity = opts.queue_capacity.max(1);
        opts.breaker_threshold = opts.breaker_threshold.max(1);
        let shared = Arc::new(GwShared {
            opts,
            state: Mutex::new(GwState {
                shutdown: false,
                rr: Vec::new(),
                cursor: 0,
                active: None,
                dispatches: 0,
                tenants: HashMap::new(),
            }),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dace-gateway-dispatcher".to_string())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawning the gateway dispatcher thread failed")
        };
        Gateway {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// The gateway-wide options this instance was built with.
    pub fn options(&self) -> GatewayOptions {
        self.shared.opts.clone()
    }

    /// Register `program` as tenant `name` with default [`TenantConfig`].
    pub fn register(&self, name: &str, program: CompiledProgram) -> Result<(), GatewayError> {
        self.register_driver(name, BatchDriver::new(program), TenantConfig::default())
    }

    /// Register with explicit per-tenant weight / queue bound.
    pub fn register_with(
        &self,
        name: &str,
        program: CompiledProgram,
        config: TenantConfig,
    ) -> Result<(), GatewayError> {
        self.register_driver(name, BatchDriver::new(program), config)
    }

    /// Register over a pre-configured [`BatchDriver`] (session pool, free
    /// hints) — the general form the AD engine uses to bring its
    /// recomputation hints along.  The driver's worker cap is overwritten
    /// by [`GatewayOptions::workers`].
    pub fn register_driver(
        &self,
        name: &str,
        driver: BatchDriver,
        config: TenantConfig,
    ) -> Result<(), GatewayError> {
        driver.set_workers(self.shared.opts.workers);
        let mut state = self.shared.lock_state();
        if state.shutdown {
            return Err(GatewayError::ShuttingDown);
        }
        if state.tenants.contains_key(name) {
            return Err(GatewayError::DuplicateTenant(name.to_string()));
        }
        state.rr.push(name.to_string());
        state.tenants.insert(
            name.to_string(),
            TenantState {
                weight: config.weight.max(1),
                capacity: config
                    .queue_capacity
                    .unwrap_or(self.shared.opts.queue_capacity)
                    .max(1),
                deficit: 0,
                queue: VecDeque::new(),
                exec: Arc::new(TenantExec { driver, epoch: 1 }),
                epoch: 1,
                inflight_epoch: 1,
                probing: false,
                counters: TenantCounters::default(),
                breaker: Breaker::new(),
                faults: FaultPlan::default(),
                dispatch_seq: 0,
                latencies: LatencyWindow::new(),
            },
        );
        Ok(())
    }

    /// Submit one request to `tenant` with default [`SubmitOptions`].
    ///
    /// `Err` only for an unknown tenant; every other outcome — including
    /// overload, degradation and shutdown — resolves through the returned
    /// handle, so callers have exactly one place to observe request fate.
    pub fn submit(
        &self,
        tenant: &str,
        inputs: HashMap<String, Tensor>,
        fetch: &[&str],
    ) -> Result<GatewayHandle, GatewayError> {
        self.submit_with(tenant, inputs, fetch, SubmitOptions::default())
    }

    /// [`Gateway::submit`] with an explicit deadline / idempotence policy.
    pub fn submit_with(
        &self,
        tenant: &str,
        inputs: HashMap<String, Tensor>,
        fetch: &[&str],
        opts: SubmitOptions,
    ) -> Result<GatewayHandle, GatewayError> {
        let now = Instant::now();
        let deadline = opts.deadline.map(|d| now + d);
        let req = Arc::new(GwRequest {
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: tenant.to_string(),
            submitted: now,
            deadline,
            idempotent: opts.idempotent,
            phase: Mutex::new(GwPhase::Queued {
                inputs,
                fetch: fetch.iter().map(|s| s.to_string()).collect(),
            }),
            done_cv: Condvar::new(),
        });
        let handle = GatewayHandle {
            req: Arc::clone(&req),
            shared: Arc::clone(&self.shared),
        };
        // Admission runs entirely under the state lock: the shutdown /
        // breaker / capacity decision and its counter update are one
        // critical section, so snapshots never observe a half-admitted
        // request and the submit-vs-shutdown race has a single arbiter.
        let mut state = self.shared.lock_state();
        let shutdown = state.shutdown;
        let Some(t) = state.tenants.get_mut(tenant) else {
            return Err(GatewayError::UnknownTenant(tenant.to_string()));
        };
        t.counters.admitted += 1;
        if shutdown {
            t.counters.rejected += 1;
            drop(state);
            req.complete(Err(ServeError::ShuttingDown));
            return Ok(handle);
        }
        let now = Instant::now();
        if let Some(dl) = deadline {
            if now >= dl {
                t.counters.expired += 1;
                drop(state);
                req.complete(Err(ServeError::DeadlineExceeded {
                    missed_by: now - dl,
                }));
                return Ok(handle);
            }
        }
        t.breaker.tick(now);
        if let Some(until) = t.breaker.reopen_at() {
            t.counters.degraded += 1;
            drop(state);
            req.complete(Err(ServeError::Degraded {
                retry_after_hint: until.saturating_duration_since(now).max(MIN_RETRY_HINT),
            }));
            return Ok(handle);
        }
        if t.queue.len() >= t.capacity {
            t.counters.overloaded += 1;
            // Best-effort hint: roughly one median service time (or one
            // linger window before any latency samples exist).
            let (p50, _) = t.latencies.percentiles();
            let hint = p50.max(self.shared.opts.max_wait).max(MIN_RETRY_HINT);
            drop(state);
            req.complete(Err(ServeError::Overloaded {
                retry_after_hint: hint,
            }));
            return Ok(handle);
        }
        t.counters.queued += 1;
        t.queue.push_back(QueueEntry {
            req,
            attempts: 0,
            retry_at: None,
        });
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(handle)
    }

    /// Hot-swap `tenant`'s program for a recompiled one, gracefully:
    /// requests already dispatched **drain against the old plan** (this
    /// call blocks until they have), requests still queued and all new
    /// admissions run on the new one.  No handle is lost: every request
    /// resolves exactly once, on whichever plan it was dispatched to.
    pub fn reload(&self, tenant: &str, program: CompiledProgram) -> Result<(), GatewayError> {
        self.reload_driver(tenant, BatchDriver::new(program))
    }

    /// [`Gateway::reload`] over a pre-configured [`BatchDriver`].
    pub fn reload_driver(&self, tenant: &str, driver: BatchDriver) -> Result<(), GatewayError> {
        driver.set_workers(self.shared.opts.workers);
        let mut state = self.shared.lock_state();
        if state.shutdown {
            return Err(GatewayError::ShuttingDown);
        }
        let Some(t) = state.tenants.get_mut(tenant) else {
            return Err(GatewayError::UnknownTenant(tenant.to_string()));
        };
        t.epoch += 1;
        let epoch = t.epoch;
        // The Arc swap is the whole cutover: the dispatcher clones the
        // exec Arc per batch, so a batch formed before this line keeps the
        // old driver (and its session pool) alive until it completes, and
        // every batch formed after it uses the new one.
        t.exec = Arc::new(TenantExec { driver, epoch });
        // Drain: wait until nothing is in flight on an older epoch.
        loop {
            let t = state
                .tenants
                .get(tenant)
                .expect("tenants are never unregistered");
            if t.counters.in_flight == 0 || t.inflight_epoch >= epoch {
                return Ok(());
            }
            state = self
                .shared
                .drain_cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Arm a deterministic [`FaultPlan`] against `tenant`'s future
    /// dispatches (replacing any previous plan; arm
    /// `FaultPlan::default()` to disarm).  A chaos-testing hook — see the
    /// [`FaultPlan`] docs.
    pub fn inject_faults(&self, tenant: &str, plan: FaultPlan) -> Result<(), GatewayError> {
        let mut state = self.shared.lock_state();
        let Some(t) = state.tenants.get_mut(tenant) else {
            return Err(GatewayError::UnknownTenant(tenant.to_string()));
        };
        t.faults = plan;
        Ok(())
    }

    /// Coherent snapshot of every tenant (all counters read under the one
    /// state lock; see [`TenantStats::conserves`]).
    pub fn stats(&self) -> GatewayStats {
        let state = self.shared.lock_state();
        let mut tenants = BTreeMap::new();
        for (name, t) in &state.tenants {
            let (p50, p95) = t.latencies.percentiles();
            let c = &t.counters;
            tenants.insert(
                name.clone(),
                TenantStats {
                    queue_depth: c.queued as usize,
                    in_flight: c.in_flight,
                    admitted: c.admitted,
                    completed: c.completed,
                    failed: c.failed,
                    cancelled: c.cancelled,
                    expired: c.expired,
                    overloaded: c.overloaded,
                    degraded: c.degraded,
                    rejected: c.rejected,
                    retried: c.retried,
                    panics: c.panics,
                    checkout_failures: c.checkout_failures,
                    batches: c.batches,
                    largest_batch: c.largest_batch,
                    breaker: t.breaker.state(),
                    breaker_trips: t.breaker.trips,
                    epoch: t.epoch,
                    weight: t.weight,
                    p50_latency: p50,
                    p95_latency: p95,
                    sessions_created: t.exec.driver.sessions_created(),
                    sessions_reused: t.exec.driver.sessions_reused(),
                    pooled_sessions: t.exec.driver.pooled_sessions(),
                    sessions_discarded: t.exec.driver.sessions_discarded(),
                },
            );
        }
        GatewayStats {
            dispatches: state.dispatches,
            tenants,
        }
    }

    /// Stop admitting, drain every tenant's queue (retry backoffs and open
    /// breakers are overridden — the drain dispatches everything, though
    /// infra-failed retries resolve with their last error instead of
    /// requeueing), and join the dispatcher.  Called automatically on
    /// drop; idempotent.  Requests submitted after shutdown resolve with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.shared.drain_cv.notify_all();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            // A panic in the dispatcher is a bug, but the gateway is
            // usually being dropped here — swallow rather than abort.
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One claimed, runnable request: its state plus the payload taken from
/// the queued phase.  When `keep_payload` is set the dispatch closure
/// *clones* the payload out (leaving the original for a possible retry);
/// otherwise it moves it.
struct GwClaimed {
    req: Arc<GwRequest>,
    payload: Mutex<Option<Payload>>,
    /// Attempts already made before this dispatch (0 = first try).
    attempts: u32,
    /// Whether the payload must survive this dispatch for a retry.
    keep_payload: bool,
    fault: FaultAction,
}

/// One formed batch: a single tenant's claimed requests plus the exec they
/// run on (Arc-pinned so a concurrent reload cannot pull the driver out
/// from under the batch).
struct GwBatch {
    tenant: String,
    exec: Arc<TenantExec>,
    delay: Duration,
    claimed: Vec<GwClaimed>,
}

/// Why one dispatched item failed inside the batch closure.
#[derive(Debug)]
enum GwItemError {
    /// Real execution error — data-dependent, breaker-neutral, not
    /// retried.
    Exec(RuntimeError),
    /// Session checkout failed — infrastructure, trips the breaker,
    /// retryable.
    Checkout(String),
}

fn dispatcher_loop(shared: &GwShared) {
    while let Some(batch) = collect_batch(shared) {
        serve_batch(shared, batch);
    }
}

/// Reject every queued request whose deadline has passed, drop entries
/// completed out-of-band (cancellation), and advance breaker cooldowns.
fn sweep(state: &mut GwState, now: Instant) {
    for t in state.tenants.values_mut() {
        t.breaker.tick(now);
        let counters = &mut t.counters;
        t.queue.retain(|entry| {
            let due = entry.req.deadline.is_some_and(|dl| now >= dl);
            let mut phase = entry.req.lock_phase();
            match &*phase {
                GwPhase::Queued { .. } if due => {
                    let dl = entry.req.deadline.expect("due implies a deadline");
                    counters.queued -= 1;
                    counters.expired += 1;
                    *phase = GwPhase::Done(Err(ServeError::DeadlineExceeded {
                        missed_by: now - dl,
                    }));
                    entry.req.done_cv.notify_all();
                    false
                }
                GwPhase::Queued { .. } => true,
                // Cancelled while queued: the handle already resolved.
                _ => false,
            }
        });
    }
}

/// Block until a batch can be formed, then claim one tenant's worth of
/// ready requests by WDRR.  Returns `None` when every queue is drained and
/// the gateway is shutting down.
fn collect_batch(shared: &GwShared) -> Option<GwBatch> {
    let max_wait = shared.opts.max_wait;
    let max_batch = shared.opts.max_batch;
    let mut state = shared.lock_state();
    loop {
        let now = Instant::now();
        sweep(&mut state, now);
        let shutdown = state.shutdown;
        // Scan for work: is any allowed tenant's batch due (oldest ready
        // entry past its linger, or a backoff elapsed) or full?  Track the
        // earliest instant anything changes so the wait below is exact.
        let mut any_queued = false;
        let mut dispatch_now = false;
        let mut wake: Option<Instant> = None;
        let bump = |wake: &mut Option<Instant>, at: Instant| {
            *wake = Some(wake.map_or(at, |w| w.min(at)));
        };
        for t in state.tenants.values() {
            if t.queue.is_empty() {
                continue;
            }
            any_queued = true;
            // Deadlines tick whether or not the tenant may dispatch.
            for e in &t.queue {
                if let Some(dl) = e.req.deadline {
                    bump(&mut wake, dl);
                }
            }
            if !t.dispatch_allowed(shutdown) {
                if let Some(until) = t.breaker.reopen_at() {
                    bump(&mut wake, until);
                }
                // Half-open with a probe in flight: its completion
                // notifies work_cv, no timed wake needed.
                continue;
            }
            let mut ready = 0usize;
            for e in &t.queue {
                let due_at = e.retry_at.unwrap_or(e.req.submitted + max_wait);
                if shutdown || e.retry_at.is_none_or(|r| r <= now) {
                    ready += 1;
                    if shutdown || due_at <= now {
                        dispatch_now = true;
                    }
                }
                bump(&mut wake, due_at);
            }
            if ready >= max_batch {
                dispatch_now = true;
            }
        }
        if shutdown && !any_queued {
            return None;
        }
        if dispatch_now {
            if let Some(batch) = wdrr_claim(shared, &mut state, now) {
                return Some(batch);
            }
        }
        // Nothing dispatchable yet: sleep until the next event (or a
        // notification).  After the sweep every tracked instant is in the
        // future unless a dispatch just happened, so this cannot spin.
        match wake {
            Some(at) if at > now => {
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(state, at - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
            Some(_) => {} // an instant is already due: re-sweep
            None => {
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Pick the next tenant by weighted deficit round-robin and claim up to
/// `min(deficit, max_batch)` of its ready requests.
fn wdrr_claim(shared: &GwShared, state: &mut GwState, now: Instant) -> Option<GwBatch> {
    let quantum = shared.opts.max_batch as u64;
    let shutdown = state.shutdown;
    // Continue spending the active tenant's earned deficit first — this is
    // what makes weight show up as consecutive dispatches.
    let mut pick = state.active.clone().filter(|name| {
        state.tenants.get(name).is_some_and(|t| {
            t.deficit >= 1 && t.dispatch_allowed(shutdown) && t.ready_count(now, shutdown) > 0
        })
    });
    if pick.is_none() {
        state.active = None;
        let n = state.rr.len();
        for k in 0..n {
            let idx = (state.cursor + k) % n;
            let name = state.rr[idx].clone();
            let t = state
                .tenants
                .get_mut(&name)
                .expect("rr names always have tenant state");
            if t.queue.is_empty() {
                // An empty queue forfeits banked credit: deficit must not
                // accumulate while a tenant has nothing to say.
                t.deficit = 0;
                continue;
            }
            if !t.dispatch_allowed(shutdown) || t.ready_count(now, shutdown) == 0 {
                continue;
            }
            // Earn this round's quantum, banking at most one unspent
            // round's worth on top of it.
            let earn = quantum * t.weight as u64;
            t.deficit = (t.deficit + earn).min(earn * 2);
            state.cursor = (idx + 1) % n;
            pick = Some(name);
            break;
        }
    }
    let name = pick?;
    let t = state
        .tenants
        .get_mut(&name)
        .expect("picked tenant exists by construction");
    // A half-open breaker dispatches exactly one probe request.
    let probe = !shutdown && t.breaker.state() == BreakerState::HalfOpen;
    let take_cap = if probe {
        1
    } else {
        t.deficit.min(quantum) as usize
    };
    let mut claimed = Vec::new();
    let mut held_back = Vec::new();
    while claimed.len() < take_cap {
        let Some(entry) = t.queue.pop_front() else {
            break;
        };
        if !(shutdown || entry.retry_at.is_none_or(|r| r <= now)) {
            held_back.push(entry);
            continue;
        }
        let mut phase = entry.req.lock_phase();
        match std::mem::replace(&mut *phase, GwPhase::Dispatched) {
            GwPhase::Queued { inputs, fetch } => {
                // Deadline re-check at claim: the race backstop behind the
                // sweep (same-now, so it only fires for entries the sweep
                // itself raced with).
                if let Some(dl) = entry.req.deadline {
                    if now >= dl {
                        t.counters.queued -= 1;
                        t.counters.expired += 1;
                        *phase = GwPhase::Done(Err(ServeError::DeadlineExceeded {
                            missed_by: now - dl,
                        }));
                        entry.req.done_cv.notify_all();
                        continue;
                    }
                }
                drop(phase);
                t.dispatch_seq += 1;
                let seq = t.dispatch_seq;
                t.counters.queued -= 1;
                t.counters.in_flight += 1;
                // During the final drain nothing is requeued, so the
                // payload may be moved rather than cloned.
                let keep_payload =
                    !shutdown && entry.req.idempotent && entry.attempts < shared.opts.retry_budget;
                claimed.push(GwClaimed {
                    req: entry.req,
                    payload: Mutex::new(Some((inputs, fetch))),
                    attempts: entry.attempts,
                    keep_payload,
                    fault: t.faults.action(seq),
                });
            }
            // Completed out-of-band (cancelled): keep the result.
            other => {
                *phase = other;
            }
        }
    }
    // Entries still awaiting backoff go back to the front, in order.
    for entry in held_back.into_iter().rev() {
        t.queue.push_front(entry);
    }
    if claimed.is_empty() {
        state.active = None;
        return None;
    }
    t.deficit = t.deficit.saturating_sub(claimed.len() as u64);
    if probe {
        t.probing = true;
        t.deficit = 0;
    }
    if t.queue.is_empty() {
        t.deficit = 0;
    }
    state.active = (t.deficit > 0 && !t.queue.is_empty()).then(|| name.clone());
    t.inflight_epoch = t.exec.epoch;
    t.counters.batches += 1;
    t.counters.largest_batch = t.counters.largest_batch.max(claimed.len());
    state.dispatches += 1;
    Some(GwBatch {
        exec: Arc::clone(&t.exec),
        delay: t.faults.delay,
        claimed,
        tenant: name,
    })
}

/// Fan one tenant's batch across its pooled sessions, then resolve or
/// retry every item under one state critical section.
fn serve_batch(shared: &GwShared, batch: GwBatch) {
    let n = batch.claimed.len();
    let out = batch.exec.driver.run_batch_with(n, |i, session| {
        let item = &batch.claimed[i];
        if !batch.delay.is_zero() {
            std::thread::sleep(batch.delay);
        }
        match item.fault {
            FaultAction::Panic(seq) => panic!("injected fault: panic on dispatch #{seq}"),
            FaultAction::Checkout(seq) => {
                return Err(GwItemError::Checkout(format!(
                    "injected fault: checkout failure on dispatch #{seq}"
                )));
            }
            FaultAction::None => {}
        }
        let (inputs, fetch) = {
            let mut payload = item.payload.lock().unwrap_or_else(|e| e.into_inner());
            if item.keep_payload {
                // Clone: the original stays behind for a possible retry.
                payload.clone()
            } else {
                payload.take()
            }
        }
        .expect("a claimed request carries its payload");
        session.clear_bindings();
        for (name, tensor) in inputs {
            session
                .set_input(&name, tensor)
                .map_err(GwItemError::Exec)?;
        }
        session.run().map_err(GwItemError::Exec)?;
        let mut outputs = HashMap::with_capacity(fetch.len());
        for name in fetch {
            let tensor = session
                .array(&name)
                .ok_or_else(|| GwItemError::Exec(RuntimeError::UnknownArray(name.clone())))?;
            outputs.insert(name, tensor.clone());
        }
        Ok((outputs, session.last_report().clone()))
    });
    // Resolve every item under ONE state critical section so a stats
    // snapshot never observes a batch half-completed relative to its
    // retries (the conservation invariant depends on this).
    let now = Instant::now();
    let mut state = shared.lock_state();
    let shutdown = state.shutdown;
    let t = state
        .tenants
        .get_mut(&batch.tenant)
        .expect("tenants are never unregistered");
    t.probing = false;
    let mut requeue: Vec<QueueEntry> = Vec::new();
    for (item, outcome) in batch.claimed.into_iter().zip(out.items) {
        t.counters.in_flight -= 1;
        match outcome {
            Ok((outputs, report)) => {
                t.breaker.on_success();
                t.counters.completed += 1;
                let latency = item.req.submitted.elapsed();
                t.latencies.record(latency);
                item.req.complete(Ok(ServeResponse {
                    outputs,
                    report,
                    latency,
                    batched_with: n,
                }));
            }
            // Data-dependent failure: resolve immediately, breaker
            // untouched — a tenant sending bad shapes is not an outage.
            Err(BatchError::Item(GwItemError::Exec(e))) => {
                t.counters.failed += 1;
                item.req.complete(Err(ServeError::Execution(e)));
            }
            Err(BatchError::Item(GwItemError::Checkout(msg))) => {
                t.counters.checkout_failures += 1;
                t.breaker.on_infra_failure(
                    shared.opts.breaker_threshold,
                    shared.opts.breaker_cooldown,
                    now,
                );
                retry_or_fail(
                    shared,
                    t,
                    item,
                    ServeError::Checkout(msg),
                    shutdown,
                    &mut requeue,
                    now,
                );
            }
            Err(BatchError::Panicked(msg)) => {
                t.counters.panics += 1;
                t.breaker.on_infra_failure(
                    shared.opts.breaker_threshold,
                    shared.opts.breaker_cooldown,
                    now,
                );
                retry_or_fail(
                    shared,
                    t,
                    item,
                    ServeError::Panicked(msg),
                    shutdown,
                    &mut requeue,
                    now,
                );
            }
        }
    }
    // Retries jump the queue (front, in original order): they have already
    // waited a full service round plus their backoff.
    for entry in requeue.into_iter().rev() {
        t.queue.push_front(entry);
    }
    drop(state);
    shared.drain_cv.notify_all();
    shared.work_cv.notify_all();
}

/// After an infrastructure failure: requeue the item for retry if its
/// payload survived and the gateway is not draining, otherwise resolve the
/// handle with the failure.
fn retry_or_fail(
    shared: &GwShared,
    t: &mut TenantState,
    item: GwClaimed,
    error: ServeError,
    shutdown: bool,
    requeue: &mut Vec<QueueEntry>,
    now: Instant,
) {
    let payload = if item.keep_payload && !shutdown {
        item.payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    } else {
        None
    };
    match payload {
        Some((inputs, fetch)) => {
            let attempt = item.attempts + 1;
            t.counters.retried += 1;
            t.counters.queued += 1;
            *item.req.lock_phase() = GwPhase::Queued { inputs, fetch };
            requeue.push(QueueEntry {
                req: item.req,
                attempts: attempt,
                retry_at: Some(now + retry_backoff(shared.opts.retry_backoff, attempt)),
            });
        }
        None => {
            t.counters.failed += 1;
            item.req.complete(Err(error));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_types_are_send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Gateway>();
        assert_sync::<Gateway>();
        assert_send::<GatewayHandle>();
        assert_sync::<GatewayHandle>();
        assert_send::<GatewayStats>();
        assert_send::<GatewayError>();
        assert_send::<FaultPlan>();
    }

    /// Closed --(threshold consecutive infra failures)--> Open
    /// --(cooldown)--> HalfOpen --(success)--> Closed, or
    /// --(failure)--> Open again.  A success mid-streak resets the count.
    #[test]
    fn breaker_state_machine_transitions() {
        let threshold = 3;
        let cooldown = Duration::from_millis(10);
        let t0 = Instant::now();
        let mut b = Breaker::new();
        assert_eq!(b.state(), BreakerState::Closed);

        b.on_infra_failure(threshold, cooldown, t0);
        b.on_infra_failure(threshold, cooldown, t0);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_success();
        b.on_infra_failure(threshold, cooldown, t0);
        b.on_infra_failure(threshold, cooldown, t0);
        assert_eq!(b.state(), BreakerState::Closed, "success reset the streak");

        b.on_infra_failure(threshold, cooldown, t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        assert_eq!(b.reopen_at(), Some(t0 + cooldown));

        // Failures while open push the horizon out, never pull it in.
        b.on_infra_failure(threshold, cooldown, t0 + Duration::from_millis(5));
        assert_eq!(b.reopen_at(), Some(t0 + Duration::from_millis(15)));
        assert_eq!(b.trips, 1, "extending an open breaker is not a new trip");

        b.tick(t0 + Duration::from_millis(14));
        assert_eq!(b.state(), BreakerState::Open, "cooldown not elapsed");
        b.tick(t0 + Duration::from_millis(15));
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Failed probe: straight back to open, counted as a trip.
        b.on_infra_failure(threshold, cooldown, t0 + Duration::from_millis(16));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2);

        b.tick(t0 + Duration::from_millis(26));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed, "successful probe closes");
    }

    /// base × 2^(attempt-1), with the exponent capped.
    #[test]
    fn retry_backoff_doubles_and_saturates() {
        let base = Duration::from_micros(500);
        assert_eq!(retry_backoff(base, 1), base);
        assert_eq!(retry_backoff(base, 2), base * 2);
        assert_eq!(retry_backoff(base, 3), base * 4);
        assert_eq!(retry_backoff(base, 11), base * 1024);
        assert_eq!(retry_backoff(base, 12), base * 1024, "exponent capped");
        assert_eq!(retry_backoff(base, 100), base * 1024);
        // attempt 0 (not produced in practice) must not underflow.
        assert_eq!(retry_backoff(base, 0), base);
    }

    #[test]
    fn fault_plan_matches_sequence_numbers() {
        let plan = FaultPlan {
            panic_on: vec![3],
            panic_every: Some(10),
            checkout_fail_on: vec![4],
            checkout_fail_every: None,
            delay: Duration::ZERO,
        };
        assert!(matches!(plan.action(3), FaultAction::Panic(3)));
        assert!(matches!(plan.action(10), FaultAction::Panic(10)));
        assert!(matches!(plan.action(20), FaultAction::Panic(20)));
        assert!(matches!(plan.action(4), FaultAction::Checkout(4)));
        assert!(matches!(plan.action(1), FaultAction::None));
        assert!(matches!(plan.action(11), FaultAction::None));
        // Panic wins when both would fire.
        let both = FaultPlan {
            panic_on: vec![5],
            checkout_fail_on: vec![5],
            ..FaultPlan::default()
        };
        assert!(matches!(both.action(5), FaultAction::Panic(5)));
        // k = 0 must not divide-by-zero nor fire on everything.
        let zero = FaultPlan {
            panic_every: Some(0),
            ..FaultPlan::default()
        };
        assert!(matches!(zero.action(7), FaultAction::None));
        // An empty plan never fires.
        assert!(matches!(FaultPlan::default().action(1), FaultAction::None));
    }

    /// The conservation check counts every lifecycle bucket and nothing
    /// attempt-level.
    #[test]
    fn tenant_stats_conservation_arithmetic() {
        let mut s = TenantStats {
            queue_depth: 2,
            in_flight: 1,
            admitted: 12,
            completed: 4,
            failed: 1,
            cancelled: 1,
            expired: 1,
            overloaded: 1,
            degraded: 1,
            rejected: 0,
            retried: 7, // attempt-level: must not affect conservation
            panics: 5,
            checkout_failures: 2,
            batches: 3,
            largest_batch: 2,
            breaker: BreakerState::Closed,
            breaker_trips: 1,
            epoch: 2,
            weight: 1,
            p50_latency: Duration::ZERO,
            p95_latency: Duration::ZERO,
            sessions_created: 0,
            sessions_reused: 0,
            pooled_sessions: 0,
            sessions_discarded: 0,
        };
        assert!(s.conserves());
        s.admitted += 1; // one request unaccounted for
        assert!(!s.conserves());
    }
}
