//! The compile-once execution API: [`compile`] lowers an SDFG into a
//! [`CompiledProgram`], and a [`Session`] runs that program many times.
//!
//! The paper's execution model is *compile once, run many*: one gradient
//! SDFG is built and lowered a single time, then executed repeatedly (the
//! training loop, the finite-difference validation sweep, the benchmark
//! repetitions).  This module makes that shape explicit in the API:
//!
//! * [`compile`] produces a [`CompiledProgram`] — an immutable, cheaply
//!   clonable handle to a lowered execution plan ([`crate::plan`]).
//!   Compilation consults a process-wide **plan cache** keyed by the SDFG
//!   fingerprint and the concrete symbol values, so compiling the same
//!   program twice returns the same shared plan without re-lowering.
//! * [`CompiledProgram::session`] opens a [`Session`]: mutable run state
//!   (tensor slab, symbol file, scratch registers) bound to the program.
//!   A session **reuses its tensor slab across runs** — transient tensors
//!   are recycled through a pool and zero-filled in place instead of being
//!   reallocated, and unbound outputs are reset in place — so repeated
//!   `run` calls perform no plan work and no per-run heap churn beyond the
//!   first execution.
//!
//! Cache observability: every [`crate::ExecutionReport`] carries the
//! hit/miss counters of the program's cache entry, per-program counters are
//! available via [`CompiledProgram::cache_stats`], and process-wide totals
//! via [`plan_cache_stats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dace_sdfg::{CondExpr, Sdfg};
use dace_tensor::Tensor;

use crate::error::{RuntimeError, RuntimeResult};
use crate::executor::{ExecutionReport, MapPath, RunState};
use crate::memory::MemoryTracker;
use crate::plan::{compile_plan, ExecPlan};

// ---------------------------------------------------------------------------
// Plan cache.
// ---------------------------------------------------------------------------

/// Hit/miss counters of the plan cache (per entry or process-wide).
///
/// A *miss* is a [`compile`] call that actually lowered the SDFG; a *hit* is
/// a call that reused an already lowered plan.  For a single cache entry the
/// miss count is therefore the number of times that exact (SDFG, symbols)
/// pair was lowered — `1` for as long as the entry lives.  Re-compiling a
/// key after its entry was evicted is a genuine second lowering: the global
/// miss counter increments again and the fresh entry starts over at
/// `misses == 1`, so the counters stay correct across eviction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Number of [`compile`] calls served from the cache.
    pub hits: u64,
    /// Number of [`compile`] calls that lowered the SDFG.
    pub misses: u64,
    /// Entries evicted under capacity pressure (least-recently-used first).
    /// Tracked process-wide: per-entry snapshots report `0` here, since an
    /// entry that was evicted no longer has stats to snapshot.
    pub evictions: u64,
    /// Fingerprint collisions detected via the structural echo: a cache key
    /// matched but the stored plan belonged to a *different* SDFG, so the
    /// lookup was treated as a miss and recompiled instead of silently
    /// serving the wrong plan.  Tracked process-wide, `0` on per-entry
    /// snapshots.
    pub collisions: u64,
}

/// Shared counters of one cache entry.
#[derive(Debug, Default)]
struct EntryStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EntryStats {
    fn snapshot(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: 0,
            collisions: 0,
        }
    }
}

/// Cheap structural summary stored next to every cache entry.  The FNV-1a
/// fingerprint is 64 bits of a textual rendering, so two different SDFGs
/// *can* collide; before trusting a key match, [`compile`] compares this
/// echo and treats a mismatch as a miss (recompile) instead of serving the
/// wrong plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StructuralEcho {
    /// Number of data containers.
    arrays: usize,
    /// Number of free symbols.
    symbols: usize,
    /// Number of states.
    states: usize,
    /// FNV-1a digest over the sorted array names (with transient flags) and
    /// the symbol names.
    names_digest: u64,
}

impl StructuralEcho {
    fn of(sdfg: &Sdfg) -> Self {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                digest ^= u64::from(*byte);
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        // `sdfg.arrays` is a BTreeMap, so iteration order is already sorted.
        for (name, desc) in &sdfg.arrays {
            mix(name.as_bytes());
            mix(&[desc.transient as u8, b';']);
        }
        for sym in &sdfg.symbols {
            mix(sym.as_bytes());
            mix(b",");
        }
        StructuralEcho {
            arrays: sdfg.arrays.len(),
            symbols: sdfg.symbols.len(),
            states: sdfg.states.len(),
            names_digest: digest,
        }
    }
}

/// Cache key: structural SDFG fingerprint plus the concrete symbol values
/// the plan was specialised for (layouts and loop bounds depend on them).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    symbols: Vec<(String, i64)>,
}

/// Default maximum number of cached plans.  A server sweeping symbol sizes
/// creates one entry per (fingerprint, symbol values) pair, so the cache is
/// a true LRU: when full, only the least-recently-used entry is evicted
/// (outstanding [`CompiledProgram`]s keep their plans alive through their
/// own `Arc`s).  Tune with [`set_plan_cache_capacity`].
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// One cached plan plus the bookkeeping the LRU and the collision check
/// need.
struct CacheEntry {
    plan: Arc<ExecPlan>,
    stats: Arc<EntryStats>,
    echo: StructuralEcho,
    /// Logical timestamp of the most recent hit or insertion.
    last_used: u64,
}

struct PlanCache {
    map: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    /// Monotonic logical clock backing `last_used`.
    tick: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            map: HashMap::new(),
            capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            tick: 0,
        }
    }
}

impl PlanCache {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict least-recently-used entries until at most `target` remain.
    fn evict_down_to(&mut self, target: usize) {
        while self.map.len() > target {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&oldest);
            GLOBAL_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn global_cache() -> &'static Mutex<PlanCache> {
    static CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(PlanCache::default()))
}

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_COLLISIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide plan-cache totals across all programs, including eviction
/// and fingerprint-collision counts.
pub fn plan_cache_stats() -> PlanCacheStats {
    PlanCacheStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
        evictions: GLOBAL_EVICTIONS.load(Ordering::Relaxed),
        collisions: GLOBAL_COLLISIONS.load(Ordering::Relaxed),
    }
}

/// Number of plans currently cached.
pub fn plan_cache_len() -> usize {
    global_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .map
        .len()
}

/// Current plan-cache capacity (maximum number of retained plans).
pub fn plan_cache_capacity() -> usize {
    global_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .capacity
}

/// Bound the process-wide plan cache at `capacity` plans (clamped to at
/// least 1).  If the cache currently holds more, least-recently-used
/// entries are evicted immediately; outstanding [`CompiledProgram`]s keep
/// their plans alive through their own `Arc`s.  Long-running servers that
/// sweep symbol sizes should size this to their working set — the default
/// is [`DEFAULT_PLAN_CACHE_CAPACITY`].
pub fn set_plan_cache_capacity(capacity: usize) {
    let mut cache = global_cache().lock().unwrap_or_else(|e| e.into_inner());
    cache.capacity = capacity.max(1);
    let target = cache.capacity;
    cache.evict_down_to(target);
}

/// Drop every cached plan (outstanding [`CompiledProgram`]s stay valid).
/// Intended for tests and long-running processes that want to bound memory.
/// An explicit clear is not counted as eviction pressure — the `evictions`
/// counter tracks only capacity-driven LRU evictions.
pub fn clear_plan_cache() {
    global_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .map
        .clear();
}

/// Deterministic FNV-1a fingerprint of the SDFG structure.
///
/// The fingerprint hashes the full `Debug` rendering of the graph (names,
/// shapes, tasklet code, memlets, control flow), so any structural change
/// produces a different key.  Two structurally identical SDFGs — e.g. the
/// same builder program constructed twice — share a fingerprint and
/// therefore a cached plan.
fn fingerprint_sdfg(sdfg: &Sdfg) -> u64 {
    let rendered = format!("{sdfg:?}");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in rendered.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// CompiledProgram.
// ---------------------------------------------------------------------------

/// Compile an SDFG under concrete symbol values into a [`CompiledProgram`].
///
/// Every symbol declared by the SDFG must have a value.  The call consults
/// the process-wide plan cache: compiling a structurally identical SDFG with
/// the same symbol values returns a handle to the *same* lowered plan, and
/// only the first call pays the lowering cost.
///
/// # Errors
/// [`RuntimeError::MissingSymbol`] when a declared symbol has no value, and
/// [`RuntimeError::InvalidSdfg`] when the static verifier finds
/// error-severity diagnostics (dangling edges, unknown arrays, rank
/// mismatches, constant out-of-bounds indices, ...).
pub fn compile(sdfg: &Sdfg, symbols: &HashMap<String, i64>) -> RuntimeResult<CompiledProgram> {
    for s in &sdfg.symbols {
        if !symbols.contains_key(s) {
            return Err(RuntimeError::MissingSymbol(s.clone()));
        }
    }
    let diagnostics: Vec<_> = sdfg
        .validate()
        .into_iter()
        .filter(|d| d.severity == dace_sdfg::Severity::Error)
        .collect();
    if !diagnostics.is_empty() {
        return Err(RuntimeError::InvalidSdfg { diagnostics });
    }
    let fingerprint = fingerprint_sdfg(sdfg);
    let echo = StructuralEcho::of(sdfg);
    let mut key_syms: Vec<(String, i64)> = symbols.iter().map(|(k, &v)| (k.clone(), v)).collect();
    key_syms.sort();
    let key = CacheKey {
        fingerprint,
        symbols: key_syms,
    };

    let mut cache = global_cache().lock().unwrap_or_else(|e| e.into_inner());
    let tick = cache.touch();
    if let Some(entry) = cache.map.get_mut(&key) {
        if entry.echo == echo {
            entry.last_used = tick;
            entry.stats.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(CompiledProgram {
                plan: Arc::clone(&entry.plan),
                symbols: Arc::new(symbols.clone()),
                stats: Arc::clone(&entry.stats),
                fingerprint,
                cache_hit: true,
            });
        }
        // Fingerprint collision: the key matches but the cached plan was
        // lowered from a structurally different SDFG.  Trusting the hash
        // would silently serve the wrong plan — recompile instead (the
        // fresh plan replaces the colliding entry below).
        GLOBAL_COLLISIONS.fetch_add(1, Ordering::Relaxed);
    }
    // Lower while holding the lock so concurrent compiles of the same key
    // produce exactly one plan (lowering is fast relative to execution).
    let plan = Arc::new(compile_plan(sdfg, symbols));
    let stats = Arc::new(EntryStats {
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(1),
    });
    GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
    cache.map.insert(
        key,
        CacheEntry {
            plan: Arc::clone(&plan),
            stats: Arc::clone(&stats),
            echo,
            last_used: tick,
        },
    );
    let target = cache.capacity;
    cache.evict_down_to(target);
    Ok(CompiledProgram {
        plan,
        symbols: Arc::new(symbols.clone()),
        stats,
        fingerprint,
        cache_hit: false,
    })
}

/// Test-only hook: compile `donor` and insert its plan under a *forged*
/// fingerprint, as if `fingerprint_sdfg` had collided.  The next `compile`
/// of an SDFG whose real fingerprint equals `fingerprint` (and whose symbol
/// values match) will find this entry, detect the structural mismatch via
/// the echo, and recompile instead of serving the donor's plan.
///
/// Exists so the collision-handling path can be exercised without having to
/// construct a real 64-bit FNV-1a collision; not part of the public API.
#[doc(hidden)]
pub fn debug_inject_plan_cache_alias(
    donor: &Sdfg,
    symbols: &HashMap<String, i64>,
    fingerprint: u64,
) {
    let plan = Arc::new(compile_plan(donor, symbols));
    let echo = StructuralEcho::of(donor);
    let mut key_syms: Vec<(String, i64)> = symbols.iter().map(|(k, &v)| (k.clone(), v)).collect();
    key_syms.sort();
    let key = CacheKey {
        fingerprint,
        symbols: key_syms,
    };
    let mut cache = global_cache().lock().unwrap_or_else(|e| e.into_inner());
    let tick = cache.touch();
    cache.map.insert(
        key,
        CacheEntry {
            plan,
            stats: Arc::new(EntryStats {
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(1),
            }),
            echo,
            last_used: tick,
        },
    );
}

/// The structural fingerprint [`compile`] keys its cache on, exposed for
/// tests that need to forge collisions (see
/// [`debug_inject_plan_cache_alias`]).
#[doc(hidden)]
pub fn debug_fingerprint_sdfg(sdfg: &Sdfg) -> u64 {
    fingerprint_sdfg(sdfg)
}

/// An SDFG lowered once into an execution plan: the immutable, shareable
/// product of [`compile`].
///
/// Cloning is cheap (the plan is behind an `Arc`); open one or more
/// [`Session`]s to actually execute it.
#[derive(Clone)]
pub struct CompiledProgram {
    plan: Arc<ExecPlan>,
    symbols: Arc<HashMap<String, i64>>,
    stats: Arc<EntryStats>,
    fingerprint: u64,
    cache_hit: bool,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("fingerprint", &self.fingerprint)
            .field("cache_hit", &self.cache_hit)
            .field("arrays", &self.plan.arrays.names.len())
            .field("states", &self.plan.states.len())
            .finish()
    }
}

impl CompiledProgram {
    /// Open an execution session for this program.
    pub fn session(&self) -> Session {
        Session {
            st: RunState::new(&self.plan),
            provided: vec![false; self.plan.arrays.names.len()],
            program: self.clone(),
        }
    }

    /// Concrete symbol values the plan was specialised for.
    pub fn symbols(&self) -> &HashMap<String, i64> {
        &self.symbols
    }

    /// Structural fingerprint of the source SDFG (one half of the cache key).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this particular [`compile`] call was served from the cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Hit/miss counters of this program's cache entry.  `misses` is the
    /// number of times this (SDFG, symbols) pair was actually lowered.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.stats.snapshot()
    }

    pub(crate) fn plan(&self) -> &ExecPlan {
        &self.plan
    }
}

// ---------------------------------------------------------------------------
// Session.
// ---------------------------------------------------------------------------

/// Mutable execution state bound to a [`CompiledProgram`]: bind inputs with
/// [`Session::set_input`], execute with [`Session::run`], read results with
/// [`Session::array`].
///
/// A session is built for repeated runs.  Each `run` starts from a clean
/// state — transients and unbound outputs are reset — but the underlying
/// tensor allocations are **reused, not reallocated**: transient tensors are
/// recycled through an internal pool and zero-filled in place.  Input
/// bindings persist across runs; note that a program which mutates an input
/// array in place (e.g. an in-place stencil) leaves the *mutated* tensor
/// bound, so callers that need fresh values must rebind before the next run
/// (or call [`Session::clear_bindings`]).
///
/// ```
/// use std::collections::HashMap;
/// use dace_frontend::{ArrayExpr, ProgramBuilder};
/// use dace_tensor::Tensor;
///
/// let mut b = ProgramBuilder::new("scale");
/// let n = b.symbol("N");
/// b.add_input("X", vec![n.clone()]).unwrap();
/// b.add_input("Y", vec![n.clone()]).unwrap();
/// b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
/// let sdfg = b.build().unwrap();
///
/// let program = dace_runtime::compile(&sdfg, &HashMap::from([("N".to_string(), 2)])).unwrap();
/// let mut session = program.session();
/// // Rebinding and re-running reuses the session's tensor slab: no plan
/// // work, no reallocation, results identical to a fresh session.
/// for scale in [1.0, 3.0] {
///     session
///         .set_input("X", Tensor::from_vec(vec![scale, scale], &[2]).unwrap())
///         .unwrap();
///     session.run().unwrap();
///     assert_eq!(session.array("Y").unwrap().data(), &[2.0 * scale; 2]);
/// }
/// ```
pub struct Session {
    program: CompiledProgram,
    st: RunState,
    /// Which non-transient arrays were bound via `set_input` (by array id).
    provided: Vec<bool>,
}

impl Session {
    /// The program this session executes.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Concrete symbol bindings of the underlying program.
    pub fn symbols(&self) -> &HashMap<String, i64> {
        self.program.symbols()
    }

    /// Bind an input array by name.  The binding persists across runs until
    /// overwritten or cleared.  Binding a *transient* array provides its
    /// initial contents (instead of the usual lazy zero-fill), matching the
    /// behaviour of the legacy `Executor`.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownArray`] for names the program does not declare
    /// and [`RuntimeError::ShapeMismatch`] when the tensor's shape does not
    /// match the array's concrete layout.
    pub fn set_input(&mut self, name: &str, tensor: Tensor) -> RuntimeResult<()> {
        let plan = self.program.plan();
        let id = plan
            .arrays
            .id(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?;
        let layout = plan.arrays.layout(id)?;
        if layout.dims.as_slice() != tensor.shape() {
            return Err(RuntimeError::ShapeMismatch {
                array: name.to_string(),
                expected: layout.dims.clone(),
                got: tensor.shape().to_vec(),
            });
        }
        self.st.slab[id as usize] = Some(tensor);
        self.provided[id as usize] = true;
        Ok(())
    }

    /// Forget every input binding.  Tensors already in the slab are reset
    /// (zero-filled in place) at the start of the next run instead of being
    /// treated as inputs.
    pub fn clear_bindings(&mut self) {
        self.provided.fill(false);
    }

    /// Attach per-state free hints: after executing state `id`, the listed
    /// transient containers are deallocated (used by the AD engine to bound
    /// the footprint of recomputation blocks).  Unknown state ids and array
    /// names are ignored, as are non-transient arrays — releasing a bound
    /// input mid-run would silently replace it with zeros on the next run.
    pub fn set_free_hints(&mut self, hints: &HashMap<usize, Vec<String>>) {
        let plan = self.program.plan();
        let mut resolved = vec![Vec::new(); plan.states.len()];
        for (&state, names) in hints {
            if state < resolved.len() {
                for name in names {
                    if let Some(id) = plan.arrays.id(name) {
                        if plan.arrays.transient[id as usize] {
                            resolved[state].push(id);
                        }
                    }
                }
            }
        }
        self.st.free_hints = resolved;
    }

    /// Builder-style variant of [`Session::set_free_hints`].
    pub fn with_free_hints(mut self, hints: &HashMap<usize, Vec<String>>) -> Self {
        self.set_free_hints(hints);
        self
    }

    /// Force a map execution path (testing/instrumentation knob).
    pub fn force_map_path(&mut self, path: MapPath) {
        self.st.path = path;
    }

    /// Force the specialized-kernel dispatch mode (testing/instrumentation
    /// knob mirroring [`Session::force_map_path`]; see [`crate::SpecMode`]).
    /// Defaults to the `DACE_SPEC` environment variable (`off`/`on`), else
    /// profile-guided `Auto`.
    pub fn force_specialization(&mut self, mode: crate::SpecMode) {
        self.st.spec_mode = mode;
    }

    /// Access an array after (or before) execution.
    pub fn array(&self, name: &str) -> Option<&Tensor> {
        self.program
            .plan()
            .arrays
            .id(name)
            .and_then(|id| self.st.slab[id as usize].as_ref())
    }

    /// Take ownership of all live arrays (inputs, outputs and surviving
    /// transients), draining the slab.  Bindings are cleared; the session
    /// stays usable, but the next run re-materialises its containers.
    pub fn take_arrays(&mut self) -> HashMap<String, Tensor> {
        self.provided.fill(false);
        let names = &self.program.plan().arrays.names;
        names
            .iter()
            .enumerate()
            .filter_map(|(id, name)| self.st.slab[id].take().map(|t| (name.clone(), t)))
            .collect()
    }

    /// The memory tracker of the most recent run (for tests and benchmarks).
    pub fn tracker(&self) -> &MemoryTracker {
        &self.st.tracker
    }

    /// The execution report of the most recent [`Session::run`] (all-zero
    /// before the first run).  [`crate::BatchDriver`] aggregates batch
    /// totals from this without requiring every caller to thread reports
    /// through.
    pub fn last_report(&self) -> &ExecutionReport {
        &self.st.report
    }

    /// Zero the last-run report.  Used by [`crate::BatchDriver`] at session
    /// checkout so per-item accounting never sees a previous tenant's run.
    pub(crate) fn reset_report(&mut self) {
        self.st.report = ExecutionReport::default();
    }

    /// Execute the program.
    ///
    /// Each run starts from a clean state: the memory tracker is reset,
    /// transient tensors left over from the previous run are recycled into
    /// the allocation pool, and non-transient arrays that were *not* bound
    /// via [`Session::set_input`] are zero-filled in place.  Results are
    /// therefore bit-identical to a run on a freshly opened session with the
    /// same bindings.
    pub fn run(&mut self) -> RuntimeResult<ExecutionReport> {
        let start = Instant::now();
        let Session {
            program,
            st,
            provided,
        } = self;
        let plan: &ExecPlan = program.plan.as_ref();

        st.report = ExecutionReport::default();
        st.tracker = MemoryTracker::new();

        // Reset the slab in place: recycle transients into the pool (their
        // allocations are reused by `ensure_allocated`), zero unbound
        // non-transients, and count + materialise non-transient containers.
        for (id, &was_provided) in provided.iter().enumerate() {
            if plan.arrays.transient[id] {
                // A transient bound via `set_input` keeps its contents (it
                // provides the initial value, as the legacy executor did);
                // anything else is recycled for in-place reuse.
                if !was_provided {
                    if let Some(t) = st.slab[id].take() {
                        st.pool[id] = Some(t);
                    }
                }
            } else {
                let layout = plan.arrays.layout(id as u32)?;
                match st.slab[id].as_mut() {
                    Some(t) if !was_provided => t.data_mut().fill(0.0),
                    Some(_) => {}
                    None => {
                        // Outputs that were not provided start as zeros.
                        st.slab[id] = Some(Tensor::zeros(&layout.dims));
                    }
                }
                st.tracker.alloc(&plan.arrays.names[id], layout.bytes);
            }
        }

        st.syms = plan.init_syms.clone();
        st.exec_cfg(plan, &plan.cfg)?;

        st.report.elapsed = start.elapsed();
        st.report.peak_bytes = st.tracker.peak_bytes();
        st.report.final_bytes = st.tracker.current_bytes();
        let cache = program.stats.snapshot();
        st.report.plan_cache_hits = cache.hits;
        st.report.plan_cache_misses = cache.misses;
        Ok(st.report.clone())
    }

    /// Evaluate a control-flow condition against explicit string bindings.
    ///
    /// Retained for source compatibility with pre-plan callers; internal
    /// execution evaluates the lowered `PlanCond` over the symbol file
    /// instead, so changes to condition semantics belong there first.
    pub fn eval_cond(
        &mut self,
        cond: &CondExpr,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<bool> {
        match cond {
            CondExpr::Cmp { lhs, op, rhs } => {
                let a = self.eval_cond_operand(lhs, bindings)?;
                let b = self.eval_cond_operand(rhs, bindings)?;
                Ok(op.apply(a, b))
            }
            CondExpr::Not(inner) => Ok(!self.eval_cond(inner, bindings)?),
            CondExpr::StoredFlag(name) => {
                self.ensure_allocated_by_name(name)?;
                let t = self
                    .array(name)
                    .ok_or_else(|| RuntimeError::UnknownArray(name.clone()))?;
                Ok(t.data().first().copied().unwrap_or(0.0) != 0.0)
            }
        }
    }

    fn eval_cond_operand(
        &mut self,
        op: &dace_sdfg::CondOperand,
        bindings: &HashMap<String, i64>,
    ) -> RuntimeResult<f64> {
        use dace_sdfg::CondOperand;
        match op {
            CondOperand::Const(v) => Ok(*v),
            CondOperand::Sym(e) => Ok(e.eval(bindings)? as f64),
            CondOperand::Element { array, index } => {
                self.ensure_allocated_by_name(array)?;
                let idx: Vec<i64> = index
                    .iter()
                    .map(|e| e.eval(bindings))
                    .collect::<Result<_, _>>()?;
                let t = self
                    .array(array)
                    .ok_or_else(|| RuntimeError::UnknownArray(array.clone()))?;
                let uidx: Vec<usize> = idx
                    .iter()
                    .map(|&v| {
                        if v < 0 {
                            Err(RuntimeError::BadIndex {
                                array: array.clone(),
                                index: idx.clone(),
                            })
                        } else {
                            Ok(v as usize)
                        }
                    })
                    .collect::<Result<_, _>>()?;
                t.at(&uidx).map_err(|_| RuntimeError::BadIndex {
                    array: array.clone(),
                    index: idx.clone(),
                })
            }
        }
    }

    fn ensure_allocated_by_name(&mut self, name: &str) -> RuntimeResult<()> {
        let id = self
            .program
            .plan()
            .arrays
            .id(name)
            .ok_or_else(|| RuntimeError::UnknownArray(name.to_string()))?;
        let Session { program, st, .. } = self;
        st.ensure_allocated(program.plan.as_ref(), id)
    }
}
