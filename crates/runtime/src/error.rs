//! Runtime error type.

use std::fmt;

use dace_sdfg::{Diagnostic, SymError};
use dace_tensor::TensorError;

/// Errors raised while executing an SDFG.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// A required symbol value was not provided.
    MissingSymbol(String),
    /// A non-transient input array was not provided.
    MissingInput(String),
    /// An array referenced during execution is not declared.
    UnknownArray(String),
    /// A provided input has the wrong shape.
    ShapeMismatch {
        array: String,
        expected: Vec<usize>,
        got: Vec<usize>,
    },
    /// A memlet index evaluated to a negative or out-of-bounds value.
    BadIndex { array: String, index: Vec<i64> },
    /// A map iteration domain is too large to count in a `usize`.
    MapDomainOverflow { sizes: Vec<usize> },
    /// A symbolic expression could not be evaluated.
    Symbolic(String),
    /// A tensor kernel failed.
    Tensor(String),
    /// A tasklet evaluation failed.
    Tasklet(String),
    /// The dataflow graph of a state is cyclic.
    CyclicGraph(String),
    /// Structural error (missing connectors, wrong library usage, ...).
    Malformed(String),
    /// The static verifier rejected the SDFG before lowering.  Carries
    /// every error-severity diagnostic (warnings are not included).
    InvalidSdfg { diagnostics: Vec<Diagnostic> },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingSymbol(s) => write!(f, "missing symbol value for `{s}`"),
            RuntimeError::MissingInput(s) => write!(f, "missing input array `{s}`"),
            RuntimeError::UnknownArray(s) => write!(f, "unknown array `{s}`"),
            RuntimeError::ShapeMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array `{array}` has shape {got:?}, expected {expected:?}"
            ),
            RuntimeError::BadIndex { array, index } => {
                write!(f, "index {index:?} out of bounds for array `{array}`")
            }
            RuntimeError::MapDomainOverflow { sizes } => {
                write!(f, "map iteration domain {sizes:?} overflows usize")
            }
            RuntimeError::Symbolic(m) => write!(f, "symbolic evaluation error: {m}"),
            RuntimeError::Tensor(m) => write!(f, "tensor kernel error: {m}"),
            RuntimeError::Tasklet(m) => write!(f, "tasklet evaluation error: {m}"),
            RuntimeError::CyclicGraph(s) => write!(f, "cyclic dataflow graph in state `{s}`"),
            RuntimeError::Malformed(m) => write!(f, "malformed SDFG: {m}"),
            RuntimeError::InvalidSdfg { diagnostics } => {
                write!(
                    f,
                    "SDFG failed validation with {} error(s):",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<SymError> for RuntimeError {
    fn from(e: SymError) -> Self {
        RuntimeError::Symbolic(e.to_string())
    }
}

impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e.to_string())
    }
}

/// Result alias for runtime operations.
pub type RuntimeResult<T> = Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RuntimeError::MissingInput("A".into());
        assert!(e.to_string().contains("A"));
        let e = RuntimeError::BadIndex {
            array: "B".into(),
            index: vec![-1, 2],
        };
        assert!(e.to_string().contains("B"));
    }
}
