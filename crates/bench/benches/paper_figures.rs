//! Criterion benches covering the paper's figures.
//!
//! One benchmark group per figure/table of the evaluation section:
//! * `fig10_vectorized`  — gradient time per vectorized kernel, DaCe AD vs baseline
//! * `fig11_nonvectorized` — gradient time per loop kernel, DaCe AD vs baseline
//! * `fig12_seidel2d_sweep` — Seidel2d gradient time over input sizes
//! * `fig13_ilp_checkpoint` — store-all vs recompute-all vs ILP configurations
//!
//! Sizes are the scaled `Preset::Bench` sizes (see DESIGN.md §4); the
//! per-figure report binaries print the full tables.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dace_ad::{AdOptions, CheckpointStrategy, GradientEngine};
use npbench::{kernels_in, Category, Preset, Sizes};

fn bench_category(c: &mut Criterion, group_name: &str, category: Category) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for kernel in kernels_in(category) {
        let sizes = kernel.sizes(Preset::Test);
        let inputs = kernel.inputs(&sizes);
        let sdfg = kernel.build_dace(&sizes);
        let symbols = kernel.symbols(&sizes);
        let wrt = kernel.wrt();
        let mut engine =
            GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("dace_ad", kernel.name()),
            &inputs,
            |b, inputs| b.iter(|| engine.run(inputs).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", kernel.name()),
            &inputs,
            |b, inputs| b.iter(|| kernel.run_jax(&sizes, inputs)),
        );
    }
    group.finish();
}

fn fig10_vectorized(c: &mut Criterion) {
    bench_category(c, "fig10_vectorized", Category::Vectorized);
}

fn fig11_nonvectorized(c: &mut Criterion) {
    bench_category(c, "fig11_nonvectorized", Category::Loops);
}

fn fig12_seidel2d_sweep(c: &mut Criterion) {
    let kernel = npbench::kernel_by_name("seidel2d").unwrap();
    let mut group = c.benchmark_group("fig12_seidel2d_sweep");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let sizes = Sizes::new(n, 0, 2);
        let inputs = kernel.inputs(&sizes);
        let sdfg = kernel.build_dace(&sizes);
        let symbols = kernel.symbols(&sizes);
        let wrt = kernel.wrt();
        let mut engine =
            GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("dace_ad", n), &inputs, |b, inputs| {
            b.iter(|| engine.run(inputs).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &inputs, |b, inputs| {
            b.iter(|| kernel.run_jax(&sizes, inputs))
        });
    }
    group.finish();
}

fn fig13_ilp_checkpoint(c: &mut Criterion) {
    use dace_frontend::{ArrayExpr, ProgramBuilder};
    let n: usize = 96;
    let mut b = ProgramBuilder::new("listing1");
    let sym_n = b.symbol("N");
    b.add_input("C", vec![sym_n.clone(), sym_n.clone()])
        .unwrap();
    b.add_input("D", vec![sym_n.clone(), sym_n.clone()])
        .unwrap();
    for t in ["A0", "A1", "A2", "sin0", "sin1", "sin2", "D1", "D2", "tmp"] {
        b.add_transient(t, vec![sym_n.clone(), sym_n.clone()])
            .unwrap();
    }
    b.add_scalar("OUT").unwrap();
    b.assign("A0", ArrayExpr::a("C").mul(ArrayExpr::a("D")));
    b.assign("sin0", ArrayExpr::a("A0").sin());
    b.assign("D1", ArrayExpr::a("D").mul(ArrayExpr::s(6.0)));
    b.assign("A1", ArrayExpr::a("C").mul(ArrayExpr::a("D1")));
    b.assign("sin1", ArrayExpr::a("A1").sin());
    b.assign("D2", ArrayExpr::a("D1").mul(ArrayExpr::s(3.0)));
    b.assign("A2", ArrayExpr::a("C").mul(ArrayExpr::a("D2")));
    b.assign("sin2", ArrayExpr::a("A2").sin());
    b.assign(
        "tmp",
        ArrayExpr::a("sin0")
            .add(ArrayExpr::a("sin1"))
            .add(ArrayExpr::a("sin2")),
    );
    b.sum_into("OUT", "tmp", false);
    let fwd = b.build().unwrap();

    let mut symbols = HashMap::new();
    symbols.insert("N".to_string(), n as i64);
    let mut inputs = HashMap::new();
    inputs.insert("C".to_string(), dace_tensor::random::uniform(&[n, n], 61));
    inputs.insert("D".to_string(), dace_tensor::random::uniform(&[n, n], 62));

    let mut group = c.benchmark_group("fig13_ilp_checkpoint");
    group.sample_size(10);
    let strategies: Vec<(&str, CheckpointStrategy)> = vec![
        ("store_all", CheckpointStrategy::StoreAll),
        ("recompute_all", CheckpointStrategy::RecomputeAll),
        (
            "ilp",
            CheckpointStrategy::Ilp {
                memory_limit_bytes: 9 * n * n * 8,
            },
        ),
    ];
    for (label, strategy) in strategies {
        let mut engine =
            GradientEngine::new(&fwd, "OUT", &["C", "D"], &symbols, &AdOptions { strategy })
                .unwrap();
        group.bench_with_input(BenchmarkId::new(label, n), &inputs, |b, inputs| {
            b.iter(|| engine.run(inputs).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    fig10_vectorized,
    fig11_nonvectorized,
    fig12_seidel2d_sweep,
    fig13_ilp_checkpoint
);
criterion_main!(figures);
