//! Fig. 1 — headline speedups of DaCe AD over the JAX-like baseline on a
//! selection of NPBench kernels.
use dace_bench::{fig1_kernel_names, measure_kernel, print_table};
use npbench::{kernel_by_name, Preset};

fn main() {
    let mut rows = Vec::new();
    for name in fig1_kernel_names() {
        let kernel = kernel_by_name(name).expect("kernel registered");
        match measure_kernel(kernel.as_ref(), Preset::Bench, 3) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("{name}: {e}"),
        }
    }
    rows.sort_by(|a, b| b.speedup.partial_cmp(&a.speedup).unwrap());
    print_table("Fig. 1: DaCe AD vs JAX-like baseline (headline)", &rows);
}
