//! Fig. 11 — non-vectorized benchmarks: runtime/speedup plus the
//! forward-pass program-size comparison.
use dace_bench::{loc_comparison, measure_kernel, print_table};
use npbench::{kernels_in, Category, Preset};

fn main() {
    let kernels = kernels_in(Category::Loops);
    let mut rows = Vec::new();
    for kernel in &kernels {
        match measure_kernel(kernel.as_ref(), Preset::Bench, 2) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("{}: {e}", kernel.name()),
        }
    }
    rows.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap());
    print_table("Fig. 11 (top): non-vectorized benchmarks", &rows);

    println!("\n=== Fig. 11 (bottom): forward-pass program size (statements) ===");
    println!(
        "{:<12} {:>10} {:>10} {:>8}",
        "kernel", "DaCe AD", "baseline", "ratio"
    );
    for (name, dace, jax) in loc_comparison(&kernels) {
        println!(
            "{:<12} {:>10} {:>10} {:>7.2}x",
            name,
            dace,
            jax,
            jax as f64 / dace.max(1) as f64
        );
    }
}
