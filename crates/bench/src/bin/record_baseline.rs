//! Record or check perf baselines for the figure kernels.
//!
//! Record mode runs every NPBench kernel's DaCe-AD gradient at the chosen
//! preset, plus synthetic rows — `fd_validation` (one
//! finite-difference validation sweep at a fixed small 12×10 atax size,
//! guarding the compile-once property: one forward lowering per sweep
//! instead of two per input element), `batch_throughput` (batched gradient
//! serving of atax + jacobi2d through `BatchDriver`, guarding the per-item
//! cost of the batched path; the row also records items/sec for both the
//! serial loop and the batched driver) and `serve_latency` (open-loop
//! dynamic-admission serving of the same kernels through `ServeDriver`,
//! guarding the per-request cost of the serve path; the row also records
//! p50/p95 latency and the observed coalescing) — and writes one JSON
//! object per row to the output file.  A fourth synthetic row,
//! `specialized_kernels`, times the forward loop kernels through the plan
//! specialization tier (forced on) against the VM interpreter (forced off)
//! over identical compiled plans, verifying bit-identical results and that
//! specialization actually fired before recording; its `dace_ms` is the
//! specialized-path total, with the VM total and the geometric-mean speedup
//! as extra keys.
//!
//! Every figure is validated before rendering: a non-finite or non-positive
//! `dace_ms` (a zero-elapsed clock, an `inf` ratio) is a hard error, so a
//! degenerate measurement can never be written into the baseline file where
//! compare mode would silently ratio against it.
//!
//! Compare mode re-measures and exits non-zero when any row regressed by
//! more than `--max-regression` (default 0.25 = 25%) against the stored
//! `dace_ms`, which is what the CI `bench-smoke` job runs.
//!
//! Full methodology (presets, best-of-N policy, row schema) is documented in
//! `docs/benchmarking.md`; `--help` prints the usage summary below.
//!
//! The JSON is written one row per line and parsed with a minimal scanner
//! (no serde in the offline build); extra keys such as the hand-recorded
//! `pre_pr_ms` history and the throughput fields of `batch_throughput` are
//! preserved by ignoring them.

use std::collections::{BTreeMap, HashMap};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use dace_runtime::{compile, CompiledProgram, SpecMode};
use dace_tensor::Tensor;
use npbench::runner::{
    percentile_ms, serve_options, time_batch, time_dace, time_fd_validation, time_serve,
};
use npbench::{all_kernels, kernel_by_name, Preset};

/// Batch size per kernel for the `batch_throughput` row.
const BATCH_ITEMS: usize = 8;

/// Kernels aggregated into the `batch_throughput` row (one vectorized, one
/// loop-heavy, per the figure split).
const BATCH_KERNELS: [&str; 2] = ["atax", "jacobi2d"];

/// Requests per kernel for the `serve_latency` row (two full admission
/// batches at the default `max_batch = 8`).
const SERVE_REQUESTS: usize = 16;

/// Kernels aggregated into the `serve_latency` row (same pair as the batch
/// row, so the two serving layers are compared on identical work).
const SERVE_KERNELS: [&str; 2] = ["atax", "jacobi2d"];

/// Forward loop kernels whose lowered plans carry specializable loop nests —
/// the `specialized_kernels` row times exactly these, VM vs specialized.
const SPEC_KERNELS: [&str; 6] = ["seidel2d", "jacobi2d", "syrk", "syr2k", "trmm", "conv2d"];

/// Consecutive runs per timed sample of the `specialized_kernels` row.  A
/// single specialized forward run is sub-millisecond at the bench preset, so
/// one-run samples are dominated by scheduler noise; timing a block and
/// dividing keeps the row stable enough for the 25% regression gate.
const SPEC_RUNS_PER_SAMPLE: usize = 10;

const USAGE: &str = "\
Usage: record_baseline [OPTIONS]

Record mode (default) measures every NPBench kernel's DaCe-AD gradient at
the chosen preset, plus the `fd_validation` row (one finite-difference sweep
at a fixed 12x10 atax size), the `batch_throughput` row (batched serving
of atax + jacobi2d via BatchDriver; its `dace_ms` is the batched
milliseconds per item, and the row also records serial/batched items-per-sec
and the fan-out width) and the `serve_latency` row (open-loop
dynamic-admission serving of the same kernels via ServeDriver; its `dace_ms`
is wall-clock per request, with p50/p95 latency and the largest coalesced
batch as extra keys) and the `specialized_kernels` row (forward loop kernels
through the plan specialization tier vs the VM on identical compiled plans,
cross-checked bit for bit; its `dace_ms` is the specialized-path total, with
the VM total and geomean speedup as extra keys), then writes one JSON object
per row.  Non-finite or non-positive figures abort recording.

Compare mode re-measures and exits non-zero when any row's `dace_ms`
regressed by more than --max-regression (default 0.25 = 25%).

Options:
  --preset bench|test      problem-size preset (default: bench)
  --reps N                 best-of-N timing repetitions (default: 3)
  --out FILE               record mode: write rows to FILE (default: stdout)
  --compare FILE           compare mode: check against the rows in FILE
  --max-regression R       compare mode: allowed slowdown ratio (default 0.25)
  --help                   print this message

See docs/benchmarking.md for the methodology and the baseline row schema.
";

struct Args {
    preset: Preset,
    reps: usize,
    out: Option<String>,
    compare: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        preset: Preset::Bench,
        reps: 3,
        out: None,
        compare: None,
        max_regression: 0.25,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for `{}`", argv[i]))
        };
        match argv[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--preset" => {
                args.preset = match need(i)?.as_str() {
                    "bench" => Preset::Bench,
                    "test" => Preset::Test,
                    other => return Err(format!("unknown preset `{other}`")),
                };
                i += 2;
            }
            "--reps" => {
                args.reps = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --reps value: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = Some(need(i)?.clone());
                i += 2;
            }
            "--compare" => {
                args.compare = Some(need(i)?.clone());
                i += 2;
            }
            "--max-regression" => {
                args.max_regression = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-regression value: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

/// The `batch_throughput` row: batched serving of [`BATCH_KERNELS`] through
/// `BatchDriver`, aggregated over both kernels.
struct BatchRow {
    /// Batched milliseconds per item — the regression-guarded figure.
    dace_ms: f64,
    /// Items/sec of the serial single-session loop over the same batches.
    serial_items_per_sec: f64,
    /// Items/sec of the batched driver.
    batched_items_per_sec: f64,
    /// `serial / batched` wall-clock ratio.
    speedup: f64,
    /// Effective fan-out width of the batched runs.
    workers: usize,
    /// Total items served (batch size × kernels).
    items: usize,
}

/// The `serve_latency` row: open-loop serving of [`SERVE_KERNELS`] through
/// the dynamic-admission `ServeDriver` (unpaced submissions, default
/// admission options), aggregated over both kernels.
struct ServeRow {
    /// Wall-clock per request (first submit to last completion) — the
    /// regression-guarded figure.
    dace_ms: f64,
    /// Median submit-to-completion latency across all requests.
    p50_ms: f64,
    /// 95th-percentile submit-to-completion latency.
    p95_ms: f64,
    /// Total requests served (requests × kernels).
    requests: usize,
    /// Largest number of requests one dispatch coalesced.
    largest_batch: usize,
}

/// The `specialized_kernels` row: the forward loop kernels run through the
/// plan specialization tier vs the VM interpreter on identical compiled
/// plans — the interpreter-gap figure of the specialization PR.
struct SpecRow {
    /// Specialized-path milliseconds summed over [`SPEC_KERNELS`] — the
    /// regression-guarded figure.
    dace_ms: f64,
    /// VM-interpreter milliseconds over the identical work.
    vm_ms: f64,
    /// Geometric mean of the per-kernel `vm / specialized` speedups.
    speedup_geomean: f64,
    /// Kernels aggregated into the row.
    kernels: usize,
}

/// Post-warm-up bit pattern of every array, sorted by name.
type ArrayBits = Vec<(String, Vec<u64>)>;

/// Best-of-`reps` forward run time under `mode`, plus the post-warm-up bit
/// pattern of every array (sorted by name) and the warm run's specialized
/// dispatch count.
fn time_forward(
    program: &CompiledProgram,
    inputs: &HashMap<String, Tensor>,
    mode: SpecMode,
    reps: usize,
) -> Result<(Duration, ArrayBits, u64), String> {
    let mut session = program.session();
    session.force_specialization(mode);
    for (name, tensor) in inputs {
        session
            .set_input(name, tensor.clone())
            .map_err(|e| e.to_string())?;
    }
    let report = session.run().map_err(|e| e.to_string())?;
    let mut names: Vec<&String> = inputs.keys().collect();
    names.sort();
    let mut state = Vec::new();
    for name in names.into_iter().map(String::as_str).chain(["OUT"]) {
        let tensor = session
            .array(name)
            .ok_or_else(|| format!("array `{name}` missing after run"))?;
        state.push((
            name.to_string(),
            tensor.data().iter().map(|v| v.to_bits()).collect(),
        ));
    }
    // Timed repetitions continue from the post-warm-up state: the loop trip
    // counts are data-independent, so the workload is identical every rep.
    // Each sample times a block of runs (see [`SPEC_RUNS_PER_SAMPLE`]) and
    // reports the per-run mean of the best block.
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..SPEC_RUNS_PER_SAMPLE {
            session.run().map_err(|e| e.to_string())?;
        }
        best = best.min(start.elapsed() / SPEC_RUNS_PER_SAMPLE as u32);
    }
    Ok((best, state, report.specialized_dispatches))
}

fn measure_spec(preset: Preset, reps: usize) -> Result<SpecRow, String> {
    let mut spec_secs = 0.0f64;
    let mut vm_secs = 0.0f64;
    let mut log_speedups = 0.0f64;
    for name in SPEC_KERNELS {
        let kernel = kernel_by_name(name).expect("spec kernel is registered");
        let sizes = kernel.sizes(preset);
        let sdfg = kernel.build_dace(&sizes);
        let symbols = kernel.symbols(&sizes);
        let program = compile(&sdfg, &symbols).map_err(|e| format!("{name}: {e}"))?;
        let inputs = kernel.inputs(&sizes);
        let (vm, vm_state, vm_dispatches) =
            time_forward(&program, &inputs, SpecMode::ForceOff, reps)
                .map_err(|e| format!("{name}: {e}"))?;
        let (spec, spec_state, spec_dispatches) =
            time_forward(&program, &inputs, SpecMode::ForceOn, reps)
                .map_err(|e| format!("{name}: {e}"))?;
        // The row is only honest if the two paths actually diverged in
        // dispatch and converged in result: record nothing otherwise.
        if vm_dispatches != 0 {
            return Err(format!("{name}: VM path reported specialized dispatches"));
        }
        if spec_dispatches == 0 {
            return Err(format!(
                "{name}: specialization never fired — the row would time the VM twice"
            ));
        }
        if vm_state != spec_state {
            return Err(format!(
                "{name}: specialized results diverge bitwise from the VM"
            ));
        }
        vm_secs += vm.as_secs_f64();
        spec_secs += spec.as_secs_f64();
        log_speedups += (vm.as_secs_f64() / spec.as_secs_f64()).ln();
    }
    Ok(SpecRow {
        dace_ms: spec_secs * 1e3,
        vm_ms: vm_secs * 1e3,
        speedup_geomean: (log_speedups / SPEC_KERNELS.len() as f64).exp(),
        kernels: SPEC_KERNELS.len(),
    })
}

fn measure_serve(preset: Preset, reps: usize) -> Result<ServeRow, String> {
    let options = serve_options(8, 2.0, 0);
    let mut requests = 0usize;
    let mut total_secs = 0.0f64;
    let mut latencies = Vec::new();
    let mut largest_batch = 0usize;
    for name in SERVE_KERNELS {
        let kernel = kernel_by_name(name).expect("serve kernel is registered");
        let sizes = kernel.sizes(preset);
        let t = time_serve(
            kernel.as_ref(),
            &sizes,
            SERVE_REQUESTS,
            0.0,
            None,
            options.clone(),
            reps,
        )
        .map_err(|e| format!("{name}: {e}"))?;
        if t.lost > 0 || t.failed > 0 || t.expired > 0 {
            return Err(format!(
                "{name}: serve row lost/failed/expired requests ({}/{}/{})",
                t.lost, t.failed, t.expired
            ));
        }
        requests += t.requests;
        total_secs += t.elapsed.as_secs_f64();
        latencies.extend(t.latencies_ms);
        largest_batch = largest_batch.max(t.largest_batch);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(ServeRow {
        dace_ms: total_secs / requests as f64 * 1e3,
        p50_ms: percentile_ms(&latencies, 0.50),
        p95_ms: percentile_ms(&latencies, 0.95),
        requests,
        largest_batch,
    })
}

fn measure_batch(preset: Preset, reps: usize) -> Result<BatchRow, String> {
    let mut items = 0usize;
    let mut serial_secs = 0.0f64;
    let mut batched_secs = 0.0f64;
    let mut workers = 1usize;
    for name in BATCH_KERNELS {
        let kernel = kernel_by_name(name).expect("batch kernel is registered");
        let sizes = kernel.sizes(preset);
        let t = time_batch(kernel.as_ref(), &sizes, BATCH_ITEMS, reps, 0)
            .map_err(|e| format!("{name}: {e}"))?;
        items += t.items;
        serial_secs += t.serial.as_secs_f64();
        batched_secs += t.batched.as_secs_f64();
        workers = t.workers;
    }
    Ok(BatchRow {
        dace_ms: batched_secs / items as f64 * 1e3,
        serial_items_per_sec: items as f64 / serial_secs.max(1e-12),
        batched_items_per_sec: items as f64 / batched_secs.max(1e-12),
        speedup: serial_secs / batched_secs.max(1e-12),
        workers,
        items,
    })
}

/// Measure every kernel (`name -> gradient time in ms`) plus the
/// `fd_validation`, `batch_throughput` and `serve_latency` rows.  A kernel
/// that fails to produce a gradient is a hard error: silently dropping it
/// would let a broken kernel pass both record and compare modes.
#[allow(clippy::type_complexity)]
fn measure(
    preset: Preset,
    reps: usize,
) -> Result<(BTreeMap<String, f64>, BatchRow, ServeRow, SpecRow), String> {
    let mut out = BTreeMap::new();
    let mut failures = Vec::new();
    for kernel in all_kernels() {
        let sizes = kernel.sizes(preset);
        let inputs = kernel.inputs(&sizes);
        match time_dace(kernel.as_ref(), &sizes, &inputs, reps) {
            Ok(t) => {
                out.insert(kernel.name().to_string(), t.elapsed.as_secs_f64() * 1e3);
            }
            Err(e) => {
                eprintln!("{}: measurement failed: {e}", kernel.name());
                failures.push(kernel.name().to_string());
            }
        }
    }
    // Finite-difference validation sweep (atax at a fixed small size — FD
    // is the validation path and is quadratic in the input size; 12×10
    // gives a 240-evaluation sweep long enough to time stably).  Guards the
    // compile-once property: one forward lowering per sweep, not 2·len.
    let kernel = kernel_by_name("atax").expect("atax is registered");
    let sizes = npbench::Sizes::new(12, 10, 0);
    let inputs = kernel.inputs(&sizes);
    match time_fd_validation(kernel.as_ref(), &sizes, &inputs, reps) {
        Ok(t) => {
            out.insert("fd_validation".to_string(), t.elapsed.as_secs_f64() * 1e3);
        }
        Err(e) => {
            eprintln!("fd_validation: measurement failed: {e}");
            failures.push("fd_validation".to_string());
        }
    }
    // Batched serving throughput (atax + jacobi2d through `BatchDriver`).
    // Guards the per-item cost of the batched path; the extra row fields
    // record the serial-vs-batched items/sec comparison.
    let batch = match measure_batch(preset, reps) {
        Ok(b) => {
            out.insert("batch_throughput".to_string(), b.dace_ms);
            Some(b)
        }
        Err(e) => {
            eprintln!("batch_throughput: measurement failed: {e}");
            failures.push("batch_throughput".to_string());
            None
        }
    };
    // Dynamic-admission serving latency (atax + jacobi2d through
    // `ServeDriver`).  Guards the per-request cost of the serve path —
    // admission queue, handle completion and batching overhead included.
    let serve = match measure_serve(preset, reps) {
        Ok(s) => {
            out.insert("serve_latency".to_string(), s.dace_ms);
            Some(s)
        }
        Err(e) => {
            eprintln!("serve_latency: measurement failed: {e}");
            failures.push("serve_latency".to_string());
            None
        }
    };
    // Plan-specialization tier vs VM on the forward loop kernels.  Guards
    // the interpreter-gap closure: a recognition regression shows up either
    // as "specialization never fired" (hard error) or a dace_ms regression.
    let spec = match measure_spec(preset, reps) {
        Ok(s) => {
            out.insert("specialized_kernels".to_string(), s.dace_ms);
            Some(s)
        }
        Err(e) => {
            eprintln!("specialized_kernels: measurement failed: {e}");
            failures.push("specialized_kernels".to_string());
            None
        }
    };
    if let Err(e) = validate_rows(&out) {
        return Err(format!("degenerate measurement: {e}"));
    }
    match (batch, serve, spec) {
        (Some(batch), Some(serve), Some(spec)) if failures.is_empty() => {
            Ok((out, batch, serve, spec))
        }
        _ => Err(format!(
            "kernel(s) failed to measure: {}",
            failures.join(", ")
        )),
    }
}

/// Refuse to record a degenerate figure.  Every `dace_ms` must be finite
/// and strictly positive: a zero (unresolvable clock), `inf` (zero-elapsed
/// ratio) or `NaN` written into the baseline would make compare mode's
/// `now / baseline` ratio meaningless — a NaN comparison is `false`, so the
/// regression gate would silently pass forever.
fn validate_rows(rows: &BTreeMap<String, f64>) -> Result<(), String> {
    for (name, ms) in rows {
        if !ms.is_finite() || *ms <= 0.0 {
            return Err(format!("row `{name}` measured a non-usable value ({ms})"));
        }
    }
    Ok(())
}

fn preset_name(p: Preset) -> &'static str {
    match p {
        Preset::Bench => "bench",
        Preset::Test => "test",
    }
}

fn render(
    preset: Preset,
    reps: usize,
    rows: &BTreeMap<String, f64>,
    batch: &BatchRow,
    serve: &ServeRow,
    spec: &SpecRow,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"preset\": \"{}\",\n", preset_name(preset)));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str("  \"kernels\": [\n");
    let n = rows.len();
    for (i, (name, ms)) in rows.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        if name == "batch_throughput" {
            // The throughput row carries the serial-vs-batched comparison as
            // extra keys (ignored by the compare-mode scanner).
            s.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"dace_ms\": {ms:.3}, \
                 \"batch_items\": {}, \"workers\": {}, \
                 \"serial_items_per_sec\": {:.1}, \"batched_items_per_sec\": {:.1}, \
                 \"batch_speedup\": {:.2} }}{comma}\n",
                batch.items,
                batch.workers,
                batch.serial_items_per_sec,
                batch.batched_items_per_sec,
                batch.speedup,
            ));
        } else if name == "specialized_kernels" {
            // The specialization row carries the VM comparison as extra keys
            // (ignored by the compare-mode scanner).
            s.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"dace_ms\": {ms:.3}, \
                 \"vm_ms\": {:.3}, \"spec_speedup_geomean\": {:.2}, \
                 \"spec_kernels\": {} }}{comma}\n",
                spec.vm_ms, spec.speedup_geomean, spec.kernels,
            ));
        } else if name == "serve_latency" {
            // The serving row carries latency percentiles and the observed
            // coalescing as extra keys (ignored by the compare scanner).
            s.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"dace_ms\": {ms:.3}, \
                 \"requests\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                 \"largest_batch\": {} }}{comma}\n",
                serve.requests, serve.p50_ms, serve.p95_ms, serve.largest_batch,
            ));
        } else {
            s.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"dace_ms\": {ms:.3} }}{comma}\n"
            ));
        }
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal scanner for the file format above: one kernel object per line
/// carrying `"name": "..."` and `"dace_ms": <float>`.  Unknown keys on the
/// same line are ignored.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "\"name\"") else {
            continue;
        };
        let Some(ms) = extract_num(line, "\"dace_ms\"") else {
            continue;
        };
        out.insert(name, ms);
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("record_baseline: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.compare {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("record_baseline: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            eprintln!("record_baseline: no kernels found in `{path}`");
            return ExitCode::from(2);
        }
        let (now, _, _, _) = match measure(args.preset, args.reps) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("record_baseline: {e}");
                return ExitCode::from(1);
            }
        };
        for name in now.keys() {
            if !baseline.contains_key(name) {
                println!("{name}: not in baseline yet (new kernel?); re-record to include it");
            }
        }
        let mut regressed = 0usize;
        println!(
            "{:<12} {:>14} {:>12} {:>8}",
            "kernel", "baseline [ms]", "now [ms]", "ratio"
        );
        for (name, base_ms) in &baseline {
            let Some(&now_ms) = now.get(name) else {
                eprintln!("{name}: present in baseline but not measurable now");
                regressed += 1;
                continue;
            };
            let ratio = now_ms / base_ms.max(1e-9);
            let flag = if ratio > 1.0 + args.max_regression {
                regressed += 1;
                "  << REGRESSION"
            } else {
                ""
            };
            println!("{name:<12} {base_ms:>14.3} {now_ms:>12.3} {ratio:>7.2}x{flag}");
        }
        if regressed > 0 {
            eprintln!(
                "record_baseline: {regressed} kernel(s) regressed by more than {:.0}%",
                args.max_regression * 100.0
            );
            return ExitCode::from(1);
        }
        println!(
            "all {} kernels within {:.0}% of baseline",
            baseline.len(),
            args.max_regression * 100.0
        );
        return ExitCode::SUCCESS;
    }

    // Record mode.
    let (rows, batch, serve, spec) = match measure(args.preset, args.reps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("record_baseline: {e}");
            return ExitCode::from(1);
        }
    };
    let rendered = render(args.preset, args.reps, &rows, &batch, &serve, &spec);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("record_baseline: cannot write `{path}`: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {} kernels to {path}", rows.len());
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rows_accepts_finite_positive_figures() {
        let rows = BTreeMap::from([
            ("atax".to_string(), 1.25),
            ("specialized_kernels".to_string(), 0.003),
        ]);
        assert!(validate_rows(&rows).is_ok());
    }

    #[test]
    fn validate_rows_rejects_degenerate_figures() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let rows = BTreeMap::from([("atax".to_string(), 1.0), ("bad".to_string(), bad)]);
            let err = validate_rows(&rows).expect_err("degenerate figure must be rejected");
            assert!(err.contains("bad"), "error must name the row: {err}");
        }
    }

    /// The rendered document round-trips through the compare-mode scanner,
    /// including the synthetic rows and their extra keys.
    #[test]
    fn rendered_rows_round_trip_through_the_scanner() {
        let rows = BTreeMap::from([
            ("atax".to_string(), 1.5),
            ("batch_throughput".to_string(), 0.75),
            ("serve_latency".to_string(), 2.25),
            ("specialized_kernels".to_string(), 12.125),
        ]);
        let batch = BatchRow {
            dace_ms: 0.75,
            serial_items_per_sec: 100.0,
            batched_items_per_sec: 300.0,
            speedup: 3.0,
            workers: 4,
            items: 16,
        };
        let serve = ServeRow {
            dace_ms: 2.25,
            p50_ms: 2.0,
            p95_ms: 4.0,
            requests: 32,
            largest_batch: 8,
        };
        let spec = SpecRow {
            dace_ms: 12.125,
            vm_ms: 60.5,
            speedup_geomean: 5.0,
            kernels: 6,
        };
        let text = render(Preset::Bench, 3, &rows, &batch, &serve, &spec);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed.len(), rows.len());
        for (name, ms) in &rows {
            assert_eq!(parsed[name], *ms, "row `{name}` lost precision");
        }
        // The extra keys survive rendering (informational, scanner-ignored).
        assert!(text.contains("\"vm_ms\": 60.500"));
        assert!(text.contains("\"spec_speedup_geomean\": 5.00"));
        assert!(text.contains("\"spec_kernels\": 6"));
    }
}
