//! Record or check perf baselines for the figure kernels.
//!
//! Record mode runs every NPBench kernel's DaCe-AD gradient at the chosen
//! preset — plus one `fd_validation` row timing a whole finite-difference
//! validation sweep (always at a fixed small 12×10 atax size, since FD is the
//! correctness-validation path), which guards the compile-once win: the
//! sweep performs exactly one forward lowering instead of two per input
//! element — and writes one JSON object per row to the output file:
//!
//! ```text
//! record_baseline [--preset bench|test] [--reps N] [--out BENCH_baseline.json]
//! ```
//!
//! Compare mode re-measures and exits non-zero when any kernel regressed by
//! more than `--max-regression` (default 0.25 = 25%) against the stored
//! `dace_ms`, which is what the CI `bench-smoke` job runs:
//!
//! ```text
//! record_baseline --compare BENCH_baseline.json [--preset ...] [--reps N] \
//!                 [--max-regression 0.25]
//! ```
//!
//! The JSON is written one kernel per line and parsed with a minimal scanner
//! (no serde in the offline build); extra keys such as the hand-recorded
//! `pre_pr_ms` history are preserved by ignoring them.

use std::collections::BTreeMap;
use std::process::ExitCode;

use npbench::runner::{time_dace, time_fd_validation};
use npbench::{all_kernels, kernel_by_name, Preset};

struct Args {
    preset: Preset,
    reps: usize,
    out: Option<String>,
    compare: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        preset: Preset::Bench,
        reps: 3,
        out: None,
        compare: None,
        max_regression: 0.25,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for `{}`", argv[i]))
        };
        match argv[i].as_str() {
            "--preset" => {
                args.preset = match need(i)?.as_str() {
                    "bench" => Preset::Bench,
                    "test" => Preset::Test,
                    other => return Err(format!("unknown preset `{other}`")),
                };
                i += 2;
            }
            "--reps" => {
                args.reps = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --reps value: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = Some(need(i)?.clone());
                i += 2;
            }
            "--compare" => {
                args.compare = Some(need(i)?.clone());
                i += 2;
            }
            "--max-regression" => {
                args.max_regression = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-regression value: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Measure every kernel (`name -> gradient time in ms`) plus the
/// `fd_validation` row.  A kernel that fails to produce a gradient is a hard
/// error: silently dropping it would let a broken kernel pass both record
/// and compare modes.
fn measure(preset: Preset, reps: usize) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let mut failures = Vec::new();
    for kernel in all_kernels() {
        let sizes = kernel.sizes(preset);
        let inputs = kernel.inputs(&sizes);
        match time_dace(kernel.as_ref(), &sizes, &inputs, reps) {
            Ok(t) => {
                out.insert(kernel.name().to_string(), t.elapsed.as_secs_f64() * 1e3);
            }
            Err(e) => {
                eprintln!("{}: measurement failed: {e}", kernel.name());
                failures.push(kernel.name().to_string());
            }
        }
    }
    // Finite-difference validation sweep (atax at a fixed small size — FD
    // is the validation path and is quadratic in the input size; 12×10
    // gives a 240-evaluation sweep long enough to time stably).  Guards the
    // compile-once property: one forward lowering per sweep, not 2·len.
    let kernel = kernel_by_name("atax").expect("atax is registered");
    let sizes = npbench::Sizes::new(12, 10, 0);
    let inputs = kernel.inputs(&sizes);
    match time_fd_validation(kernel.as_ref(), &sizes, &inputs, reps) {
        Ok(t) => {
            out.insert("fd_validation".to_string(), t.elapsed.as_secs_f64() * 1e3);
        }
        Err(e) => {
            eprintln!("fd_validation: measurement failed: {e}");
            failures.push("fd_validation".to_string());
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(format!(
            "kernel(s) failed to measure: {}",
            failures.join(", ")
        ))
    }
}

fn preset_name(p: Preset) -> &'static str {
    match p {
        Preset::Bench => "bench",
        Preset::Test => "test",
    }
}

fn render(preset: Preset, reps: usize, rows: &BTreeMap<String, f64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"preset\": \"{}\",\n", preset_name(preset)));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str("  \"kernels\": [\n");
    let n = rows.len();
    for (i, (name, ms)) in rows.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"dace_ms\": {ms:.3} }}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal scanner for the file format above: one kernel object per line
/// carrying `"name": "..."` and `"dace_ms": <float>`.  Unknown keys on the
/// same line are ignored.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "\"name\"") else {
            continue;
        };
        let Some(ms) = extract_num(line, "\"dace_ms\"") else {
            continue;
        };
        out.insert(name, ms);
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let rest = line[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("record_baseline: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.compare {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("record_baseline: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            eprintln!("record_baseline: no kernels found in `{path}`");
            return ExitCode::from(2);
        }
        let now = match measure(args.preset, args.reps) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("record_baseline: {e}");
                return ExitCode::from(1);
            }
        };
        for name in now.keys() {
            if !baseline.contains_key(name) {
                println!("{name}: not in baseline yet (new kernel?); re-record to include it");
            }
        }
        let mut regressed = 0usize;
        println!(
            "{:<12} {:>14} {:>12} {:>8}",
            "kernel", "baseline [ms]", "now [ms]", "ratio"
        );
        for (name, base_ms) in &baseline {
            let Some(&now_ms) = now.get(name) else {
                eprintln!("{name}: present in baseline but not measurable now");
                regressed += 1;
                continue;
            };
            let ratio = now_ms / base_ms.max(1e-9);
            let flag = if ratio > 1.0 + args.max_regression {
                regressed += 1;
                "  << REGRESSION"
            } else {
                ""
            };
            println!("{name:<12} {base_ms:>14.3} {now_ms:>12.3} {ratio:>7.2}x{flag}");
        }
        if regressed > 0 {
            eprintln!(
                "record_baseline: {regressed} kernel(s) regressed by more than {:.0}%",
                args.max_regression * 100.0
            );
            return ExitCode::from(1);
        }
        println!(
            "all {} kernels within {:.0}% of baseline",
            baseline.len(),
            args.max_regression * 100.0
        );
        return ExitCode::SUCCESS;
    }

    // Record mode.
    let rows = match measure(args.preset, args.reps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("record_baseline: {e}");
            return ExitCode::from(1);
        }
    };
    let rendered = render(args.preset, args.reps, &rows);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("record_baseline: cannot write `{path}`: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {} kernels to {path}", rows.len());
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}
