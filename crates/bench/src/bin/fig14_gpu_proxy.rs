//! Fig. 14 — GPU comparison proxy.
//!
//! No GPU is available in this reproduction; the V100 JAX JIT configuration
//! is approximated by dividing the measured baseline time by the machine's
//! kernel-level parallel speedup (measured on the rayon matmul kernel).  The
//! qualitative claim being checked is that the per-iteration overheads of
//! the baseline are algorithmic and are not erased by a faster backend.
use dace_bench::{measure_kernel, parallel_kernel_speedup};
use npbench::{kernel_by_name, Preset};

fn main() {
    let factor = parallel_kernel_speedup();
    println!(
        "=== Fig. 14: DaCe AD [CPU] vs baseline with a {factor:.1}x faster backend (GPU proxy) ==="
    );
    println!(
        "{:<12} {:>14} {:>20} {:>10}",
        "kernel", "DaCe AD [ms]", "baseline/GPU-proxy", "speedup"
    );
    for name in ["seidel2d", "jacobi2d", "trmm", "syrk", "syr2k", "conv2d"] {
        let kernel = kernel_by_name(name).unwrap();
        match measure_kernel(kernel.as_ref(), Preset::Bench, 2) {
            Ok(row) => {
                let proxy = row.jax.as_secs_f64() / factor;
                println!(
                    "{:<12} {:>14.3} {:>20.3} {:>9.2}x",
                    name,
                    row.dace.as_secs_f64() * 1e3,
                    proxy * 1e3,
                    proxy / row.dace.as_secs_f64().max(1e-12)
                );
            }
            Err(e) => eprintln!("{name}: {e}"),
        }
    }
}
