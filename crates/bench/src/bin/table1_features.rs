//! Table I — qualitative feature matrix of AD tools, with the coverage of
//! this reproduction in the DaCe AD column.
fn main() {
    println!("Table I: Overview of existing solutions for automatic differentiation");
    println!(
        "{:<34} {:>10} {:>12} {:>8} {:>8}",
        "capability", "PyTorch/TF", "JAX", "Enzyme", "DaCe AD"
    );
    let rows = [
        (
            "supports ML target programs",
            "yes",
            "yes",
            "partial",
            "yes",
        ),
        (
            "supports scientific computing",
            "partial",
            "partial",
            "yes",
            "yes",
        ),
        ("performance on ML", "yes", "yes", "partial", "yes"),
        (
            "performance on scientific codes",
            "partial",
            "partial",
            "partial",
            "yes",
        ),
        ("minimal code changes (ML)", "yes", "yes", "yes", "yes"),
        (
            "minimal code changes (scientific)",
            "no",
            "no",
            "yes",
            "yes",
        ),
        (
            "automatic checkpointing",
            "no",
            "no",
            "partial",
            "yes (ILP)",
        ),
    ];
    for (cap, a, b, c, d) in rows {
        println!("{cap:<34} {a:>10} {b:>12} {c:>8} {d:>8}");
    }
    println!("\nIn this reproduction the DaCe AD column is exercised by:");
    println!("  - ML kernels (mlp, conv2d) and scientific kernels (stencils, BLAS-style loops)");
    println!("  - zero code changes: the same frontend programs are differentiated as-is");
    println!("  - ILP-based automatic checkpointing (see fig13_ilp_checkpoint)");
}
