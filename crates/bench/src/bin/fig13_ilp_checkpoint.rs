//! Fig. 13 — ILP checkpointing: runtime and measured peak memory of every
//! store/recompute configuration of the §IV-A motivating example, plus the
//! configuration selected automatically by the ILP under a memory limit.

use std::collections::HashMap;
use std::time::Instant;

use dace_ad::{AdOptions, CheckpointStrategy, GradientEngine};
use dace_frontend::{ArrayExpr, ProgramBuilder};
use dace_sdfg::Sdfg;
use dace_tensor::random::uniform;

/// The Listing-1 program: three sin() sites whose inputs A0/A1/A2 must be
/// forwarded (the two scalings of D are materialised as D1/D2; see
/// EXPERIMENTS.md for the SSA-rendering note).
fn listing1() -> Sdfg {
    let mut b = ProgramBuilder::new("listing1");
    let n = b.symbol("N");
    b.add_input("C", vec![n.clone(), n.clone()]).unwrap();
    b.add_input("D", vec![n.clone(), n.clone()]).unwrap();
    for t in ["A0", "A1", "A2", "sin0", "sin1", "sin2", "D1", "D2", "tmp"] {
        b.add_transient(t, vec![n.clone(), n.clone()]).unwrap();
    }
    b.add_scalar("OUT").unwrap();
    b.assign("A0", ArrayExpr::a("C").mul(ArrayExpr::a("D")));
    b.assign("sin0", ArrayExpr::a("A0").sin());
    b.assign("D1", ArrayExpr::a("D").mul(ArrayExpr::s(6.0)));
    b.assign("A1", ArrayExpr::a("C").mul(ArrayExpr::a("D1")));
    b.assign("sin1", ArrayExpr::a("A1").sin());
    b.assign("D2", ArrayExpr::a("D1").mul(ArrayExpr::s(3.0)));
    b.assign("A2", ArrayExpr::a("C").mul(ArrayExpr::a("D2")));
    b.assign("sin2", ArrayExpr::a("A2").sin());
    b.assign(
        "tmp",
        ArrayExpr::a("sin0")
            .add(ArrayExpr::a("sin1"))
            .add(ArrayExpr::a("sin2")),
    );
    b.sum_into("OUT", "tmp", false);
    b.build().unwrap()
}

fn main() {
    let n: usize = 360; // each [N,N] f64 array is ~1 MiB
    let fwd = listing1();
    let mut symbols = HashMap::new();
    symbols.insert("N".to_string(), n as i64);
    let mut inputs = HashMap::new();
    inputs.insert("C".to_string(), uniform(&[n, n], 51));
    inputs.insert("D".to_string(), uniform(&[n, n], 52));
    let wrt = ["C", "D"];
    let candidates = ["A0", "A1", "A2"];

    println!("=== Fig. 13: store/recompute configurations of the Listing-1 example (N = {n}) ===");
    println!(
        "{:<8} {:<22} {:>12} {:>16}",
        "config", "stored arrays", "runtime [ms]", "peak memory [MiB]"
    );

    let mut results = Vec::new();
    for mask in 0..(1u32 << candidates.len()) {
        let store: Vec<String> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| a.to_string())
            .collect();
        let opts = AdOptions {
            strategy: CheckpointStrategy::Manual {
                store: store.clone(),
            },
        };
        let mut engine = GradientEngine::new(&fwd, "OUT", &wrt, &symbols, &opts).unwrap();
        let start = Instant::now();
        let result = engine.run(&inputs).unwrap();
        let elapsed = start.elapsed();
        let peak_mib = result.report.peak_bytes as f64 / (1024.0 * 1024.0);
        println!(
            "C-{:<6} {:<22} {:>12.2} {:>16.2}",
            mask,
            if store.is_empty() {
                "(none)".to_string()
            } else {
                store.join(",")
            },
            elapsed.as_secs_f64() * 1e3,
            peak_mib
        );
        results.push((mask, elapsed, result.report.peak_bytes));
    }

    // ILP-selected configuration under a limit between the extremes.
    let max_peak = results.iter().map(|(_, _, p)| *p).max().unwrap();
    let min_peak = results.iter().map(|(_, _, p)| *p).min().unwrap();
    let limit = min_peak + (max_peak - min_peak) * 3 / 4;
    let opts = AdOptions {
        strategy: CheckpointStrategy::Ilp {
            memory_limit_bytes: limit,
        },
    };
    let mut engine = GradientEngine::new(&fwd, "OUT", &wrt, &symbols, &opts).unwrap();
    let report = engine.plan().ilp_report.clone().unwrap();
    let start = Instant::now();
    let result = engine.run(&inputs).unwrap();
    let elapsed = start.elapsed();
    println!(
        "\nuser-set memory limit: {:.2} MiB",
        limit as f64 / (1024.0 * 1024.0)
    );
    println!(
        "ILP-selected configuration: store {:?}, recompute {:?} (solve time {:?}, {} B&B nodes)",
        report.stored, report.recomputed, report.solve_time, report.solver_nodes
    );
    println!(
        "ILP configuration runtime {:.2} ms, measured peak {:.2} MiB (predicted {:.2} MiB)",
        elapsed.as_secs_f64() * 1e3,
        result.report.peak_bytes as f64 / (1024.0 * 1024.0),
        report.predicted_peak_bytes as f64 / (1024.0 * 1024.0)
    );
}
