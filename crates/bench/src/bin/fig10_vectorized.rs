//! Fig. 10 — vectorized benchmarks: runtime and speedup.
use dace_bench::{measure_kernel, print_table};
use npbench::{kernels_in, Category, Preset};

fn main() {
    let mut rows = Vec::new();
    for kernel in kernels_in(Category::Vectorized) {
        match measure_kernel(kernel.as_ref(), Preset::Bench, 3) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("{}: {e}", kernel.name()),
        }
    }
    rows.sort_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap());
    print_table("Fig. 10: vectorized benchmarks", &rows);
}
