//! Fig. 12 — Seidel2d input-size sweep: gradient time of DaCe AD and the
//! baseline as the order N of the input matrix grows.
use dace_bench::measure_kernel_sized;
use npbench::{kernel_by_name, Sizes};

fn main() {
    let kernel = kernel_by_name("seidel2d").unwrap();
    println!("=== Fig. 12: Seidel2d size sweep (TSTEPS = 4) ===");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "N", "DaCe AD [ms]", "baseline [ms]", "speedup"
    );
    for n in [8usize, 12, 16, 20, 24, 28, 32] {
        let sizes = Sizes::new(n, 0, 4);
        match measure_kernel_sized(kernel.as_ref(), &sizes, 2) {
            Ok(row) => println!(
                "{:>6} {:>14.3} {:>14.3} {:>9.2}x",
                n,
                row.dace.as_secs_f64() * 1e3,
                row.jax.as_secs_f64() * 1e3,
                row.speedup
            ),
            Err(e) => eprintln!("N={n}: {e}"),
        }
    }
}
