//! # dace-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for the recorded results).  Each figure has a dedicated
//! binary (`cargo run --release -p dace-bench --bin figNN_...`) and the
//! criterion benches in `benches/paper_figures.rs` cover the same
//! measurements in `cargo bench` form.

use std::collections::HashMap;
use std::time::Duration;

use npbench::runner::{time_dace, time_jax};
use npbench::{Kernel, Preset, Sizes};

/// One row of a DaCe-AD-vs-baseline comparison table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Kernel name.
    pub name: String,
    /// DaCe AD gradient time.
    pub dace: Duration,
    /// jax-rs baseline gradient time.
    pub jax: Duration,
    /// Speedup of DaCe AD over the baseline.
    pub speedup: f64,
}

/// Measure one kernel at the given preset.
pub fn measure_kernel(kernel: &dyn Kernel, preset: Preset, reps: usize) -> Result<Row, String> {
    let sizes = kernel.sizes(preset);
    measure_kernel_sized(kernel, &sizes, reps)
}

/// Measure one kernel at explicit sizes.
pub fn measure_kernel_sized(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    reps: usize,
) -> Result<Row, String> {
    let inputs = kernel.inputs(sizes);
    let dace = time_dace(kernel, sizes, &inputs, reps)?;
    let jax = time_jax(kernel, sizes, &inputs, reps);
    let speedup = jax.elapsed.as_secs_f64() / dace.elapsed.as_secs_f64().max(1e-12);
    Ok(Row {
        name: kernel.name().to_string(),
        dace: dace.elapsed,
        jax: jax.elapsed,
        speedup,
    })
}

/// Geometric mean of the speedups of a set of rows.
pub fn geo_mean(rows: &[Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = rows.iter().map(|r| r.speedup.max(1e-12).ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

/// Arithmetic mean of the speedups.
pub fn mean(rows: &[Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64
}

/// Print a comparison table in the format of the paper's figures.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "kernel", "DaCe AD [ms]", "baseline [ms]", "speedup"
    );
    for r in rows {
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>9.2}x",
            r.name,
            r.dace.as_secs_f64() * 1e3,
            r.jax.as_secs_f64() * 1e3,
            r.speedup
        );
    }
    println!(
        "average speedup: {:.2}x   geometric mean: {:.2}x",
        mean(rows),
        geo_mean(rows)
    );
}

/// Forward-pass program-size comparison (the second panel of Fig. 11):
/// DaCe statement count vs. the jax-rs implementation's traced-statement
/// count for each kernel.
pub fn loc_comparison(kernels: &[Box<dyn Kernel>]) -> Vec<(String, usize, usize)> {
    kernels
        .iter()
        .map(|k| {
            let sizes = k.sizes(Preset::Test);
            let sdfg = k.build_dace(&sizes);
            // Builder statements ≈ one per state-producing statement; count
            // top-level states plus loop regions as a proxy for source lines.
            let dace_loc = sdfg.states.len().min(count_statements(&sdfg));
            (k.name().to_string(), dace_loc, k.jax_loc())
        })
        .collect()
}

fn count_statements(sdfg: &dace_sdfg::Sdfg) -> usize {
    fn walk(cf: &dace_sdfg::ControlFlow) -> usize {
        match cf {
            dace_sdfg::ControlFlow::State(_) => 1,
            dace_sdfg::ControlFlow::Sequence(v) => v.iter().map(walk).sum(),
            dace_sdfg::ControlFlow::Loop(l) => 1 + walk(&l.body),
            dace_sdfg::ControlFlow::Branch(b) => {
                1 + walk(&b.then_body) + b.else_body.as_ref().map(|e| walk(e)).unwrap_or(0)
            }
        }
    }
    walk(&sdfg.cfg)
}

/// Estimate the kernel-level parallel speedup available on this machine
/// (ratio of single-threaded to rayon-parallel matmul time).  Used by the
/// Fig. 14 GPU proxy (documented substitution: no GPU is available).
pub fn parallel_kernel_speedup() -> f64 {
    use dace_tensor::random::uniform;
    let a = uniform(&[256, 256], 100);
    let b = uniform(&[256, 256], 101);
    // Untimed warmup so the first timed loop doesn't absorb cold-cache and
    // first-touch costs that the second one would then avoid.
    let _ = a.matmul(&b).unwrap();
    // Parallel (default) timing.
    let start = std::time::Instant::now();
    for _ in 0..3 {
        let _ = a.matmul(&b).unwrap();
    }
    let par = start.elapsed().as_secs_f64();
    // Single-threaded pool.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let start = std::time::Instant::now();
    pool.install(|| {
        for _ in 0..3 {
            let _ = a.matmul(&b).unwrap();
        }
    });
    let seq = start.elapsed().as_secs_f64();
    (seq / par.max(1e-9)).max(1.0)
}

/// Kernel selection of Fig. 1 (headline figure).
pub fn fig1_kernel_names() -> Vec<&'static str> {
    vec![
        "jacobi1d", "k2mm", "atax", "syr2k", "conv2d", "trmm", "seidel2d",
    ]
}

/// Symbol map helper for explicit sizes.
pub fn symbols_of(kernel: &dyn Kernel, sizes: &Sizes) -> HashMap<String, i64> {
    kernel.symbols(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_and_mean() {
        let rows = vec![
            Row {
                name: "a".into(),
                dace: Duration::from_millis(1),
                jax: Duration::from_millis(2),
                speedup: 2.0,
            },
            Row {
                name: "b".into(),
                dace: Duration::from_millis(1),
                jax: Duration::from_millis(8),
                speedup: 8.0,
            },
        ];
        assert!((geo_mean(&rows) - 4.0).abs() < 1e-9);
        assert!((mean(&rows) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn loc_comparison_reports_both_sides() {
        let kernels = npbench::kernels_in(npbench::Category::Loops);
        let loc = loc_comparison(&kernels);
        assert_eq!(loc.len(), kernels.len());
        for (_, dace, jax) in loc {
            assert!(dace > 0);
            assert!(jax > 0);
        }
    }

    #[test]
    fn measure_small_kernel() {
        let k = npbench::kernel_by_name("atax").unwrap();
        let row = measure_kernel(k.as_ref(), Preset::Test, 1).unwrap();
        assert!(row.speedup > 0.0);
    }
}
