//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of proptest this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`
//! * range strategies (`-10i32..10`, `0.1f64..3.0`, …), [`strategy::Just`],
//!   tuple strategies, [`collection::vec`]
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`]
//!   and [`prop_assume!`] macros
//! * [`test_runner::ProptestConfig`] (`with_cases`, `#![proptest_config(..)]`)
//!
//! Differences from real proptest: sampling is driven by a fixed seed (so a
//! green run stays green — no flaky CI), there is no shrinking, and
//! `prop_assume!` skips the current case rather than resampling.  Failure
//! output includes the case number and the generated inputs' `Debug` where
//! available via the assertion message.

pub mod strategy {
    use rand::{Rng, SeedableRng, StdRng};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value` (shrinking-free subset of
    /// proptest's `Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<F, R>(self, f: F) -> Mapped<Self, R>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> R + 'static,
        {
            Mapped {
                base: self,
                f: Rc::new(f),
            }
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng| this.sample(rng)))
        }

        /// Build recursive structures: `recurse` receives a strategy for the
        /// previous depth level and returns the strategy for one level
        /// deeper.  `_desired_size`/`_expected_branch_size` are accepted for
        /// API compatibility; depth alone bounds recursion here, and each
        /// level mixes in the leaf strategy so sampled sizes stay small.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                let l = leaf.clone();
                level = BoxedStrategy(Rc::new(move |rng| {
                    if rng.gen::<f64>() < 0.25 {
                        l.sample(rng)
                    } else {
                        deeper.sample(rng)
                    }
                }));
            }
            level
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy producing a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Mapped<S: Strategy, R> {
        base: S,
        f: Rc<dyn Fn(S::Value) -> R>,
    }

    impl<S: Strategy + Clone, R> Clone for Mapped<S, R> {
        fn clone(&self) -> Self {
            Mapped {
                base: self.base.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<S: Strategy, R> Strategy for Mapped<S, R> {
        type Value = R;
        fn sample(&self, rng: &mut StdRng) -> R {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by the `prop_oneof!` macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = (rng.gen::<u64>() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.gen::<u64>() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // Rounding in `start + x*(end-start)` can land exactly on the
            // exclusive bound; clamp to keep the half-open contract.
            let v = self.start + rng.gen::<f64>() * (self.end - self.start);
            v.min(self.end.next_down())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut StdRng) -> f32 {
            let v = self.start + (rng.gen::<f64>() as f32) * (self.end - self.start);
            v.min(self.end.next_down())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    }

    /// Fresh deterministic RNG for one property-test function.  The function
    /// name is folded into the seed so distinct properties explore distinct
    /// streams.
    pub fn runner_rng(fn_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in fn_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ 0xDACE_AD00)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng, StdRng};

    /// Size specification for [`vec()`]: a fixed length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.gen::<u64>() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration (subset of proptest's `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 96 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert inside a property; supports an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Define property-test functions: each `name(arg in strategy, ...)` runs the
/// body for `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::strategy::runner_rng(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let __body = move || $body;
                __body();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(a in -5i64..7, x in 0.25f64..0.75) {
            prop_assert!((-5..7).contains(&a));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_sizes_and_oneof(v in crate::collection::vec(0i32..3, 2..6), pick in prop_oneof![Just(1u8), Just(9u8)]) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..3).contains(&e)));
            prop_assert!(pick == 1 || pick == 9);
        }

        #[test]
        fn assume_skips(n in 0i64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        use crate::strategy::Strategy;

        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v), "leaf out of strategy range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::strategy::runner_rng("recursive_strategy_terminates");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never taken");
    }

    #[test]
    fn union_requires_arms() {
        let u = prop_oneof![Just(3u8)];
        let mut rng = crate::strategy::runner_rng("union_requires_arms");
        use crate::strategy::Strategy;
        assert_eq!(u.sample(&mut rng), 3);
    }
}
