//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small subset of rayon's API it actually uses:
//!
//! * `(range).into_par_iter().map(f).collect::<C>()`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//! * `ThreadPoolBuilder` / `ThreadPool::install` (thread-count policy)
//! * [`current_num_threads`]
//!
//! Work is executed by a **persistent worker pool**: one set of threads is
//! spawned lazily on first use (at most once per process) and parked on a
//! shared queue between calls, so hot kernels pay no per-call thread-spawn
//! cost.  Each parallel call splits its index space into contiguous spans,
//! enqueues one job per span, and blocks on a completion latch — the
//! structured-concurrency wait is what makes the lifetime erasure of borrowed
//! closures sound (jobs never outlive the call that created them).
//!
//! Nested parallel calls issued *from* a worker thread run inline
//! (sequentially) instead of re-entering the queue, which keeps the pool
//! deadlock-free without work stealing.

// Unsafe is genuinely needed here (lifetime erasure of borrowed job
// closures); the lint keeps every unsafe operation inside an explicit
// block with its own safety argument.
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

std::thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = none.
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// True on pool worker threads: nested parallel calls run inline.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.with(std::cell::Cell::get);
    if forced > 0 {
        return forced;
    }
    hardware_threads()
}

/// Number of threads parallel operations fan out to from the calling context
/// (rayon's `current_num_threads`): the pool size, or the limit installed by
/// the innermost [`ThreadPool::install`].
pub fn current_num_threads() -> usize {
    num_threads()
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A queued unit of work.  Lifetimes are erased at enqueue time; soundness is
/// provided by the caller blocking on its [`Latch`] before returning.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
}

/// Completion latch for one parallel call.
struct Latch {
    remaining: Mutex<usize>,
    done_cv: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done_cv.wait(left).unwrap();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    IS_WORKER.with(|c| c.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.work_cv.wait(queue).unwrap();
            }
        };
        job();
    }
}

/// The process-wide pool, created at most once, lazily on first use.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        });
        for i in 0..hardware_threads() {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn rayon-shim worker");
        }
        Pool { shared }
    })
}

/// Run `tasks` to completion across the pool (or inline when called from a
/// worker thread).  Blocks until every task has finished; panics in workers
/// are captured and re-raised on the calling thread.
fn run_scope<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    if tasks.is_empty() {
        return;
    }
    if IS_WORKER.with(std::cell::Cell::get) {
        // Nested parallelism: execute inline to keep the pool deadlock-free.
        for task in tasks {
            task();
        }
        return;
    }
    let pool = pool();
    let latch = Arc::new(Latch::new(tasks.len()));
    {
        let mut queue = pool.shared.queue.lock().unwrap();
        for task in tasks {
            // SAFETY: `run_scope` blocks on `latch.wait()` below until every
            // enqueued job has run to completion, so the borrows captured by
            // `task` strictly outlive its execution (structured concurrency,
            // the same argument `std::thread::scope` relies on).
            let task: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(task) };
            let latch = Arc::clone(&latch);
            queue.push_back(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                if result.is_err() {
                    latch.panicked.store(true, Ordering::SeqCst);
                }
                latch.count_down();
            }));
        }
    }
    pool.shared.work_cv.notify_all();
    latch.wait();
    if latch.panicked.load(Ordering::SeqCst) {
        panic!("rayon-shim worker panicked");
    }
}

/// Builder for a [`ThreadPool`] (subset of rayon's API).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` worker threads (0 = number of cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.  Infallible in the shim; the `Result` mirrors rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count policy rather than a separate worker pool: while
/// [`ThreadPool::install`] runs, parallel operations started from the calling
/// thread fan out to at most `num_threads` spans of the shared persistent
/// pool.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread-count limit in effect.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// Splits `0..len` into at most `num_threads()` contiguous, non-empty spans.
fn spans(len: usize) -> Vec<(usize, usize)> {
    let threads = num_threads().min(len.max(1));
    let chunk = len.div_ceil(threads.max(1)).max(1);
    (0..len)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(len)))
        .collect()
}

/// Parallel iterator over an exact-size index range, produced by
/// [`IntoParallelIterator::into_par_iter`].
pub struct ParRange {
    start: usize,
    end: usize,
}

/// Conversion into a [`ParRange`]; implemented for `Range<usize>`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

impl ParRange {
    /// Map every index through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// The result of [`ParRange::map`]; consumed with [`ParMap::collect`].
pub struct ParMap<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluate the map on the worker pool, preserving index order, then
    /// build `C` from the ordered items (so `Result<Vec<_>, E>` collection
    /// works just like with std iterators).
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let len = self.end - self.start;
        if len == 0 {
            return std::iter::empty().collect();
        }
        let f = &self.f;
        let start = self.start;
        let spans = spans(len);
        let mut blocks: Vec<Option<Vec<R>>> = Vec::new();
        blocks.resize_with(spans.len(), || None);
        let blocks_mx = Mutex::new(&mut blocks);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = spans
            .iter()
            .enumerate()
            .map(|(slot, &(lo, hi))| {
                let blocks_mx = &blocks_mx;
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let block: Vec<R> = (start + lo..start + hi).map(f).collect();
                    blocks_mx.lock().unwrap()[slot] = Some(block);
                });
                task
            })
            .collect();
        run_scope(tasks);
        blocks
            .into_iter()
            .flat_map(|b| b.expect("rayon-shim span missing its result"))
            .collect()
    }
}

/// Mutable-slice extension adding [`ParallelSliceMut::par_chunks_mut`].
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.  Chunks are
    /// distributed to worker threads in contiguous blocks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        if self.slice.is_empty() || self.chunk_size == 0 {
            return;
        }
        let n_chunks = self.slice.len().div_ceil(self.chunk_size);
        let chunk_size = self.chunk_size;
        let f = &f;
        let mut rest = self.slice;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (lo, hi) in spans(n_chunks) {
            let split = ((hi - lo) * chunk_size).min(rest.len());
            let (block, tail) = rest.split_at_mut(split);
            rest = tail;
            tasks.push(Box::new(move || {
                for (k, chunk) in block.chunks_mut(chunk_size).enumerate() {
                    f((lo + k, chunk));
                }
            }));
        }
        run_scope(tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_collects_results() {
        let ok: Result<Vec<usize>, String> =
            (0..100).into_par_iter().map(Ok::<usize, String>).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = (0..100)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn par_chunks_mut_enumerate_covers_all_chunks() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i));
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, j / 10);
        }
    }

    #[test]
    fn single_thread_pool_serializes() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let caller = std::thread::current().id();
        pool.install(|| {
            let ids: Vec<std::thread::ThreadId> = (0..64)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect();
            // One worker span means one job; all items share its thread.
            assert!(ids.windows(2).all(|w| w[0] == w[1]));
            assert_ne!(caller, ids[0], "work still runs on a pool worker");
        });
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let mut empty: Vec<usize> = vec![];
        empty.par_chunks_mut(4).enumerate().for_each(|_| panic!());
    }

    /// The pool is persistent: repeated parallel calls reuse the same worker
    /// threads instead of spawning fresh ones per call.
    #[test]
    fn workers_are_reused_across_calls() {
        use std::collections::HashSet;
        let mut seen: HashSet<std::thread::ThreadId> = HashSet::new();
        for _ in 0..8 {
            let ids: Vec<std::thread::ThreadId> = (0..256)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect();
            seen.extend(ids);
        }
        // With per-call spawning, 8 calls x N spans would accumulate up to
        // 8*N distinct thread ids; the persistent pool is bounded by its
        // process-wide size regardless of call count.  Other tests may run
        // concurrently on the same pool, so only the bound is asserted.
        assert!(
            seen.len() <= super::hardware_threads(),
            "expected at most {} pooled workers, saw {} distinct threads",
            super::hardware_threads(),
            seen.len()
        );
    }

    /// Panics inside workers are captured and re-raised on the caller, and
    /// the pool stays usable afterwards.
    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64)
                .into_par_iter()
                .map(|i| if i == 13 { panic!("boom") } else { i })
                .collect();
        });
        assert!(result.is_err());
        let out: Vec<usize> = (0..64).into_par_iter().map(|i| i).collect();
        assert_eq!(out.len(), 64);
    }

    /// Nested parallel calls issued from worker threads run inline without
    /// deadlocking the pool.
    #[test]
    fn nested_parallelism_runs_inline() {
        let out: Vec<usize> = (0..16)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..8).into_par_iter().map(move |j| i * 8 + j).collect();
                inner.iter().sum()
            })
            .collect();
        let expected: Vec<usize> = (0..16).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn current_num_threads_respects_install() {
        assert!(crate::current_num_threads() >= 1);
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| assert_eq!(crate::current_num_threads(), 3));
    }
}
