//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small subset of rayon's API it actually uses:
//!
//! * `(range).into_par_iter().map(f).collect::<C>()`
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)`
//!
//! Unlike a sequential mock, the implementations below genuinely fan work out
//! across `std::thread::scope` threads (one contiguous block per available
//! core), preserving item order in collected results.  Call sites guard the
//! parallel path behind size thresholds, so per-call thread-spawn overhead is
//! acceptable.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

std::thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = none.
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.with(std::cell::Cell::get);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder for a [`ThreadPool`] (subset of rayon's API).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` worker threads (0 = number of cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.  Infallible in the shim; the `Result` mirrors rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count policy rather than a real worker pool: while
/// [`ThreadPool::install`] runs, parallel operations started from the calling
/// thread fan out to at most `num_threads` threads.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread-count limit in effect.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// Splits `0..len` into at most `num_threads()` contiguous, non-empty spans.
fn spans(len: usize) -> Vec<(usize, usize)> {
    let threads = num_threads().min(len.max(1));
    let chunk = len.div_ceil(threads.max(1)).max(1);
    (0..len)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(len)))
        .collect()
}

/// Parallel iterator over an exact-size index range, produced by
/// [`IntoParallelIterator::into_par_iter`].
pub struct ParRange {
    start: usize,
    end: usize,
}

/// Conversion into a [`ParRange`]; implemented for `Range<usize>`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

impl ParRange {
    /// Map every index through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// The result of [`ParRange::map`]; consumed with [`ParMap::collect`].
pub struct ParMap<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluate the map in parallel, preserving index order, then build `C`
    /// from the ordered items (so `Result<Vec<_>, E>` collection works just
    /// like with std iterators).
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let len = self.end - self.start;
        if len == 0 {
            return std::iter::empty().collect();
        }
        let f = &self.f;
        let start = self.start;
        let mut blocks: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans(len)
                .into_iter()
                .map(|(lo, hi)| {
                    scope.spawn(move || (start + lo..start + hi).map(f).collect::<Vec<R>>())
                })
                .collect();
            for h in handles {
                blocks.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        blocks.into_iter().flatten().collect()
    }
}

/// Mutable-slice extension adding [`ParallelSliceMut::par_chunks_mut`].
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.  Chunks are
    /// distributed to worker threads in contiguous blocks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        if self.slice.is_empty() || self.chunk_size == 0 {
            return;
        }
        let n_chunks = self.slice.len().div_ceil(self.chunk_size);
        let chunk_size = self.chunk_size;
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = self.slice;
            for (lo, hi) in spans(n_chunks) {
                let split = ((hi - lo) * chunk_size).min(rest.len());
                let (block, tail) = rest.split_at_mut(split);
                rest = tail;
                scope.spawn(move || {
                    for (k, chunk) in block.chunks_mut(chunk_size).enumerate() {
                        f((lo + k, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_collects_results() {
        let ok: Result<Vec<usize>, String> =
            (0..100).into_par_iter().map(Ok::<usize, String>).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = (0..100)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn par_chunks_mut_enumerate_covers_all_chunks() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i));
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, j / 10);
        }
    }

    #[test]
    fn single_thread_pool_serializes() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let caller = std::thread::current().id();
        pool.install(|| {
            let ids: Vec<std::thread::ThreadId> = (0..64)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect();
            // One worker span means one spawned thread; all items share it.
            assert!(ids.windows(2).all(|w| w[0] == w[1]));
            assert_ne!(caller, ids[0], "work still runs on a scoped worker");
        });
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let mut empty: Vec<usize> = vec![];
        empty.par_chunks_mut(4).enumerate().for_each(|_| panic!());
    }
}
