//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset used by `crates/bench/benches/paper_figures.rs`:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_with_input, finish}`, `BenchmarkId::new`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.  Instead of criterion's
//! statistical machinery it runs a short warmup, then `sample_size` timed
//! iterations, and prints min/mean/max per benchmark — enough to regenerate
//! the paper-figure comparisons in an offline environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup {name}");
        BenchmarkGroup { sample_size: 10 }
    }
}

/// Identifier for one benchmark: a function label plus a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dace_ad", param)`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `routine(bencher, input)`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target: self.sample_size,
        };
        routine(&mut b, input);
        b.report(&id.label);
        self
    }

    /// Time `routine(bencher)` with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target: self.sample_size,
        };
        routine(&mut b);
        b.report(&id.into());
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Run `f` once for warmup, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.target {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {label}: mean {mean:?} (min {min:?}, max {max:?}, n={})",
            self.samples.len()
        );
    }
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("id", 1), &2u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // one warmup + three timed samples
        assert_eq!(runs, 4);
    }
}
