//! Offline stand-in for the `rand` crate.
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen` for the
//! types this workspace samples (`f64`, `u64`, `usize`).  The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic, high-quality, and
//! identical across platforms, which is what the seeded NPBench input
//! generation needs (bit-identical inputs for both AD backends).

/// Trait for seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value of type `Self` (stand-in for
/// `rand::distributions::Standard` sampling).
pub trait UniformSample {
    /// Draw one value from `rng`.
    fn sample(rng: &mut StdRng) -> Self;
}

/// Trait exposing `gen` (subset of `rand::Rng`).
pub trait Rng {
    /// Generate a uniform value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T;
}

/// xoshiro256++ generator, the quality/speed workhorse behind this shim.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: [u64; 4],
}

pub mod rngs {
    pub use crate::StdRng;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        StdRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Rng for StdRng {
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl UniformSample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl UniformSample for usize {
    fn sample(rng: &mut StdRng) -> usize {
        rng.next_u64() as usize
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
