//! Memlets: explicit descriptions of data movement between dataflow nodes.

use std::collections::HashMap;
use std::fmt;

use crate::symexpr::{SymError, SymExpr};

/// One dimension of a memlet subset.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexRange {
    /// A single (possibly symbolic) index.
    Index(SymExpr),
    /// A half-open range `[start, end)`.
    Range { start: SymExpr, end: SymExpr },
}

impl IndexRange {
    /// Single-index constructor.
    pub fn idx(e: impl Into<SymExpr>) -> Self {
        IndexRange::Index(e.into())
    }

    /// Range constructor.
    pub fn range(start: impl Into<SymExpr>, end: impl Into<SymExpr>) -> Self {
        IndexRange::Range {
            start: start.into(),
            end: end.into(),
        }
    }

    /// Number of elements covered, evaluated against bindings.
    pub fn volume(&self, bindings: &HashMap<String, i64>) -> Result<i64, SymError> {
        match self {
            IndexRange::Index(_) => Ok(1),
            IndexRange::Range { start, end } => {
                Ok((end.eval(bindings)? - start.eval(bindings)?).max(0))
            }
        }
    }

    /// Substitute a symbol in all contained expressions.
    pub fn substitute(&self, name: &str, with: &SymExpr) -> IndexRange {
        match self {
            IndexRange::Index(e) => IndexRange::Index(e.substitute(name, with)),
            IndexRange::Range { start, end } => IndexRange::Range {
                start: start.substitute(name, with),
                end: end.substitute(name, with),
            },
        }
    }

    /// Free symbols in the contained expressions.
    pub fn free_symbols(&self) -> std::collections::BTreeSet<String> {
        match self {
            IndexRange::Index(e) => e.free_symbols(),
            IndexRange::Range { start, end } => {
                let mut s = start.free_symbols();
                s.extend(end.free_symbols());
                s
            }
        }
    }
}

/// Structural classification of a subset, computed once when an execution
/// plan is compiled so hot loops never re-inspect the subset shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubsetClass {
    /// The whole array (empty subset).
    All,
    /// A single element: every dimension is a scalar index.
    Element,
    /// Anything else (ranges or mixed range/index dimensions).
    Other,
}

/// A subset of an array: one [`IndexRange`] per dimension.
///
/// An empty subset denotes "the whole array" (used for full-array memlets
/// feeding library nodes and map scopes).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Subset(pub Vec<IndexRange>);

impl Subset {
    /// The whole-array subset.
    pub fn all() -> Self {
        Subset(Vec::new())
    }

    /// A subset of scalar indices.
    pub fn indices(idx: Vec<SymExpr>) -> Self {
        Subset(idx.into_iter().map(IndexRange::Index).collect())
    }

    /// True if this subset denotes the entire array.
    pub fn is_all(&self) -> bool {
        self.0.is_empty()
    }

    /// True if every dimension is a single index (an element access).
    pub fn is_element(&self) -> bool {
        !self.0.is_empty() && self.0.iter().all(|r| matches!(r, IndexRange::Index(_)))
    }

    /// Classify the subset structurally (whole-array / element / other).
    pub fn classify(&self) -> SubsetClass {
        if self.is_all() {
            SubsetClass::All
        } else if self.is_element() {
            SubsetClass::Element
        } else {
            SubsetClass::Other
        }
    }

    /// True if the subset indexes exactly by the given parameters, in order
    /// (`A[i, j]` for params `[i, j]`).  This is the precondition for the
    /// executor's element-wise flat-loop fast path.
    pub fn is_identity_of(&self, params: &[String]) -> bool {
        self.0.len() == params.len()
            && self.0.iter().zip(params.iter()).all(
                |(r, p)| matches!(r, IndexRange::Index(crate::symexpr::SymExpr::Sym(s)) if s == p),
            )
    }

    /// Evaluate an element subset to a concrete multi-index.
    pub fn eval_indices(&self, bindings: &HashMap<String, i64>) -> Result<Vec<i64>, SymError> {
        self.0
            .iter()
            .map(|r| match r {
                IndexRange::Index(e) => e.eval(bindings),
                IndexRange::Range { start, .. } => start.eval(bindings),
            })
            .collect()
    }

    /// Data volume (number of elements moved) under the given bindings.
    pub fn volume(&self, bindings: &HashMap<String, i64>) -> Result<i64, SymError> {
        if self.is_all() {
            // Caller must use the array shape for whole-array subsets.
            return Ok(-1);
        }
        let mut v = 1i64;
        for r in &self.0 {
            v *= r.volume(bindings)?;
        }
        Ok(v)
    }

    /// Substitute a symbol in every dimension.
    pub fn substitute(&self, name: &str, with: &SymExpr) -> Subset {
        Subset(self.0.iter().map(|r| r.substitute(name, with)).collect())
    }

    /// Free symbols across all dimensions.
    pub fn free_symbols(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        for r in &self.0 {
            out.extend(r.free_symbols());
        }
        out
    }
}

/// Write-conflict resolution: how concurrent/repeated writes combine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wcr {
    /// Accumulate with `+=` — the resolution used by gradient accumulation.
    Sum,
}

/// A memlet annotating an edge with the data container, the subset moved and
/// an optional write-conflict resolution.
#[derive(Clone, Debug, PartialEq)]
pub struct Memlet {
    /// Name of the data container (array) being moved.
    pub data: String,
    /// The subset of the container being read or written.
    pub subset: Subset,
    /// Write-conflict resolution for writes (None = overwrite).
    pub wcr: Option<Wcr>,
}

impl Memlet {
    /// Memlet covering the entire array.
    pub fn all(data: impl Into<String>) -> Self {
        Memlet {
            data: data.into(),
            subset: Subset::all(),
            wcr: None,
        }
    }

    /// Element memlet with symbolic indices.
    pub fn element(data: impl Into<String>, idx: Vec<SymExpr>) -> Self {
        Memlet {
            data: data.into(),
            subset: Subset::indices(idx),
            wcr: None,
        }
    }

    /// Add sum write-conflict resolution.
    pub fn with_wcr_sum(mut self) -> Self {
        self.wcr = Some(Wcr::Sum);
        self
    }
}

impl fmt::Display for Memlet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.data)?;
        if !self.subset.is_all() {
            write!(f, "[")?;
            for (i, r) in self.subset.0.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match r {
                    IndexRange::Index(e) => write!(f, "{e}")?,
                    IndexRange::Range { start, end } => write!(f, "{start}:{end}")?,
                }
            }
            write!(f, "]")?;
        }
        if self.wcr.is_some() {
            write!(f, " (+= )")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn element_subset_evaluates_indices() {
        let m = Memlet::element("A", vec![SymExpr::sym("i"), SymExpr::sym("j").add_int(1)]);
        let idx = m.subset.eval_indices(&bind(&[("i", 2), ("j", 3)])).unwrap();
        assert_eq!(idx, vec![2, 4]);
        assert!(m.subset.is_element());
    }

    #[test]
    fn range_volume() {
        let r = IndexRange::range(SymExpr::int(2), SymExpr::sym("N"));
        assert_eq!(r.volume(&bind(&[("N", 10)])).unwrap(), 8);
        let s = Subset(vec![
            IndexRange::range(SymExpr::int(0), SymExpr::int(4)),
            IndexRange::idx(SymExpr::int(1)),
        ]);
        assert_eq!(s.volume(&HashMap::new()).unwrap(), 4);
    }

    #[test]
    fn whole_array_subset() {
        let m = Memlet::all("B");
        assert!(m.subset.is_all());
        assert!(!m.subset.is_element());
        assert_eq!(m.subset.volume(&HashMap::new()).unwrap(), -1);
    }

    #[test]
    fn substitution_rewrites_indices() {
        let s = Subset::indices(vec![SymExpr::sym("i")]);
        let s2 = s.substitute("i", &SymExpr::sym("k").add_int(5));
        assert_eq!(s2.eval_indices(&bind(&[("k", 1)])).unwrap(), vec![6]);
    }

    #[test]
    fn display_renders_subsets() {
        let m = Memlet::element("A", vec![SymExpr::sym("i")]).with_wcr_sum();
        let s = format!("{m}");
        assert!(s.contains("A[i]"));
        assert!(s.contains("+="));
    }

    #[test]
    fn classification_and_identity_detection() {
        let params = vec!["i".to_string(), "j".to_string()];
        let identity = Subset::indices(vec![SymExpr::sym("i"), SymExpr::sym("j")]);
        assert_eq!(identity.classify(), SubsetClass::Element);
        assert!(identity.is_identity_of(&params));
        // Wrong order, wrong arity, and offset indices are not identities.
        let swapped = Subset::indices(vec![SymExpr::sym("j"), SymExpr::sym("i")]);
        assert!(!swapped.is_identity_of(&params));
        let short = Subset::indices(vec![SymExpr::sym("i")]);
        assert!(!short.is_identity_of(&params));
        let offset = Subset::indices(vec![SymExpr::sym("i").add_int(1), SymExpr::sym("j")]);
        assert!(!offset.is_identity_of(&params));
        assert_eq!(Subset::all().classify(), SubsetClass::All);
        let ranged = Subset(vec![IndexRange::range(SymExpr::int(0), SymExpr::sym("N"))]);
        assert_eq!(ranged.classify(), SubsetClass::Other);
    }

    #[test]
    fn free_symbols_from_subset() {
        let s = Subset(vec![
            IndexRange::idx(SymExpr::sym("i")),
            IndexRange::range(SymExpr::int(0), SymExpr::sym("N")),
        ]);
        let f = s.free_symbols();
        assert!(f.contains("i") && f.contains("N"));
    }
}
