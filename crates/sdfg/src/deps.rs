//! Affine dependence and race analysis for map scopes.
//!
//! [`analyze_map`] decides whether a map body may execute its iterations
//! concurrently, replacing the old syntactic `parallel_safe` heuristic in
//! the runtime.  The model matches the runtime's parallel map path exactly:
//! every iteration evaluates tasklets against an immutable snapshot of the
//! arrays and buffers its writes, which are applied afterwards in flat
//! iteration order.  Concurrent execution is therefore bit-identical to
//! sequential execution iff
//!
//! * no iteration *reads* a location that a different iteration writes
//!   (snapshot reads would observe the pre-map value instead), and
//! * no iteration reads a location that an *earlier tasklet of the same
//!   iteration* wrote (snapshot reads don't see intra-iteration writes
//!   either), and
//! * no two iterations write the same location through plain (non-WCR)
//!   writes — overlapping `Wcr::Sum` writes commute with the buffered
//!   in-order application and classify as [`ParVerdict::Reduction`].
//!
//! Every access is decomposed into an affine form `rest + Σ cᵢ·paramᵢ` per
//! dimension (building on [`SymExpr::affine_in`]); range dimensions
//! contribute their start index, which is exactly what the runtime reads.
//! Pairs of accesses are then separated with standard dependence tests —
//! GCD, bounds differences over the concrete iteration box, and an exact
//! injectivity decision (fraction-free Gaussian elimination over the
//! coefficient matrix) for self-overlap — with a brute-force enumeration
//! fallback for small concrete domains.  Anything the algebra cannot
//! decide degrades to [`ParVerdict::Unknown`], which the runtime treats as
//! sequential; `Safe` is only ever returned on proof.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{DfNode, MapScope};
use crate::memlet::{IndexRange, Memlet, Subset, Wcr};
use crate::symexpr::SymExpr;

/// Domains small enough to decide pairwise overlap by exact enumeration.
const ENUM_CAP: usize = 4096;

/// The analyzer's judgement of a map scope.
#[derive(Clone, Debug, PartialEq)]
pub enum ParVerdict {
    /// No cross-iteration conflict exists: parallel execution is
    /// bit-identical to sequential execution.
    Safe,
    /// The only cross-iteration conflicts are `Wcr::Sum` accumulations
    /// into common locations; the runtime applies buffered accumulations
    /// in iteration order, so parallel execution stays bit-identical.
    Reduction,
    /// A conflicting access pair was proven: parallel execution would
    /// diverge from sequential execution.
    Race(Box<Conflict>),
    /// The analysis could not prove safety (non-affine subsets, unresolved
    /// symbols, nested maps or library nodes, ...).
    Unknown,
}

impl ParVerdict {
    /// Whether the runtime may take the snapshot-based parallel path.
    pub fn allows_parallel(&self) -> bool {
        matches!(self, ParVerdict::Safe | ParVerdict::Reduction)
    }
}

impl fmt::Display for ParVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParVerdict::Safe => write!(f, "safe"),
            ParVerdict::Reduction => write!(f, "reduction"),
            ParVerdict::Race(c) => write!(f, "race({c})"),
            ParVerdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// A proven conflicting access pair.
#[derive(Clone, Debug, PartialEq)]
pub struct Conflict {
    pub array: String,
    /// Rendered memlet of the write side.
    pub first: String,
    /// Rendered memlet of the other access.
    pub second: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` vs `{}`", self.first, self.second)
    }
}

/// One subset decomposed as affine functions of the map parameters:
/// dimension `d` accesses `rests[d] + Σ_p coeffs[d][p] · param_p`.
#[derive(Clone, Debug, PartialEq)]
pub struct AffineAccess {
    /// Per-dimension coefficient of each map parameter.
    pub coeffs: Vec<Vec<i64>>,
    /// Per-dimension loop-invariant remainder (free of map parameters).
    pub rests: Vec<SymExpr>,
}

/// Decompose every dimension of `subset` as an affine function of
/// `params`.  Range dimensions contribute their start index (the runtime
/// reads ranges at their start).  Returns `None` when any dimension is not
/// affine (division/remainder/min/max over a parameter, or a symbolic
/// coefficient).  Whole-array subsets have no dimensions to decompose and
/// are NOT handled here — see [`analyze_map`]'s scalar-access treatment.
pub fn affine_subset(subset: &Subset, params: &[String]) -> Option<AffineAccess> {
    let mut coeffs = Vec::with_capacity(subset.0.len());
    let mut rests = Vec::with_capacity(subset.0.len());
    for r in &subset.0 {
        let e = match r {
            IndexRange::Index(e) => e,
            IndexRange::Range { start, .. } => start,
        };
        let mut cs = Vec::with_capacity(params.len());
        let mut rest = e.clone();
        for p in params {
            let (c, rem) = rest.affine_in(p)?;
            cs.push(c);
            rest = rem;
        }
        if params.iter().any(|p| rest.references(p)) {
            return None;
        }
        coeffs.push(cs);
        rests.push(rest.simplified());
    }
    Some(AffineAccess { coeffs, rests })
}

/// Whether the read/write relation between two subsets along the single
/// loop variable `var` is statically decidable: both decompose affinely in
/// `var` with the same rank, and in every dimension where the two move with
/// the *same* stride the offset between them is a compile-time constant.
/// (With distinct strides the pair is a moving/fixed or differently-strided
/// relation whose live in-order reads the specialized loop preserves
/// exactly; with equal strides a symbolic offset could be anything, so the
/// relation is undecidable.)  The specialization tier uses this as its
/// aliasing precondition: an undecidable relation falls back to the VM.
pub fn alias_decidable(write: &Subset, read: &Subset, var: &str) -> bool {
    let params = [var.to_string()];
    let (Some(w), Some(r)) = (affine_subset(write, &params), affine_subset(read, &params)) else {
        return false;
    };
    if w.rests.len() != r.rests.len() {
        return false;
    }
    for d in 0..w.rests.len() {
        if w.coeffs[d] != r.coeffs[d] {
            continue;
        }
        // Equal strides: the offset must be constant.  It is iff every free
        // symbol cancels out of the difference: peel them one by one via
        // `affine_in` (the simplifier alone does not cancel symbolic terms
        // across a subtraction).
        let mut diff =
            SymExpr::Sub(Box::new(r.rests[d].clone()), Box::new(w.rests[d].clone())).simplified();
        for s in diff.free_symbols() {
            let Some((c, rem)) = diff.affine_in(&s) else {
                return false;
            };
            if c != 0 {
                return false;
            }
            diff = rem;
        }
        if diff.eval_const().is_err() {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Internal access model.
// ---------------------------------------------------------------------------

/// How an access addresses its array.
#[derive(Clone, Debug)]
enum Pattern {
    /// Per-dimension affine function of the map parameters.
    Affine(AffineAccess),
    /// Whole-array subset: the runtime treats it as a scalar access of a
    /// length-1 container, i.e. one fixed location every iteration.
    Scalar,
    /// Not decomposable; the analysis cannot reason about it.
    Opaque,
}

/// One read or write collected from the map body.
struct Access {
    array: String,
    pattern: Pattern,
    /// `Wcr::Sum` write-conflict resolution (writes only).
    wcr: bool,
    /// Topological position of the tasklet this access belongs to.
    topo_pos: usize,
    /// Rendered memlet, for conflict reports.
    rendered: String,
}

/// Concrete per-parameter iteration domain (when resolvable).
struct Domain {
    /// Inclusive lower bound per parameter, when constant.
    lows: Vec<Option<i64>>,
    /// Trip count per parameter, when constant (clamped at 0).
    extents: Vec<Option<i64>>,
}

impl Domain {
    /// Parameters that can actually vary: unknown extent or extent >= 2.
    fn active(&self) -> Vec<usize> {
        (0..self.extents.len())
            .filter(|&p| self.extents[p].is_none_or(|n| n >= 2))
            .collect()
    }

    fn fully_concrete(&self) -> bool {
        self.lows.iter().all(Option::is_some) && self.extents.iter().all(Option::is_some)
    }

    fn total(&self) -> Option<usize> {
        self.extents
            .iter()
            .try_fold(1usize, |acc, e| acc.checked_mul((*e)? as usize))
    }
}

/// Result of a pairwise separation attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
enum PairRelation {
    /// The two accesses can never touch the same location on the relevant
    /// iteration pairs.
    Disjoint,
    /// A conflicting iteration pair provably exists.
    Overlap,
    /// Could not decide either way.
    May,
}

// ---------------------------------------------------------------------------
// Map analysis.
// ---------------------------------------------------------------------------

/// Analyze one map scope under concrete symbol `bindings` (outer loop
/// iterators may be absent; anything unresolved degrades toward
/// [`ParVerdict::Unknown`], never toward an unsound `Safe`).
pub fn analyze_map(map: &MapScope, bindings: &HashMap<String, i64>) -> ParVerdict {
    // The runtime's parallel body evaluator executes tasklets only; a body
    // with nested maps or library nodes must never take the parallel path.
    if !map
        .body
        .nodes
        .iter()
        .all(|n| matches!(n, DfNode::Access(_) | DfNode::Tasklet(_)))
    {
        return ParVerdict::Unknown;
    }
    let Some(order) = map.body.topological_order() else {
        return ParVerdict::Unknown; // Cyclic: fails at runtime on any path.
    };
    let topo_pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    if map.params.len() != map.ranges.len() {
        return ParVerdict::Unknown;
    }
    let domain = Domain {
        lows: map
            .ranges
            .iter()
            .map(|(s, _)| s.eval(bindings).ok())
            .collect(),
        extents: map
            .ranges
            .iter()
            .map(|(s, e)| {
                SymExpr::Sub(Box::new(e.clone()), Box::new(s.clone()))
                    .simplified()
                    .eval(bindings)
                    .ok()
                    .map(|n| n.max(0))
            })
            .collect(),
    };
    // A domain with at most one point cannot conflict across iterations,
    // and same-iteration ordering is identical on both paths.
    if let Some(total) = domain.total() {
        if total <= 1 {
            return ParVerdict::Safe;
        }
    }

    // Collect reads and writes the way the runtime does: any in-edge of a
    // tasklet reads `memlet.data`, any out-edge of a tasklet writes it.
    let mut reads: Vec<Access> = Vec::new();
    let mut writes: Vec<Access> = Vec::new();
    for e in &map.body.edges {
        if e.src >= map.body.nodes.len() || e.dst >= map.body.nodes.len() {
            return ParVerdict::Unknown; // Dangling edge: invalid body.
        }
        let src_tasklet = matches!(map.body.nodes[e.src], DfNode::Tasklet(_));
        let dst_tasklet = matches!(map.body.nodes[e.dst], DfNode::Tasklet(_));
        if !src_tasklet && !dst_tasklet {
            // Access-to-access copies are inert in this runtime (neither
            // the sequential nor the parallel body evaluator moves data for
            // them), but be conservative about shapes we don't model.
            return ParVerdict::Unknown;
        }
        let mk = |topo_node: usize| Access {
            array: e.memlet.data.clone(),
            pattern: pattern_of(&e.memlet, &map.params),
            wcr: matches!(e.memlet.wcr, Some(Wcr::Sum)),
            topo_pos: topo_pos.get(&topo_node).copied().unwrap_or(0),
            rendered: render_memlet(&e.memlet),
        };
        if dst_tasklet {
            reads.push(mk(e.dst));
        }
        if src_tasklet {
            writes.push(mk(e.src));
        }
    }

    // Pairwise classification: every write against every other access of
    // the same array (including itself, for cross-iteration self-overlap).
    let mut worst = ParVerdict::Safe;
    let mut raise = |v: ParVerdict| {
        let rank = |x: &ParVerdict| match x {
            ParVerdict::Safe => 0,
            ParVerdict::Reduction => 1,
            ParVerdict::Unknown => 2,
            ParVerdict::Race(_) => 3,
        };
        if rank(&v) > rank(&worst) {
            worst = v;
        }
    };
    for (wi, w) in writes.iter().enumerate() {
        // Write-write pairs (self pair included once): only distinct
        // iterations matter — same-iteration multi-writes are applied in
        // the same node order on both paths.
        for other in &writes[wi..] {
            if other.array != w.array {
                continue;
            }
            let rel = classify_pair(w, other, &domain, false, bindings);
            raise(pair_verdict(rel, w, other, w.wcr && other.wcr));
        }
        for r in &reads {
            if r.array != w.array {
                continue;
            }
            // A read scheduled after the write within one iteration sees
            // the new value sequentially but the stale snapshot in
            // parallel, so same-iteration coincidence also conflicts.
            let include_equal = w.topo_pos < r.topo_pos;
            let rel = classify_pair(w, r, &domain, include_equal, bindings);
            raise(pair_verdict(rel, w, r, false));
        }
    }
    worst
}

/// Map a pair relation to a verdict contribution.
fn pair_verdict(rel: PairRelation, w: &Access, other: &Access, both_wcr: bool) -> ParVerdict {
    match rel {
        PairRelation::Disjoint => ParVerdict::Safe,
        // Overlapping Sum-accumulations commute with the runtime's
        // in-iteration-order buffered application: a reduction, not a race.
        _ if both_wcr => ParVerdict::Reduction,
        PairRelation::Overlap => ParVerdict::Race(Box::new(Conflict {
            array: w.array.clone(),
            first: w.rendered.clone(),
            second: other.rendered.clone(),
        })),
        PairRelation::May => ParVerdict::Unknown,
    }
}

fn pattern_of(m: &Memlet, params: &[String]) -> Pattern {
    if m.subset.is_all() {
        return Pattern::Scalar;
    }
    match affine_subset(&m.subset, params) {
        Some(a) => Pattern::Affine(a),
        None => Pattern::Opaque,
    }
}

fn render_memlet(m: &Memlet) -> String {
    format!("{m}")
}

// ---------------------------------------------------------------------------
// Pairwise separation.
// ---------------------------------------------------------------------------

/// Classify the pair (`a` = write, `b` = other access).  The conflict
/// domain is all iteration pairs `I != I'`, plus `I = I'` when
/// `include_equal` is set.
fn classify_pair(
    a: &Access,
    b: &Access,
    domain: &Domain,
    include_equal: bool,
    bindings: &HashMap<String, i64>,
) -> PairRelation {
    match (&a.pattern, &b.pattern) {
        (Pattern::Opaque, _) | (_, Pattern::Opaque) => PairRelation::May,
        // A whole-array subset is a scalar access of a length-1 container:
        // one fixed location, touched by every iteration.  Any pair
        // involving one therefore collides on every iteration pair (an
        // element access of the same length-1 array also resolves to that
        // location; larger arrays fail at runtime on every path).
        (Pattern::Scalar, _) | (_, Pattern::Scalar) => {
            if domain.total().is_some() {
                // total >= 2 was established by the caller.
                PairRelation::Overlap
            } else {
                PairRelation::May
            }
        }
        (Pattern::Affine(pa), Pattern::Affine(pb)) => {
            affine_pair(pa, pb, domain, include_equal, bindings)
        }
    }
}

fn affine_pair(
    a: &AffineAccess,
    b: &AffineAccess,
    domain: &Domain,
    include_equal: bool,
    bindings: &HashMap<String, i64>,
) -> PairRelation {
    if a.rests.len() != b.rests.len() {
        return PairRelation::May; // Differently-ranked views of one array.
    }
    let dims = a.rests.len();
    let nparams = domain.extents.len();
    let active = domain.active();
    if active.is_empty() {
        // Single iteration point; only `I = I'` coincidence can conflict.
        if !include_equal {
            return PairRelation::Disjoint;
        }
    }

    // Per-dimension constant offsets `rest_b - rest_a`, where resolvable.
    let mut deltas: Vec<Option<i64>> = Vec::with_capacity(dims);
    for d in 0..dims {
        let diff =
            SymExpr::Sub(Box::new(b.rests[d].clone()), Box::new(a.rests[d].clone())).simplified();
        deltas.push(diff.eval(bindings).ok());
    }

    let identical = a.coeffs == b.coeffs && deltas.iter().all(|d| *d == Some(0));

    // (1) Disjointness over independent iteration pairs, one dimension at a
    // time: the equation  Σ a_c·I_p − Σ b_c·I'_p = Δ_d  must be solvable in
    // every dimension for the accesses to collide at all.
    for (d, &delta_d) in deltas.iter().enumerate() {
        // Fold inactive parameters (fixed at their lower bound) into Δ.
        let mut delta = delta_d;
        let mut resolvable = true;
        for p in 0..nparams {
            if active.contains(&p) {
                continue;
            }
            let cdiff = a.coeffs[d][p] - b.coeffs[d][p];
            if cdiff == 0 {
                continue;
            }
            match (delta, domain.lows[p]) {
                (Some(dl), Some(lo)) => {
                    delta = cdiff.checked_mul(lo).and_then(|t| dl.checked_sub(t));
                    if delta.is_none() {
                        resolvable = false;
                    }
                }
                _ => resolvable = false,
            }
        }
        let Some(delta) = (if resolvable { delta } else { None }) else {
            continue; // This dimension cannot separate the pair.
        };
        let coeffs: Vec<i64> = active
            .iter()
            .map(|&p| a.coeffs[d][p])
            .chain(active.iter().map(|&p| -b.coeffs[d][p]))
            .collect();
        if coeffs.iter().all(|&c| c == 0) {
            if delta != 0 {
                return PairRelation::Disjoint;
            }
            continue;
        }
        // GCD test.
        let g = coeffs.iter().fold(0i64, |g, &c| gcd(g, c.abs()));
        if g > 0 && delta.rem_euclid(g) != 0 {
            return PairRelation::Disjoint;
        }
        // Bounds test over the concrete box.
        if domain.fully_concrete() {
            let (mut lo_sum, mut hi_sum) = (0i128, 0i128);
            for (k, &p) in active.iter().chain(active.iter()).enumerate() {
                let c = coeffs[k] as i128;
                let lo = domain.lows[p].unwrap() as i128;
                let hi = lo + (domain.extents[p].unwrap() as i128 - 1).max(0);
                let (vmin, vmax) = if c >= 0 {
                    (c * lo, c * hi)
                } else {
                    (c * hi, c * lo)
                };
                lo_sum += vmin;
                hi_sum += vmax;
            }
            let delta = delta as i128;
            if delta < lo_sum || delta > hi_sum {
                return PairRelation::Disjoint;
            }
        }
    }

    // (2) Identical patterns: collisions happen exactly where the index map
    // is non-injective (plus `I = I'` when that is in the conflict domain).
    if identical {
        if include_equal {
            // Every iteration pair with `I = I'` collides by definition.
            return PairRelation::Overlap;
        }
        // Injective over the active parameters => distinct iterations
        // always touch distinct locations.
        let matrix: Vec<Vec<i64>> = (0..dims)
            .map(|d| active.iter().map(|&p| a.coeffs[d][p]).collect())
            .collect();
        if rank(&matrix) == active.len() {
            return PairRelation::Disjoint;
        }
        // A parameter no dimension depends on varies freely: definite
        // self-overlap (e.g. a fixed `A[0]` or a reduction dimension).
        let has_free_param = (0..active.len()).any(|k| matrix.iter().all(|row| row[k] == 0));
        if has_free_param {
            return PairRelation::Overlap;
        }
        // Rank-deficient without a free column (e.g. `A[i+j]`): fall back
        // to exact enumeration when the domain is small and concrete.
    }

    // (3) Exact enumeration for small concrete domains: evaluate both index
    // maps over every iteration and look for a colliding pair.
    if domain.fully_concrete() {
        if let Some(total) = domain.total() {
            if total <= ENUM_CAP && deltas.iter().all(Option::is_some) {
                return enumerate_pair(a, b, &deltas, domain, include_equal, total);
            }
        }
    }
    PairRelation::May
}

/// Exact overlap decision by enumeration: map every iteration through both
/// index functions and detect a pair `(I, I')` in the conflict domain with
/// `a(I) == b(I')`.
fn enumerate_pair(
    a: &AffineAccess,
    b: &AffineAccess,
    deltas: &[Option<i64>],
    domain: &Domain,
    include_equal: bool,
    total: usize,
) -> PairRelation {
    let nparams = domain.extents.len();
    let dims = a.rests.len();
    // Index of `a` at iteration I, shifted so both sides share the same
    // constant part: a(I) = Σ a_c·I  and  b(I') = Σ b_c·I' + Δ.
    let eval = |coeffs: &[Vec<i64>], point: &[i64], shift: &[i64]| -> Vec<i64> {
        (0..dims)
            .map(|d| shift[d] + (0..nparams).map(|p| coeffs[d][p] * point[p]).sum::<i64>())
            .collect()
    };
    let zeros = vec![0i64; dims];
    let shift_b: Vec<i64> = deltas.iter().map(|d| d.unwrap()).collect();
    let mut points = Vec::with_capacity(total);
    let mut point: Vec<i64> = (0..nparams).map(|p| domain.lows[p].unwrap()).collect();
    for _ in 0..total {
        points.push(point.clone());
        for p in (0..nparams).rev() {
            point[p] += 1;
            if point[p] < domain.lows[p].unwrap() + domain.extents[p].unwrap() {
                break;
            }
            point[p] = domain.lows[p].unwrap();
        }
    }
    // a-index -> first iteration that produces it.
    let mut seen: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
    for (i, pt) in points.iter().enumerate() {
        seen.entry(eval(&a.coeffs, pt, &zeros)).or_default().push(i);
    }
    for (j, pt) in points.iter().enumerate() {
        if let Some(is) = seen.get(&eval(&b.coeffs, pt, &shift_b)) {
            for &i in is {
                if i != j || include_equal {
                    return PairRelation::Overlap;
                }
            }
        }
    }
    PairRelation::Disjoint
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Rank of an integer matrix over the rationals, via fraction-free Gaussian
/// elimination in `i128` (coefficients are small memlet strides, so no
/// overflow in practice; saturating keeps it sound regardless).
pub(crate) fn rank(matrix: &[Vec<i64>]) -> usize {
    let mut m: Vec<Vec<i128>> = matrix
        .iter()
        .map(|row| row.iter().map(|&v| v as i128).collect())
        .collect();
    let rows = m.len();
    let cols = m.first().map_or(0, Vec::len);
    let mut r = 0;
    for c in 0..cols {
        let Some(pivot) = (r..rows).find(|&i| m[i][c] != 0) else {
            continue;
        };
        m.swap(r, pivot);
        for i in r + 1..rows {
            if m[i][c] == 0 {
                continue;
            }
            let (p, q) = (m[r][c], m[i][c]);
            let (top, bottom) = m.split_at_mut(i);
            for (x, &y) in bottom[0][c..].iter_mut().zip(&top[r][c..]) {
                *x = x.saturating_mul(p).saturating_sub(y.saturating_mul(q));
            }
        }
        r += 1;
        if r == rows {
            break;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DataflowGraph, MapScope};
    use crate::memlet::Subset;
    use crate::scalar_expr::ScalarExpr;
    use crate::tasklet::Tasklet;

    fn bindings(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// One-tasklet body: reads every memlet in `reads`, writes every memlet
    /// in `writes`.
    fn body(reads: &[Memlet], writes: &[Memlet]) -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        for m in reads {
            let a = g.add_access(&m.data);
            g.add_edge(a, None, t, Some("x"), m.clone());
        }
        for m in writes {
            let a = g.add_access(&m.data);
            g.add_edge(t, Some("o"), a, None, m.clone());
        }
        g
    }

    fn map1(body: DataflowGraph, lo: i64, hi: i64) -> MapScope {
        MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(lo), SymExpr::int(hi))],
            body,
            parallel: true,
        }
    }

    fn i() -> SymExpr {
        SymExpr::sym("i")
    }

    #[test]
    fn identity_map_is_safe() {
        let m = map1(
            body(
                &[Memlet::element("X", vec![i()])],
                &[Memlet::element("A", vec![i()])],
            ),
            0,
            100,
        );
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn strided_injective_write_is_safe_beyond_enumeration() {
        // A[2*i + 1] over a domain far larger than ENUM_CAP: only the
        // injectivity decision can prove this.
        let m = map1(
            body(
                &[Memlet::element("X", vec![i()])],
                &[Memlet::element("A", vec![i().mul_int(2).add_int(1)])],
            ),
            0,
            1_000_000,
        );
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn fixed_element_write_is_race() {
        let m = map1(
            body(
                &[Memlet::element("X", vec![i()])],
                &[Memlet::element("A", vec![SymExpr::int(0)])],
            ),
            0,
            4,
        );
        assert!(matches!(
            analyze_map(&m, &bindings(&[])),
            ParVerdict::Race(_)
        ));
    }

    #[test]
    fn whole_array_write_is_race() {
        let m = map1(
            body(&[Memlet::element("X", vec![i()])], &[Memlet::all("A")]),
            0,
            4,
        );
        assert!(matches!(
            analyze_map(&m, &bindings(&[])),
            ParVerdict::Race(_)
        ));
    }

    #[test]
    fn single_iteration_fixed_write_is_safe() {
        let m = map1(
            body(
                &[Memlet::element("X", vec![i()])],
                &[Memlet::element("A", vec![SymExpr::int(0)])],
            ),
            0,
            1,
        );
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn wcr_sum_accumulation_is_reduction() {
        let mut w = Memlet::element("A", vec![SymExpr::int(0)]);
        w.wcr = Some(Wcr::Sum);
        let m = map1(body(&[Memlet::element("X", vec![i()])], &[w]), 0, 100);
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Reduction);
    }

    #[test]
    fn shifted_read_of_written_array_is_race() {
        // write A[i], read A[i+1]: iteration i+1 writes what iteration i
        // reads, so snapshot reads diverge from sequential execution.
        let m = map1(
            body(
                &[Memlet::element("A", vec![i().add_int(1)])],
                &[Memlet::element("A", vec![i()])],
            ),
            0,
            8,
        );
        assert!(matches!(
            analyze_map(&m, &bindings(&[])),
            ParVerdict::Race(_)
        ));
    }

    #[test]
    fn bounds_test_separates_far_apart_accesses() {
        // write A[i], read A[i + 100] over i in [0, 8): the offset can
        // never be bridged inside the iteration box.
        let m = map1(
            body(
                &[Memlet::element("A", vec![i().add_int(100)])],
                &[Memlet::element("A", vec![i()])],
            ),
            0,
            8,
        );
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn gcd_test_separates_odd_and_even() {
        // write A[2*i], read A[2*i + 1] over a huge domain: parity proves
        // disjointness where enumeration cannot run.
        let m = map1(
            body(
                &[Memlet::element("A", vec![i().mul_int(2).add_int(1)])],
                &[Memlet::element("A", vec![i().mul_int(2)])],
            ),
            0,
            1_000_000,
        );
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn symbolic_offset_resolves_through_bindings() {
        // write A[i + K], read A[i]: decidable only once K is known.
        let reads = [Memlet::element("A", vec![i()])];
        let writes = [Memlet::element("A", vec![i().add(&SymExpr::sym("K"))])];
        let m = map1(body(&reads, &writes), 0, 8);
        // K = 100 separates the accesses; unbound K cannot be proven.
        assert_eq!(analyze_map(&m, &bindings(&[("K", 100)])), ParVerdict::Safe);
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Unknown);
    }

    #[test]
    fn same_iteration_read_after_write_is_race() {
        // t1 writes A[i]; t2 reads A[i] afterwards.  Sequentially t2 sees
        // t1's value; the parallel path reads the pre-map snapshot.
        let mut g = DataflowGraph::new();
        let t1 = g.add_tasklet(Tasklet::new("t1", "o", ScalarExpr::input("x")));
        let t2 = g.add_tasklet(Tasklet::new("t2", "o", ScalarExpr::input("x")));
        let x = g.add_access("X");
        let a = g.add_access("A");
        let b = g.add_access("B");
        g.add_edge(x, None, t1, Some("x"), Memlet::element("X", vec![i()]));
        g.add_edge(t1, Some("o"), a, None, Memlet::element("A", vec![i()]));
        g.add_edge(a, None, t2, Some("x"), Memlet::element("A", vec![i()]));
        g.add_edge(t2, Some("o"), b, None, Memlet::element("B", vec![i()]));
        let m = map1(g, 0, 8);
        assert!(matches!(
            analyze_map(&m, &bindings(&[])),
            ParVerdict::Race(_)
        ));
    }

    #[test]
    fn nested_map_body_is_unknown() {
        let mut g = DataflowGraph::new();
        g.add_map(map1(DataflowGraph::new(), 0, 4));
        let m = map1(g, 0, 8);
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Unknown);
    }

    #[test]
    fn rank_deficient_two_param_write_races() {
        // A[i + j] over a 2-D domain: (0,1) and (1,0) collide.
        let g = body(
            &[Memlet::element("X", vec![i()])],
            &[Memlet::element("A", vec![i().add(&SymExpr::sym("j"))])],
        );
        let m = MapScope {
            params: vec!["i".into(), "j".into()],
            ranges: vec![
                (SymExpr::int(0), SymExpr::int(4)),
                (SymExpr::int(0), SymExpr::int(4)),
            ],
            body: g,
            parallel: true,
        };
        assert!(matches!(
            analyze_map(&m, &bindings(&[])),
            ParVerdict::Race(_)
        ));
    }

    #[test]
    fn two_param_transpose_style_write_is_safe() {
        // A[i][j] write with X[j][i] read of a different array.
        let g = body(
            &[Memlet::element("X", vec![SymExpr::sym("j"), i()])],
            &[Memlet::element("A", vec![i(), SymExpr::sym("j")])],
        );
        let m = MapScope {
            params: vec!["i".into(), "j".into()],
            ranges: vec![
                (SymExpr::int(0), SymExpr::int(64)),
                (SymExpr::int(0), SymExpr::int(64)),
            ],
            body: g,
            parallel: true,
        };
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn ranged_read_is_analyzed_at_its_start() {
        // Read X[i:i+1], write A[i]: the runtime reads the range start, so
        // this is the canonical "newly parallel" shape the old syntactic
        // heuristic rejected.
        let read = Memlet {
            data: "X".into(),
            subset: Subset(vec![IndexRange::range(i(), i().add_int(1))]),
            wcr: None,
        };
        let m = map1(body(&[read], &[Memlet::element("A", vec![i()])]), 0, 100);
        assert_eq!(analyze_map(&m, &bindings(&[])), ParVerdict::Safe);
    }

    #[test]
    fn alias_decidable_requires_constant_offset() {
        let w = Subset(vec![IndexRange::idx(i())]);
        let r_const = Subset(vec![IndexRange::idx(i().add_int(-1))]);
        let r_sym = Subset(vec![IndexRange::idx(i().add(&SymExpr::sym("K")))]);
        assert!(alias_decidable(&w, &r_const, "i"));
        assert!(!alias_decidable(&w, &r_sym, "i"));
        // Rank mismatch is undecidable.
        let r2 = Subset(vec![IndexRange::idx(i()), IndexRange::idx(i())]);
        assert!(!alias_decidable(&w, &r2, "i"));
    }

    #[test]
    fn affine_subset_rejects_nonlinear_indices() {
        let params = vec!["i".to_string()];
        let quad = Subset(vec![IndexRange::idx(i().mul(&i()))]);
        assert!(affine_subset(&quad, &params).is_none());
        let lin = Subset(vec![IndexRange::idx(i().mul_int(3).add_int(7))]);
        let a = affine_subset(&lin, &params).unwrap();
        assert_eq!(a.coeffs, vec![vec![3]]);
        assert_eq!(a.rests, vec![SymExpr::int(7)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::{DataflowGraph, MapScope};
    use crate::memlet::Subset;
    use crate::scalar_expr::ScalarExpr;
    use crate::tasklet::Tasklet;
    use proptest::prelude::*;

    /// A randomly generated affine access: `c0·i + c1·j + rest`, optionally
    /// a `Wcr::Sum` write.
    #[derive(Clone, Debug)]
    struct GenAccess {
        coeffs: [i64; 2],
        rest: i64,
        wcr: bool,
    }

    fn arb_access() -> impl Strategy<Value = GenAccess> {
        (-2i64..3, -2i64..3, -3i64..4, 0i64..2).prop_map(|(c0, c1, rest, wcr)| GenAccess {
            coeffs: [c0, c1],
            rest,
            wcr: wcr == 1,
        })
    }

    fn arb_opt_access() -> impl Strategy<Value = Option<GenAccess>> {
        prop_oneof![
            Just(None),
            arb_access().prop_map(Some),
            arb_access().prop_map(Some),
        ]
    }

    fn memlet_of(a: &GenAccess, wcr_allowed: bool) -> Memlet {
        let idx = SymExpr::sym("i")
            .mul_int(a.coeffs[0])
            .add(&SymExpr::sym("j").mul_int(a.coeffs[1]))
            .add_int(a.rest);
        let mut m = Memlet::element("A", vec![idx]);
        if wcr_allowed && a.wcr {
            m.wcr = Some(Wcr::Sum);
        }
        m
    }

    /// Brute-force the hazard model at concrete extents using
    /// `Subset::eval_indices` (independent of the affine extraction):
    /// returns (any plain conflict, any wcr-wcr overlap).
    fn brute_force(
        writes: &[Memlet],
        reads: &[Memlet],
        lows: [i64; 2],
        extents: [i64; 2],
    ) -> (bool, bool) {
        let mut points = Vec::new();
        for di in 0..extents[0] {
            for dj in 0..extents[1] {
                points.push([lows[0] + di, lows[1] + dj]);
            }
        }
        let index = |m: &Memlet, p: [i64; 2]| -> Vec<i64> {
            let b = HashMap::from([("i".to_string(), p[0]), ("j".to_string(), p[1])]);
            m.subset.eval_indices(&b).unwrap()
        };
        let (mut plain, mut wcr_only) = (false, false);
        for (wi, w) in writes.iter().enumerate() {
            for other in &writes[wi..] {
                for (ia, pa) in points.iter().enumerate() {
                    for (ib, pb) in points.iter().enumerate() {
                        if ia == ib {
                            continue; // Same-iteration writes keep node order.
                        }
                        if index(w, *pa) == index(other, *pb) {
                            if w.wcr.is_some() && other.wcr.is_some() {
                                wcr_only = true;
                            } else {
                                plain = true;
                            }
                        }
                    }
                }
            }
            for r in reads {
                for (ia, pa) in points.iter().enumerate() {
                    for (ib, pb) in points.iter().enumerate() {
                        if ia == ib {
                            continue; // Reads and writes share one tasklet.
                        }
                        if index(w, *pa) == index(r, *pb) {
                            plain = true;
                        }
                    }
                }
            }
        }
        (plain, wcr_only)
    }

    proptest! {
        /// The static verdict must never contradict brute-force overlap
        /// enumeration: `Safe` implies zero observed conflicts, `Reduction`
        /// implies only WCR-WCR overlaps, and a proven `Race` implies a
        /// concrete conflicting pair exists.
        #[test]
        fn verdict_matches_brute_force(
            w1 in arb_access(),
            w2 in arb_opt_access(),
            r1 in arb_opt_access(),
            lo0 in -1i64..2,
            lo1 in -1i64..2,
            n0 in 1i64..5,
            n1 in 1i64..5,
        ) {
            let mut writes = vec![memlet_of(&w1, true)];
            if let Some(w) = &w2 {
                writes.push(memlet_of(w, true));
            }
            let reads: Vec<Memlet> = r1.iter().map(|r| memlet_of(r, false)).collect();

            let mut g = DataflowGraph::new();
            let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
            let x = g.add_access("X");
            g.add_edge(x, None, t, Some("x"), Memlet::element("X", vec![SymExpr::sym("i")]));
            for m in &reads {
                let a = g.add_access("A");
                g.add_edge(a, None, t, Some("x"), m.clone());
            }
            for m in &writes {
                let a = g.add_access("A");
                g.add_edge(t, Some("o"), a, None, m.clone());
            }
            let map = MapScope {
                params: vec!["i".into(), "j".into()],
                ranges: vec![
                    (SymExpr::int(lo0), SymExpr::int(lo0 + n0)),
                    (SymExpr::int(lo1), SymExpr::int(lo1 + n1)),
                ],
                body: g,
                parallel: true,
            };

            let verdict = analyze_map(&map, &HashMap::new());
            let (plain, wcr_only) = brute_force(&writes, &reads, [lo0, lo1], [n0, n1]);
            match verdict {
                ParVerdict::Safe => {
                    prop_assert!(!plain && !wcr_only,
                        "Safe verdict but brute force found a conflict");
                }
                ParVerdict::Reduction => {
                    prop_assert!(!plain,
                        "Reduction verdict but brute force found a plain conflict");
                }
                ParVerdict::Race(_) => {
                    prop_assert!(plain,
                        "Race verdict but brute force found no plain conflict");
                }
                ParVerdict::Unknown => {}
            }
        }

        /// `alias_decidable` accepts exactly the constant-offset relations.
        #[test]
        fn alias_decidable_matches_offset_shape(c in -3i64..4, off in -5i64..6) {
            let i = SymExpr::sym("i");
            let w = Subset(vec![IndexRange::idx(i.clone())]);
            let r = Subset(vec![IndexRange::idx(i.mul_int(c).add_int(off))]);
            // Affine in `i` either way; always decidable (delta may depend
            // on the coefficient but the rest difference stays constant).
            prop_assert!(alias_decidable(&w, &r, "i"));
            let r_sym = Subset(vec![IndexRange::idx(
                i.add(&SymExpr::sym("K")).add_int(off),
            )]);
            prop_assert!(!alias_decidable(&w, &r_sym, "i"));
        }
    }
}
