//! Dataflow graphs: the contents of an SDFG state.
//!
//! A dataflow graph is a DAG of access nodes, tasklets, nested map scopes and
//! library nodes, connected by edges carrying memlets.  Map scopes own a
//! nested dataflow graph (their body); this replaces DaCe's map-entry /
//! map-exit node pairs with an equivalent but easier-to-reverse structure
//! (documented substitution in `DESIGN.md`).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::memlet::Memlet;
use crate::symexpr::SymExpr;
use crate::tasklet::Tasklet;

/// Identifier of a node inside one dataflow graph.
pub type NodeId = usize;

/// Library nodes: coarse-grained operations expanded into optimized kernels
/// by the runtime (the equivalent of DaCe's BLAS library nodes).
#[derive(Clone, Debug, PartialEq)]
pub enum LibraryOp {
    /// `C = A @ B` for 2-D operands (connectors: "A", "B" -> "C").
    MatMul,
    /// `y = A @ x` matrix-vector product (connectors: "A", "x" -> "y").
    MatVec,
    /// `B = A^T` (connectors: "A" -> "B").
    Transpose,
    /// `out = sum(IN)` full reduction to a scalar array of shape `[1]`
    /// (connectors: "IN" -> "OUT"). With `accumulate`, `OUT += sum(IN)`.
    SumReduce {
        /// Accumulate into the output instead of overwriting it.
        accumulate: bool,
    },
    /// Copy `A` into `B` element-wise (connectors: "A" -> "B").
    Copy,
}

impl LibraryOp {
    /// Input connector names of the library node.
    pub fn input_connectors(&self) -> Vec<&'static str> {
        match self {
            LibraryOp::MatMul => vec!["A", "B"],
            LibraryOp::MatVec => vec!["A", "x"],
            LibraryOp::Transpose => vec!["A"],
            LibraryOp::SumReduce { .. } => vec!["IN"],
            LibraryOp::Copy => vec!["A"],
        }
    }

    /// Output connector names of the library node.
    pub fn output_connectors(&self) -> Vec<&'static str> {
        match self {
            LibraryOp::MatMul => vec!["C"],
            LibraryOp::MatVec => vec!["y"],
            LibraryOp::Transpose => vec!["B"],
            LibraryOp::SumReduce { .. } => vec!["OUT"],
            LibraryOp::Copy => vec!["B"],
        }
    }
}

/// A map scope: a parallel loop over an N-dimensional index set whose body is
/// a nested dataflow graph.
#[derive(Clone, Debug, PartialEq)]
pub struct MapScope {
    /// Map parameters (one per dimension).
    pub params: Vec<String>,
    /// Half-open iteration ranges `[start, end)` per parameter.
    pub ranges: Vec<(SymExpr, SymExpr)>,
    /// The nested dataflow body executed once per index point.
    pub body: DataflowGraph,
    /// Whether iterations may execute in parallel (no loop-carried
    /// dependencies).  The frontend sets this; the runtime uses rayon when
    /// it is true and the body's writes are disjoint per iteration.
    pub parallel: bool,
}

/// A node of a dataflow graph.
#[derive(Clone, Debug, PartialEq)]
pub enum DfNode {
    /// Access node referencing a data container by name.
    Access(String),
    /// Fine-grained computation.
    Tasklet(Tasklet),
    /// Parallel map scope with a nested body.
    MapScope(MapScope),
    /// Coarse-grained library operation.
    Library(LibraryOp),
}

impl DfNode {
    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            DfNode::Access(name) => format!("access:{name}"),
            DfNode::Tasklet(t) => format!("tasklet:{}", t.label),
            DfNode::MapScope(m) => format!("map[{}]", m.params.join(",")),
            DfNode::Library(op) => format!("lib:{op:?}"),
        }
    }
}

/// A directed edge between two nodes, annotated with a memlet.
#[derive(Clone, Debug, PartialEq)]
pub struct Edge {
    /// Source node id.
    pub src: NodeId,
    /// Source connector (tasklet output / library output), if any.
    pub src_conn: Option<String>,
    /// Destination node id.
    pub dst: NodeId,
    /// Destination connector (tasklet input / library input), if any.
    pub dst_conn: Option<String>,
    /// The data movement description.
    pub memlet: Memlet,
}

/// A dataflow graph (the contents of a state or of a map-scope body).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DataflowGraph {
    /// Nodes, addressed by index.
    pub nodes: Vec<DfNode>,
    /// Edges with memlets.
    pub edges: Vec<Edge>,
}

impl DataflowGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: DfNode) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Add an access node.
    pub fn add_access(&mut self, array: impl Into<String>) -> NodeId {
        self.add_node(DfNode::Access(array.into()))
    }

    /// Add a tasklet node.
    pub fn add_tasklet(&mut self, tasklet: Tasklet) -> NodeId {
        self.add_node(DfNode::Tasklet(tasklet))
    }

    /// Add a map scope node.
    pub fn add_map(&mut self, map: MapScope) -> NodeId {
        self.add_node(DfNode::MapScope(map))
    }

    /// Add a library node.
    pub fn add_library(&mut self, op: LibraryOp) -> NodeId {
        self.add_node(DfNode::Library(op))
    }

    /// Add an edge.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        src_conn: Option<&str>,
        dst: NodeId,
        dst_conn: Option<&str>,
        memlet: Memlet,
    ) {
        self.edges.push(Edge {
            src,
            src_conn: src_conn.map(|s| s.to_string()),
            dst,
            dst_conn: dst_conn.map(|s| s.to_string()),
            memlet,
        });
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, node: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.dst == node).collect()
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, node: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.src == node).collect()
    }

    /// Topological order of the nodes (Kahn's algorithm).
    ///
    /// Returns `None` if the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for e in &self.edges {
            indeg[e.dst] += 1;
            adj[e.src].push(e.dst);
        }
        let mut queue: VecDeque<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Arrays read by this graph (including nested map bodies), with the
    /// memlets used to read them.
    pub fn reads(&self) -> BTreeMap<String, Vec<Memlet>> {
        let mut out: BTreeMap<String, Vec<Memlet>> = BTreeMap::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeMap<String, Vec<Memlet>>) {
        for e in &self.edges {
            // An edge whose source is an access node is a read of that array.
            if let DfNode::Access(name) = &self.nodes[e.src] {
                out.entry(name.clone()).or_default().push(e.memlet.clone());
            }
        }
        for node in &self.nodes {
            if let DfNode::MapScope(m) = node {
                m.body.collect_reads(out);
            }
        }
    }

    /// Arrays written by this graph (including nested map bodies), with the
    /// memlets used to write them.
    pub fn writes(&self) -> BTreeMap<String, Vec<Memlet>> {
        let mut out: BTreeMap<String, Vec<Memlet>> = BTreeMap::new();
        self.collect_writes(&mut out);
        out
    }

    fn collect_writes(&self, out: &mut BTreeMap<String, Vec<Memlet>>) {
        for e in &self.edges {
            if let DfNode::Access(name) = &self.nodes[e.dst] {
                out.entry(name.clone()).or_default().push(e.memlet.clone());
            }
        }
        for node in &self.nodes {
            if let DfNode::MapScope(m) = node {
                m.body.collect_writes(out);
            }
        }
    }

    /// All arrays referenced by this graph (reads and writes, nested bodies
    /// included).
    pub fn referenced_arrays(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = BTreeSet::new();
        out.extend(self.reads().into_keys());
        out.extend(self.writes().into_keys());
        // Access nodes with no edges still reference the array.
        for node in &self.nodes {
            match node {
                DfNode::Access(name) => {
                    out.insert(name.clone());
                }
                DfNode::MapScope(m) => out.extend(m.body.referenced_arrays()),
                _ => {}
            }
        }
        out
    }

    /// Find the ids of all access nodes of a given array.
    pub fn access_nodes(&self, array: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                DfNode::Access(name) if name == array => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Estimated floating-point operation count of one execution of the graph
    /// under the given symbol bindings (used by the recomputation cost model).
    pub fn flop_estimate(&self, bindings: &HashMap<String, i64>) -> f64 {
        let mut total = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            total += match node {
                DfNode::Access(_) => 0.0,
                DfNode::Tasklet(t) => t.op_count() as f64,
                DfNode::MapScope(m) => {
                    let mut domain = 1.0;
                    let mut inner_bindings = bindings.clone();
                    for (p, (start, end)) in m.params.iter().zip(m.ranges.iter()) {
                        let s = start.eval(bindings).unwrap_or(0);
                        let e = end.eval(bindings).unwrap_or(0);
                        domain *= (e - s).max(0) as f64;
                        inner_bindings.insert(p.clone(), s);
                    }
                    domain * m.body.flop_estimate(&inner_bindings)
                }
                DfNode::Library(op) => self.library_flops(i, op, bindings),
            };
        }
        total
    }

    fn library_flops(&self, node: NodeId, op: &LibraryOp, bindings: &HashMap<String, i64>) -> f64 {
        // Volume-based estimate from the incoming memlets.
        let in_volume: f64 = self
            .in_edges(node)
            .iter()
            .map(|e| e.memlet.subset.volume(bindings).unwrap_or(1).max(1) as f64)
            .sum();
        match op {
            LibraryOp::MatMul => in_volume.powf(1.5), // ~ 2*N^3 for square N^2 inputs
            LibraryOp::MatVec => 2.0 * in_volume,
            LibraryOp::Transpose | LibraryOp::Copy => in_volume,
            LibraryOp::SumReduce { .. } => in_volume,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_expr::ScalarExpr as E;

    fn simple_graph() -> DataflowGraph {
        // A -> tasklet(out = a * 2) -> B
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("scale", "out", E::input("a").mul(E::c(2.0))));
        let b = g.add_access("B");
        g.add_edge(
            a,
            None,
            t,
            Some("a"),
            Memlet::element("A", vec![SymExpr::int(0)]),
        );
        g.add_edge(
            t,
            Some("out"),
            b,
            None,
            Memlet::element("B", vec![SymExpr::int(0)]),
        );
        g
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = simple_graph();
        let order = g.topological_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = simple_graph();
        // add a back edge B -> A through the tasklet to create a cycle
        g.add_edge(2, None, 0, None, Memlet::all("B"));
        g.add_edge(0, None, 2, None, Memlet::all("A"));
        // 0 -> 1 -> 2 -> 0 is a cycle
        g.add_edge(2, None, 1, Some("a"), Memlet::all("B"));
        g.add_edge(1, Some("out"), 0, None, Memlet::all("A"));
        assert!(g.topological_order().is_none() || g.topological_order().is_some());
        // Build an explicit 2-cycle to be precise:
        let mut g2 = DataflowGraph::new();
        let x = g2.add_access("X");
        let y = g2.add_access("Y");
        g2.add_edge(x, None, y, None, Memlet::all("X"));
        g2.add_edge(y, None, x, None, Memlet::all("Y"));
        assert!(g2.topological_order().is_none());
    }

    #[test]
    fn reads_and_writes_are_collected() {
        let g = simple_graph();
        let reads = g.reads();
        let writes = g.writes();
        assert!(reads.contains_key("A"));
        assert!(!reads.contains_key("B"));
        assert!(writes.contains_key("B"));
        assert!(!writes.contains_key("A"));
    }

    #[test]
    fn nested_map_reads_propagate() {
        let mut body = DataflowGraph::new();
        let src = body.add_access("X");
        let t = body.add_tasklet(Tasklet::new("t", "o", E::input("x")));
        let dst = body.add_access("Y");
        body.add_edge(
            src,
            None,
            t,
            Some("x"),
            Memlet::element("X", vec![SymExpr::sym("i")]),
        );
        body.add_edge(
            t,
            Some("o"),
            dst,
            None,
            Memlet::element("Y", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        g.add_map(MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
            body,
            parallel: true,
        });
        assert!(g.reads().contains_key("X"));
        assert!(g.writes().contains_key("Y"));
        assert!(g.referenced_arrays().contains("X"));
    }

    #[test]
    fn flop_estimate_scales_with_map_domain() {
        let mut body = DataflowGraph::new();
        let src = body.add_access("X");
        let t = body.add_tasklet(Tasklet::new(
            "t",
            "o",
            E::input("x").mul(E::input("x")).add(E::c(1.0)),
        ));
        let dst = body.add_access("Y");
        body.add_edge(
            src,
            None,
            t,
            Some("x"),
            Memlet::element("X", vec![SymExpr::sym("i")]),
        );
        body.add_edge(
            t,
            Some("o"),
            dst,
            None,
            Memlet::element("Y", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        g.add_map(MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::sym("N"))],
            body,
            parallel: true,
        });
        let mut bind = HashMap::new();
        bind.insert("N".to_string(), 100);
        assert_eq!(g.flop_estimate(&bind), 200.0);
    }

    #[test]
    fn library_connectors() {
        assert_eq!(LibraryOp::MatMul.input_connectors(), vec!["A", "B"]);
        assert_eq!(LibraryOp::MatMul.output_connectors(), vec!["C"]);
        assert_eq!(
            LibraryOp::SumReduce { accumulate: true }.output_connectors(),
            vec!["OUT"]
        );
    }

    #[test]
    fn access_nodes_lookup() {
        let g = simple_graph();
        assert_eq!(g.access_nodes("A"), vec![0]);
        assert_eq!(g.access_nodes("B"), vec![2]);
        assert!(g.access_nodes("C").is_empty());
    }
}
