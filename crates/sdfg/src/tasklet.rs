//! Tasklets: fine-grained scalar computations inside dataflow graphs.

use std::collections::BTreeSet;

use crate::scalar_expr::ScalarExpr;

/// A tasklet is a fine-grained computation reading scalar values from its
/// input connectors and writing scalar values to its output connectors.
///
/// Code is a sequence of assignments `output_connector = expression`, the
/// expressions may reference input connectors and previously assigned output
/// connectors are *not* visible (pure dataflow, single-assignment), which is
/// what makes symbolic per-tasklet differentiation straightforward.
#[derive(Clone, Debug, PartialEq)]
pub struct Tasklet {
    /// Human-readable label (used in debugging output).
    pub label: String,
    /// Assignments `connector = expr`, evaluated independently.
    pub code: Vec<(String, ScalarExpr)>,
}

impl Tasklet {
    /// Create a tasklet with a single assignment.
    pub fn new(label: impl Into<String>, output: impl Into<String>, expr: ScalarExpr) -> Self {
        Tasklet {
            label: label.into(),
            code: vec![(output.into(), expr)],
        }
    }

    /// Create a tasklet with multiple assignments.
    pub fn multi(label: impl Into<String>, code: Vec<(String, ScalarExpr)>) -> Self {
        Tasklet {
            label: label.into(),
            code,
        }
    }

    /// Names of all input connectors referenced by the code.
    pub fn input_connectors(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (_, expr) in &self.code {
            out.extend(expr.inputs());
        }
        out
    }

    /// Names of all output connectors assigned by the code.
    pub fn output_connectors(&self) -> BTreeSet<String> {
        self.code.iter().map(|(name, _)| name.clone()).collect()
    }

    /// Total arithmetic operation count of the tasklet (one evaluation).
    pub fn op_count(&self) -> usize {
        self.code.iter().map(|(_, e)| e.op_count()).sum()
    }

    /// The expression assigned to a given output connector, if any.
    pub fn expr_for(&self, output: &str) -> Option<&ScalarExpr> {
        self.code
            .iter()
            .find(|(name, _)| name == output)
            .map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_expr::ScalarExpr as E;

    #[test]
    fn connectors_are_derived_from_code() {
        let t = Tasklet::new("t", "out", E::input("a").mul(E::input("b")));
        assert_eq!(
            t.input_connectors().into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
        assert_eq!(
            t.output_connectors().into_iter().collect::<Vec<_>>(),
            vec!["out".to_string()]
        );
    }

    #[test]
    fn multi_assignment_tasklet() {
        let t = Tasklet::multi(
            "t",
            vec![
                ("o1".into(), E::input("x").mul(E::c(2.0))),
                ("o2".into(), E::input("x").add(E::input("y"))),
            ],
        );
        assert_eq!(t.output_connectors().len(), 2);
        assert_eq!(t.op_count(), 2);
        assert!(t.expr_for("o1").is_some());
        assert!(t.expr_for("o3").is_none());
    }
}
