//! Scalar expression language for tasklet code, with symbolic differentiation.
//!
//! DaCe AD performs *symbolic* automatic differentiation: each fine-grained
//! tasklet computation is differentiated symbolically and the results are
//! combined through the chain rule across the dataflow graph.  This module
//! provides the expression AST used inside tasklets, its evaluator, and the
//! symbolic derivative used by the AD engine in `dace-ad`.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;

/// Binary scalar operators available in tasklet code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Max,
    Min,
}

/// Unary scalar operators available in tasklet code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Sin,
    Cos,
    Exp,
    Log,
    Sqrt,
    Tanh,
    Abs,
    Relu,
    Sigmoid,
}

/// A scalar expression appearing in tasklet code.
///
/// Inputs refer to tasklet input connectors; `Iter` refers to an integer
/// iteration symbol (map parameter, loop iterator or SDFG symbol) promoted to
/// a float value.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Floating-point constant.
    Const(f64),
    /// Value read from an input connector.
    Input(String),
    /// Integer symbol (iterator / SDFG symbol) promoted to `f64`.
    Iter(String),
    /// Unary operation.
    Un(UnOp, Box<ScalarExpr>),
    /// Binary operation.
    Bin(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
}

// The DSL deliberately exposes by-value `add`/`sub`/`mul`/`div` builders
// rather than the std operator traits (tasklet code reads as a chain).
#[allow(clippy::should_implement_trait)]
impl ScalarExpr {
    /// Constant expression.
    pub fn c(v: f64) -> Self {
        ScalarExpr::Const(v)
    }

    /// Input-connector reference.
    pub fn input(name: impl Into<String>) -> Self {
        ScalarExpr::Input(name.into())
    }

    /// Iterator/symbol reference.
    pub fn iter(name: impl Into<String>) -> Self {
        ScalarExpr::Iter(name.into())
    }

    /// Helper: binary op.
    pub fn bin(op: BinOp, a: ScalarExpr, b: ScalarExpr) -> Self {
        ScalarExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Helper: unary op.
    pub fn un(op: UnOp, a: ScalarExpr) -> Self {
        ScalarExpr::Un(op, Box::new(a))
    }

    /// `self + other`
    pub fn add(self, other: ScalarExpr) -> Self {
        Self::bin(BinOp::Add, self, other)
    }

    /// `self - other`
    pub fn sub(self, other: ScalarExpr) -> Self {
        Self::bin(BinOp::Sub, self, other)
    }

    /// `self * other`
    pub fn mul(self, other: ScalarExpr) -> Self {
        Self::bin(BinOp::Mul, self, other)
    }

    /// `self / other`
    pub fn div(self, other: ScalarExpr) -> Self {
        Self::bin(BinOp::Div, self, other)
    }

    /// Evaluate the expression.
    ///
    /// `inputs` maps connector names to scalar values; `iters` maps iteration
    /// symbols to integers.
    pub fn eval(
        &self,
        inputs: &HashMap<String, f64>,
        iters: &HashMap<String, i64>,
    ) -> Result<f64, String> {
        match self {
            ScalarExpr::Const(v) => Ok(*v),
            ScalarExpr::Input(name) => inputs
                .get(name)
                .copied()
                .ok_or_else(|| format!("missing tasklet input `{name}`")),
            ScalarExpr::Iter(name) => iters
                .get(name)
                .map(|&v| v as f64)
                .ok_or_else(|| format!("missing iteration symbol `{name}`")),
            ScalarExpr::Un(op, a) => {
                let x = a.eval(inputs, iters)?;
                Ok(match op {
                    UnOp::Neg => -x,
                    UnOp::Sin => x.sin(),
                    UnOp::Cos => x.cos(),
                    UnOp::Exp => x.exp(),
                    UnOp::Log => x.ln(),
                    UnOp::Sqrt => x.sqrt(),
                    UnOp::Tanh => x.tanh(),
                    UnOp::Abs => x.abs(),
                    UnOp::Relu => x.max(0.0),
                    UnOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                })
            }
            ScalarExpr::Bin(op, a, b) => {
                let x = a.eval(inputs, iters)?;
                let y = b.eval(inputs, iters)?;
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                    BinOp::Max => x.max(y),
                    BinOp::Min => x.min(y),
                })
            }
        }
    }

    /// Collect the names of all input connectors referenced.
    pub fn inputs(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_inputs(&mut out);
        out
    }

    fn collect_inputs(&self, out: &mut BTreeSet<String>) {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Iter(_) => {}
            ScalarExpr::Input(name) => {
                out.insert(name.clone());
            }
            ScalarExpr::Un(_, a) => a.collect_inputs(out),
            ScalarExpr::Bin(_, a, b) => {
                a.collect_inputs(out);
                b.collect_inputs(out);
            }
        }
    }

    /// True when the expression is linear in `input` (its derivative does not
    /// reference the input's value).  Used by the AD engine to decide whether
    /// the forward value must be *forwarded* (stored or recomputed) to the
    /// backward pass: non-linear uses are exactly the cases of Fig. 8.
    pub fn is_linear_in(&self, input: &str) -> bool {
        !self.derivative(input).simplified().inputs().contains(input)
    }

    /// Symbolic derivative with respect to the named input connector.
    pub fn derivative(&self, wrt: &str) -> ScalarExpr {
        use ScalarExpr::*;
        match self {
            Const(_) | Iter(_) => Const(0.0),
            Input(name) => {
                if name == wrt {
                    Const(1.0)
                } else {
                    Const(0.0)
                }
            }
            Un(op, a) => {
                let da = a.derivative(wrt);
                let inner = (**a).clone();
                let local = match op {
                    UnOp::Neg => Const(-1.0),
                    UnOp::Sin => Self::un(UnOp::Cos, inner),
                    UnOp::Cos => Self::un(UnOp::Neg, Self::un(UnOp::Sin, inner)),
                    UnOp::Exp => Self::un(UnOp::Exp, inner),
                    UnOp::Log => Self::bin(BinOp::Div, Const(1.0), inner),
                    UnOp::Sqrt => Self::bin(BinOp::Div, Const(0.5), Self::un(UnOp::Sqrt, inner)),
                    UnOp::Tanh => Self::bin(
                        BinOp::Sub,
                        Const(1.0),
                        Self::bin(
                            BinOp::Mul,
                            Self::un(UnOp::Tanh, inner.clone()),
                            Self::un(UnOp::Tanh, inner),
                        ),
                    ),
                    // Sub-gradient conventions: d|x|/dx = sign(x) via x/|x|,
                    // relu' = step(x) expressed as (sign(x)+1)/2 clamped by max.
                    UnOp::Abs => Self::bin(BinOp::Div, inner.clone(), Self::un(UnOp::Abs, inner)),
                    UnOp::Relu => Self::bin(
                        BinOp::Div,
                        Self::un(UnOp::Relu, inner.clone()),
                        Self::bin(
                            BinOp::Max,
                            Self::un(UnOp::Abs, inner),
                            Const(f64::MIN_POSITIVE),
                        ),
                    ),
                    UnOp::Sigmoid => {
                        let s = Self::un(UnOp::Sigmoid, inner);
                        Self::bin(BinOp::Mul, s.clone(), Self::bin(BinOp::Sub, Const(1.0), s))
                    }
                };
                Self::bin(BinOp::Mul, local, da).simplified()
            }
            Bin(op, a, b) => {
                let da = a.derivative(wrt);
                let db = b.derivative(wrt);
                let (a, b) = ((**a).clone(), (**b).clone());
                let d = match op {
                    BinOp::Add => Self::bin(BinOp::Add, da, db),
                    BinOp::Sub => Self::bin(BinOp::Sub, da, db),
                    BinOp::Mul => Self::bin(
                        BinOp::Add,
                        Self::bin(BinOp::Mul, da, b.clone()),
                        Self::bin(BinOp::Mul, a.clone(), db),
                    ),
                    BinOp::Div => Self::bin(
                        BinOp::Div,
                        Self::bin(
                            BinOp::Sub,
                            Self::bin(BinOp::Mul, da, b.clone()),
                            Self::bin(BinOp::Mul, a.clone(), db),
                        ),
                        Self::bin(BinOp::Mul, b.clone(), b.clone()),
                    ),
                    // d(a^b) = a^b * (db*ln(a) + b*da/a); only the constant-exponent
                    // case matters for the kernels here, but the full rule is kept.
                    BinOp::Pow => Self::bin(
                        BinOp::Mul,
                        Self::bin(BinOp::Pow, a.clone(), b.clone()),
                        Self::bin(
                            BinOp::Add,
                            Self::bin(BinOp::Mul, db, Self::un(UnOp::Log, a.clone())),
                            Self::bin(BinOp::Div, Self::bin(BinOp::Mul, b.clone(), da), a.clone()),
                        ),
                    ),
                    // Sub-gradients: route the gradient to whichever operand wins.
                    BinOp::Max => Self::bin(
                        BinOp::Add,
                        Self::bin(BinOp::Mul, step_ge(&a, &b), da),
                        Self::bin(BinOp::Mul, step_ge(&b, &a), db),
                    ),
                    BinOp::Min => Self::bin(
                        BinOp::Add,
                        Self::bin(BinOp::Mul, step_ge(&b, &a), da),
                        Self::bin(BinOp::Mul, step_ge(&a, &b), db),
                    ),
                };
                d.simplified()
            }
        }
    }

    /// Constant folding plus `x*0`, `x*1`, `x+0` simplification.
    pub fn simplified(&self) -> ScalarExpr {
        use ScalarExpr::*;
        match self {
            Const(_) | Input(_) | Iter(_) => self.clone(),
            Un(op, a) => {
                let a = a.simplified();
                if let Const(v) = a {
                    let iters = HashMap::new();
                    let inputs = HashMap::new();
                    if let Ok(out) = Un(*op, Box::new(Const(v))).eval(&inputs, &iters) {
                        return Const(out);
                    }
                }
                Un(*op, Box::new(a))
            }
            Bin(op, a, b) => {
                let a = a.simplified();
                let b = b.simplified();
                match (op, &a, &b) {
                    (_, Const(x), Const(y)) => {
                        let iters = HashMap::new();
                        let inputs = HashMap::new();
                        Bin(*op, Box::new(Const(*x)), Box::new(Const(*y)))
                            .eval(&inputs, &iters)
                            .map(Const)
                            .unwrap_or_else(|_| Bin(*op, Box::new(a.clone()), Box::new(b.clone())))
                    }
                    (BinOp::Add, Const(z), _) if *z == 0.0 => b,
                    (BinOp::Add, _, Const(z)) if *z == 0.0 => a,
                    (BinOp::Sub, _, Const(z)) if *z == 0.0 => a,
                    (BinOp::Mul, Const(z), _) | (BinOp::Mul, _, Const(z)) if *z == 0.0 => {
                        Const(0.0)
                    }
                    (BinOp::Mul, Const(o), _) if *o == 1.0 => b,
                    (BinOp::Mul, _, Const(o)) if *o == 1.0 => a,
                    (BinOp::Div, _, Const(o)) if *o == 1.0 => a,
                    _ => Bin(*op, Box::new(a), Box::new(b)),
                }
            }
        }
    }

    /// Number of arithmetic operations in the expression (FLOP estimate for a
    /// single evaluation) — feeds the recomputation cost model of the ILP.
    pub fn op_count(&self) -> usize {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Input(_) | ScalarExpr::Iter(_) => 0,
            ScalarExpr::Un(_, a) => 1 + a.op_count(),
            ScalarExpr::Bin(_, a, b) => 1 + a.op_count() + b.op_count(),
        }
    }

    /// Rename every input-connector reference using the provided map.
    pub fn rename_inputs(&self, renames: &HashMap<String, String>) -> ScalarExpr {
        match self {
            ScalarExpr::Const(_) | ScalarExpr::Iter(_) => self.clone(),
            ScalarExpr::Input(name) => {
                ScalarExpr::Input(renames.get(name).cloned().unwrap_or_else(|| name.clone()))
            }
            ScalarExpr::Un(op, a) => ScalarExpr::Un(*op, Box::new(a.rename_inputs(renames))),
            ScalarExpr::Bin(op, a, b) => ScalarExpr::Bin(
                *op,
                Box::new(a.rename_inputs(renames)),
                Box::new(b.rename_inputs(renames)),
            ),
        }
    }
}

/// A leaf reference encountered while compiling a [`ScalarExpr`]: either an
/// input connector or an iteration symbol.  The resolver passed to
/// [`ScalarExpr::compile`] maps each leaf to a slot index in the flat slot
/// array the compiled expression is evaluated against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafRef<'a> {
    /// An input-connector reference (`ScalarExpr::Input`).
    Input(&'a str),
    /// An iteration-symbol reference (`ScalarExpr::Iter`), promoted to `f64`.
    Iter(&'a str),
}

/// One instruction of a compiled scalar expression.
///
/// Instructions form a flat single-assignment sequence over a dense register
/// file: every instruction writes register `dst` exactly once, and operand
/// registers are always written by earlier instructions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExprOp {
    /// `regs[dst] = value`
    Const { dst: u32, value: f64 },
    /// `regs[dst] = slots[slot]` — load an external input/iteration value.
    Slot { dst: u32, slot: u32 },
    /// `regs[dst] = op(regs[a])`
    Un { dst: u32, op: UnOp, a: u32 },
    /// `regs[dst] = op(regs[a], regs[b])`
    Bin { dst: u32, op: BinOp, a: u32, b: u32 },
}

/// A [`ScalarExpr`] lowered to a flat register-based instruction sequence.
///
/// Compilation resolves every `Input`/`Iter` leaf to a slot index once, so
/// evaluation performs no name lookups and no allocation: it walks the
/// instruction list over a caller-provided register file.  The tree-walking
/// [`ScalarExpr::eval`] and the compiled form produce bit-identical results
/// (the instruction stream applies the exact same operations in the same
/// order), which is asserted by property tests.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledExpr {
    ops: Vec<ExprOp>,
    result: u32,
    n_regs: u32,
}

impl CompiledExpr {
    /// Number of registers the register file must hold.
    pub fn n_regs(&self) -> usize {
        self.n_regs as usize
    }

    /// The compiled instruction sequence.
    pub fn ops(&self) -> &[ExprOp] {
        &self.ops
    }

    /// Evaluate over `slots` using `regs` as the register file.  `regs` is
    /// grown on demand and reused across calls; evaluation itself performs no
    /// heap allocation.
    #[inline]
    pub fn eval(&self, slots: &[f64], regs: &mut Vec<f64>) -> f64 {
        if regs.len() < self.n_regs as usize {
            regs.resize(self.n_regs as usize, 0.0);
        }
        for op in &self.ops {
            match *op {
                ExprOp::Const { dst, value } => regs[dst as usize] = value,
                ExprOp::Slot { dst, slot } => regs[dst as usize] = slots[slot as usize],
                ExprOp::Un { dst, op, a } => {
                    let x = regs[a as usize];
                    regs[dst as usize] = match op {
                        UnOp::Neg => -x,
                        UnOp::Sin => x.sin(),
                        UnOp::Cos => x.cos(),
                        UnOp::Exp => x.exp(),
                        UnOp::Log => x.ln(),
                        UnOp::Sqrt => x.sqrt(),
                        UnOp::Tanh => x.tanh(),
                        UnOp::Abs => x.abs(),
                        UnOp::Relu => x.max(0.0),
                        UnOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                    };
                }
                ExprOp::Bin { dst, op, a, b } => {
                    let x = regs[a as usize];
                    let y = regs[b as usize];
                    regs[dst as usize] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Pow => x.powf(y),
                        BinOp::Max => x.max(y),
                        BinOp::Min => x.min(y),
                    };
                }
            }
        }
        regs[self.result as usize]
    }
}

/// A micro-kernel shape recognized in a [`CompiledExpr`] instruction
/// sequence.  These cover the dominant tasklet bodies of the benchmark
/// kernels (stencil sums, scaled averages, product terms) and let the
/// runtime's specialized loops evaluate them without walking the
/// instruction list per point.  Every pattern's [`MicroPattern::eval`]
/// applies the *same* floating-point operations in the *same* order as
/// [`CompiledExpr::eval`], so results are bit-identical by construction.
#[derive(Clone, Debug, PartialEq)]
pub enum MicroPattern {
    /// `slots[src]` — a plain copy.
    Copy {
        /// Source slot.
        src: u32,
    },
    /// `slots[a] * slots[b]` — a single product (contraction bodies).
    MulPair {
        /// Left operand slot.
        a: u32,
        /// Right operand slot.
        b: u32,
    },
    /// A left-associated sum chain `((slots[t0] + slots[t1]) + ...)`,
    /// optionally scaled by one trailing constant (`* c` or `/ c`) — the
    /// shape of stencil averages like `(sum of 9 points) / 9.0`.
    SumScale {
        /// Slots summed left-to-right.
        terms: Vec<u32>,
        /// Optional trailing scale: the operator (`Mul` or `Div`) and the
        /// constant operand.
        scale: Option<(BinOp, f64)>,
    },
}

impl MicroPattern {
    /// Evaluate the pattern over the slot array, applying operations in the
    /// exact order of the compiled instruction sequence it was recognized
    /// from.
    #[inline]
    pub fn eval(&self, slots: &[f64]) -> f64 {
        match self {
            MicroPattern::Copy { src } => slots[*src as usize],
            MicroPattern::MulPair { a, b } => slots[*a as usize] * slots[*b as usize],
            MicroPattern::SumScale { terms, scale } => {
                let mut acc = slots[terms[0] as usize];
                for &t in &terms[1..] {
                    acc += slots[t as usize];
                }
                match scale {
                    Some((BinOp::Mul, c)) => acc * c,
                    Some((BinOp::Div, c)) => acc / c,
                    _ => acc,
                }
            }
        }
    }
}

impl CompiledExpr {
    /// Recognize a [`MicroPattern`] in the instruction sequence, if the
    /// expression has one of the supported shapes.  Returns `None` for
    /// anything else — callers fall back to [`CompiledExpr::eval`].
    pub fn micro_pattern(&self) -> Option<MicroPattern> {
        let ops = &self.ops;
        // Positional single-assignment: every instruction writes the register
        // equal to its index (guaranteed by `compile`, re-checked here so the
        // pattern match below can reason positionally).
        for (i, op) in ops.iter().enumerate() {
            let dst = match *op {
                ExprOp::Const { dst, .. }
                | ExprOp::Slot { dst, .. }
                | ExprOp::Un { dst, .. }
                | ExprOp::Bin { dst, .. } => dst,
            };
            if dst as usize != i {
                return None;
            }
        }
        if self.result as usize != ops.len().checked_sub(1)? {
            return None;
        }
        match *ops.as_slice() {
            [ExprOp::Slot { slot, .. }] => return Some(MicroPattern::Copy { src: slot }),
            [ExprOp::Slot { slot: sa, .. }, ExprOp::Slot { slot: sb, .. }, ExprOp::Bin {
                op: BinOp::Mul,
                a: 0,
                b: 1,
                ..
            }] => return Some(MicroPattern::MulPair { a: sa, b: sb }),
            _ => {}
        }
        // Left-associated sum chain with an optional trailing constant scale.
        let ExprOp::Slot { slot, .. } = ops[0] else {
            return None;
        };
        let mut terms = vec![slot];
        let mut scale = None;
        let mut acc = 0u32;
        let mut idx = 1usize;
        while idx < ops.len() {
            match (ops[idx], ops.get(idx + 1)) {
                (
                    ExprOp::Slot { slot, .. },
                    Some(&ExprOp::Bin {
                        op: BinOp::Add,
                        a,
                        b,
                        ..
                    }),
                ) if a == acc && b as usize == idx => {
                    terms.push(slot);
                    acc = (idx + 1) as u32;
                    idx += 2;
                }
                (ExprOp::Const { value, .. }, Some(&ExprOp::Bin { op, a, b, .. }))
                    if matches!(op, BinOp::Mul | BinOp::Div)
                        && a == acc
                        && b as usize == idx
                        && idx + 2 == ops.len() =>
                {
                    scale = Some((op, value));
                    idx += 2;
                }
                _ => return None,
            }
        }
        // A bare single slot is `Copy` (matched above); a chain needs either
        // a second term or a scale to be worth naming.
        if terms.len() < 2 && scale.is_none() {
            return None;
        }
        Some(MicroPattern::SumScale { terms, scale })
    }
}

impl ScalarExpr {
    /// Compile the expression into a [`CompiledExpr`].
    ///
    /// `resolve` maps each `Input`/`Iter` leaf to a slot index; returning
    /// `None` aborts compilation with the same message the tree-walking
    /// evaluator would produce at run time for the missing name.
    pub fn compile<F>(&self, resolve: &mut F) -> Result<CompiledExpr, String>
    where
        F: FnMut(LeafRef<'_>) -> Option<u32>,
    {
        let mut ops = Vec::new();
        let result = self.compile_into(&mut ops, resolve)?;
        Ok(CompiledExpr {
            result,
            n_regs: result + 1,
            ops,
        })
    }

    fn compile_into<F>(&self, ops: &mut Vec<ExprOp>, resolve: &mut F) -> Result<u32, String>
    where
        F: FnMut(LeafRef<'_>) -> Option<u32>,
    {
        let dst = match self {
            ScalarExpr::Const(v) => {
                let dst = ops.len() as u32;
                ops.push(ExprOp::Const { dst, value: *v });
                dst
            }
            ScalarExpr::Input(name) => {
                let slot = resolve(LeafRef::Input(name))
                    .ok_or_else(|| format!("missing tasklet input `{name}`"))?;
                let dst = ops.len() as u32;
                ops.push(ExprOp::Slot { dst, slot });
                dst
            }
            ScalarExpr::Iter(name) => {
                let slot = resolve(LeafRef::Iter(name))
                    .ok_or_else(|| format!("missing iteration symbol `{name}`"))?;
                let dst = ops.len() as u32;
                ops.push(ExprOp::Slot { dst, slot });
                dst
            }
            ScalarExpr::Un(op, a) => {
                let a = a.compile_into(ops, resolve)?;
                let dst = ops.len() as u32;
                ops.push(ExprOp::Un { dst, op: *op, a });
                dst
            }
            ScalarExpr::Bin(op, a, b) => {
                let a = a.compile_into(ops, resolve)?;
                let b = b.compile_into(ops, resolve)?;
                let dst = ops.len() as u32;
                ops.push(ExprOp::Bin { dst, op: *op, a, b });
                dst
            }
        };
        Ok(dst)
    }
}

/// Expression evaluating to 1.0 when `a > b`, 0.0 when `a < b` and 0.5 at a
/// tie, built from the available primitives (used for max/min sub-gradients —
/// the 0.5 tie split matches `jnp.maximum`'s convention).
fn step_ge(a: &ScalarExpr, b: &ScalarExpr) -> ScalarExpr {
    use ScalarExpr::*;
    // (sign(a-b) + 1) / 2 with sign(x) = x / max(|x|, tiny)
    let diff = ScalarExpr::bin(BinOp::Sub, a.clone(), b.clone());
    let sign = ScalarExpr::bin(
        BinOp::Div,
        diff.clone(),
        ScalarExpr::bin(
            BinOp::Max,
            ScalarExpr::un(UnOp::Abs, diff),
            Const(f64::MIN_POSITIVE),
        ),
    );
    ScalarExpr::bin(
        BinOp::Mul,
        ScalarExpr::bin(BinOp::Add, sign, Const(1.0)),
        Const(0.5),
    )
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Input(s) => write!(f, "{s}"),
            ScalarExpr::Iter(s) => write!(f, "${s}"),
            ScalarExpr::Un(op, a) => write!(f, "{op:?}({a})"),
            ScalarExpr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Pow => "**",
                    BinOp::Max => "max",
                    BinOp::Min => "min",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn fd(expr: &ScalarExpr, wrt: &str, at: &HashMap<String, f64>) -> f64 {
        let h = 1e-6;
        let mut plus = at.clone();
        let mut minus = at.clone();
        *plus.get_mut(wrt).unwrap() += h;
        *minus.get_mut(wrt).unwrap() -= h;
        let iters = HashMap::new();
        (expr.eval(&plus, &iters).unwrap() - expr.eval(&minus, &iters).unwrap()) / (2.0 * h)
    }

    #[test]
    fn eval_basic() {
        let e = ScalarExpr::input("x")
            .mul(ScalarExpr::c(2.0))
            .add(ScalarExpr::c(1.0));
        let v = e.eval(&inputs(&[("x", 3.0)]), &HashMap::new()).unwrap();
        assert_eq!(v, 7.0);
    }

    #[test]
    fn eval_missing_input_errors() {
        let e = ScalarExpr::input("x");
        assert!(e.eval(&HashMap::new(), &HashMap::new()).is_err());
    }

    #[test]
    fn eval_iteration_symbol() {
        let e = ScalarExpr::iter("i").mul(ScalarExpr::input("x"));
        let mut iters = HashMap::new();
        iters.insert("i".to_string(), 4);
        assert_eq!(e.eval(&inputs(&[("x", 2.5)]), &iters).unwrap(), 10.0);
    }

    #[test]
    fn derivative_of_linear_expr() {
        let e = ScalarExpr::input("x").mul(ScalarExpr::c(3.0));
        let d = e.derivative("x").simplified();
        assert_eq!(
            d.eval(&inputs(&[("x", 100.0)]), &HashMap::new()).unwrap(),
            3.0
        );
        assert!(e.is_linear_in("x"));
    }

    #[test]
    fn derivative_of_nonlinear_exprs_matches_fd() {
        let cases = vec![
            ScalarExpr::un(UnOp::Sin, ScalarExpr::input("x")),
            ScalarExpr::un(UnOp::Exp, ScalarExpr::input("x").mul(ScalarExpr::c(0.5))),
            ScalarExpr::un(UnOp::Tanh, ScalarExpr::input("x")),
            ScalarExpr::un(UnOp::Sigmoid, ScalarExpr::input("x")),
            ScalarExpr::bin(BinOp::Pow, ScalarExpr::input("x"), ScalarExpr::c(3.0)),
            ScalarExpr::input("x")
                .mul(ScalarExpr::input("y"))
                .add(ScalarExpr::un(UnOp::Log, ScalarExpr::input("x"))),
            ScalarExpr::input("x").div(ScalarExpr::input("y")),
        ];
        let at = inputs(&[("x", 0.8), ("y", 1.7)]);
        for e in cases {
            for wrt in ["x", "y"] {
                if !e.inputs().contains(wrt) {
                    continue;
                }
                let sym = e.derivative(wrt).eval(&at, &HashMap::new()).unwrap();
                let num = fd(&e, wrt, &at);
                assert!(
                    (sym - num).abs() < 1e-5,
                    "derivative mismatch for {e} wrt {wrt}: sym={sym} fd={num}"
                );
            }
        }
    }

    #[test]
    fn nonlinearity_detection() {
        let sq = ScalarExpr::bin(BinOp::Mul, ScalarExpr::input("y"), ScalarExpr::input("y"));
        assert!(!sq.is_linear_in("y"));
        let lin = ScalarExpr::input("y").mul(ScalarExpr::c(2.0));
        assert!(lin.is_linear_in("y"));
        let sin = ScalarExpr::un(UnOp::Sin, ScalarExpr::input("a"));
        assert!(!sin.is_linear_in("a"));
    }

    #[test]
    fn max_subgradient_routes_to_winner() {
        let e = ScalarExpr::bin(BinOp::Max, ScalarExpr::input("x"), ScalarExpr::input("y"));
        let at = inputs(&[("x", 2.0), ("y", 1.0)]);
        let dx = e.derivative("x").eval(&at, &HashMap::new()).unwrap();
        let dy = e.derivative("y").eval(&at, &HashMap::new()).unwrap();
        assert!((dx - 1.0).abs() < 1e-9);
        assert!(dy.abs() < 1e-9);
    }

    #[test]
    fn simplification_drops_zero_terms() {
        let e = ScalarExpr::input("x")
            .mul(ScalarExpr::c(0.0))
            .add(ScalarExpr::input("y"));
        assert_eq!(e.simplified(), ScalarExpr::input("y"));
    }

    #[test]
    fn op_count_counts_arithmetic() {
        let e = ScalarExpr::input("x")
            .mul(ScalarExpr::input("y"))
            .add(ScalarExpr::c(1.0));
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn rename_inputs_applies_map() {
        let e = ScalarExpr::input("a").mul(ScalarExpr::input("b"));
        let mut m = HashMap::new();
        m.insert("a".to_string(), "stored_a".to_string());
        let r = e.rename_inputs(&m);
        let ins = r.inputs();
        assert!(ins.contains("stored_a") && ins.contains("b"));
    }

    #[test]
    fn inputs_collects_unique_names() {
        let e = ScalarExpr::input("x").mul(ScalarExpr::input("x"));
        assert_eq!(e.inputs().len(), 1);
    }

    /// Resolver for the compile tests: x -> slot 0, y -> slot 1, i -> slot 2.
    fn test_resolver(leaf: LeafRef<'_>) -> Option<u32> {
        match leaf {
            LeafRef::Input("x") => Some(0),
            LeafRef::Input("y") => Some(1),
            LeafRef::Iter("i") => Some(2),
            _ => None,
        }
    }

    #[test]
    fn compiled_expr_matches_tree_eval() {
        let e = ScalarExpr::input("x")
            .mul(ScalarExpr::input("y"))
            .add(ScalarExpr::iter("i"))
            .div(ScalarExpr::c(3.0));
        let compiled = e.compile(&mut test_resolver).unwrap();
        let slots = [2.5, -1.5, 4.0];
        let mut regs = Vec::new();
        let got = compiled.eval(&slots, &mut regs);
        let tree = e
            .eval(&inputs(&[("x", 2.5), ("y", -1.5)]), &{
                let mut m = HashMap::new();
                m.insert("i".to_string(), 4);
                m
            })
            .unwrap();
        assert_eq!(got.to_bits(), tree.to_bits());
    }

    #[test]
    fn compile_reports_unresolved_leaves() {
        let e = ScalarExpr::input("z");
        let err = e.compile(&mut test_resolver).unwrap_err();
        assert!(err.contains("missing tasklet input `z`"), "{err}");
        let e = ScalarExpr::iter("k");
        let err = e.compile(&mut test_resolver).unwrap_err();
        assert!(err.contains("missing iteration symbol `k`"), "{err}");
    }

    #[test]
    fn compiled_register_file_is_reused() {
        let e = ScalarExpr::input("x").add(ScalarExpr::c(1.0));
        let compiled = e.compile(&mut test_resolver).unwrap();
        let mut regs = Vec::new();
        assert_eq!(compiled.eval(&[1.0], &mut regs), 2.0);
        let cap = regs.capacity();
        assert_eq!(compiled.eval(&[5.0], &mut regs), 6.0);
        assert_eq!(regs.capacity(), cap);
        assert!(compiled.n_regs() >= compiled.ops().len());
    }

    /// Resolver mapping inputs `s0`, `s1`, ... to their numeric slot.
    fn numbered_resolver(leaf: LeafRef<'_>) -> Option<u32> {
        match leaf {
            LeafRef::Input(name) => name.strip_prefix('s')?.parse().ok(),
            _ => None,
        }
    }

    fn left_sum(n: u32) -> ScalarExpr {
        let mut sum = ScalarExpr::input("s0");
        for k in 1..n {
            sum = sum.add(ScalarExpr::input(format!("s{k}")));
        }
        sum
    }

    #[test]
    fn micro_pattern_recognizes_kernel_shapes() {
        // Plain copy.
        let c = ScalarExpr::input("x").compile(&mut test_resolver).unwrap();
        assert_eq!(c.micro_pattern(), Some(MicroPattern::Copy { src: 0 }));

        // Contraction body: a single product.
        let c = ScalarExpr::input("x")
            .mul(ScalarExpr::input("y"))
            .compile(&mut test_resolver)
            .unwrap();
        assert_eq!(
            c.micro_pattern(),
            Some(MicroPattern::MulPair { a: 0, b: 1 })
        );

        // seidel2d-shaped: nine-point sum divided by 9.0.
        let c = left_sum(9)
            .div(ScalarExpr::c(9.0))
            .compile(&mut numbered_resolver)
            .unwrap();
        assert_eq!(
            c.micro_pattern(),
            Some(MicroPattern::SumScale {
                terms: (0..9).collect(),
                scale: Some((BinOp::Div, 9.0)),
            })
        );

        // jacobi2d-shaped: five-point sum times 0.2.
        let c = left_sum(5)
            .mul(ScalarExpr::c(0.2))
            .compile(&mut numbered_resolver)
            .unwrap();
        assert_eq!(
            c.micro_pattern(),
            Some(MicroPattern::SumScale {
                terms: (0..5).collect(),
                scale: Some((BinOp::Mul, 0.2)),
            })
        );

        // Unscaled sum and single-term scale are also chains.
        let c = left_sum(3).compile(&mut numbered_resolver).unwrap();
        assert_eq!(
            c.micro_pattern(),
            Some(MicroPattern::SumScale {
                terms: vec![0, 1, 2],
                scale: None
            })
        );
        let c = ScalarExpr::input("s0")
            .mul(ScalarExpr::c(2.0))
            .compile(&mut numbered_resolver)
            .unwrap();
        assert_eq!(
            c.micro_pattern(),
            Some(MicroPattern::SumScale {
                terms: vec![0],
                scale: Some((BinOp::Mul, 2.0))
            })
        );
    }

    #[test]
    fn micro_pattern_rejects_other_shapes() {
        let cases = [
            ScalarExpr::bin(BinOp::Sub, ScalarExpr::input("x"), ScalarExpr::input("y")),
            ScalarExpr::un(UnOp::Sin, ScalarExpr::input("x")),
            // Right-associated sums are not the chain the builder emits.
            ScalarExpr::input("x").add(ScalarExpr::input("y").add(ScalarExpr::iter("i"))),
            // Scale in the middle of a chain, not trailing.
            ScalarExpr::input("x")
                .mul(ScalarExpr::c(2.0))
                .add(ScalarExpr::input("y")),
            ScalarExpr::c(1.5),
        ];
        for e in cases {
            let c = e.compile(&mut test_resolver).unwrap();
            assert_eq!(c.micro_pattern(), None, "unexpected pattern for {e}");
        }
    }

    #[test]
    fn micro_pattern_eval_is_bit_identical_to_vm() {
        let exprs = [
            ScalarExpr::input("s0"),
            ScalarExpr::input("s0").mul(ScalarExpr::input("s1")),
            left_sum(9).div(ScalarExpr::c(9.0)),
            left_sum(5).mul(ScalarExpr::c(0.2)),
            left_sum(4),
        ];
        let slots: Vec<f64> = (0..9).map(|k| 0.1 + 0.7 * k as f64).collect();
        for e in exprs {
            let c = e.compile(&mut numbered_resolver).unwrap();
            let pat = c.micro_pattern().expect("pattern expected");
            let mut regs = Vec::new();
            let vm = c.eval(&slots, &mut regs);
            assert_eq!(pat.eval(&slots).to_bits(), vm.to_bits(), "{e}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_expr() -> impl Strategy<Value = ScalarExpr> {
        let leaf = prop_oneof![
            (0.1f64..3.0).prop_map(ScalarExpr::Const),
            Just(ScalarExpr::input("x")),
            Just(ScalarExpr::input("y")),
        ];
        leaf.prop_recursive(3, 32, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Add, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Sub, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Mul, a, b)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Sin, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Exp, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Tanh, a)),
            ]
        })
    }

    /// Like `arb_expr` but with iteration-symbol leaves and the full unary /
    /// binary operator set, for the compiled-evaluation equivalence test.
    fn arb_compiled_expr() -> impl Strategy<Value = ScalarExpr> {
        let leaf = prop_oneof![
            (-3.0f64..3.0).prop_map(ScalarExpr::Const),
            Just(ScalarExpr::input("x")),
            Just(ScalarExpr::input("y")),
            Just(ScalarExpr::iter("i")),
        ];
        leaf.prop_recursive(4, 48, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Add, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Sub, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Mul, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Div, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Pow, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Max, a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::bin(BinOp::Min, a, b)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Neg, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Sin, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Exp, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Sqrt, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Tanh, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Abs, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Relu, a)),
                inner.clone().prop_map(|a| ScalarExpr::un(UnOp::Sigmoid, a)),
            ]
        })
    }

    proptest! {
        /// The symbolic derivative of any composed expression matches central
        /// finite differences at a benign evaluation point.
        #[test]
        fn symbolic_derivative_matches_fd(e in arb_expr(), x in 0.2f64..1.5, y in 0.2f64..1.5) {
            let mut at = HashMap::new();
            at.insert("x".to_string(), x);
            at.insert("y".to_string(), y);
            let iters = HashMap::new();
            let value = e.eval(&at, &iters).unwrap();
            prop_assume!(value.is_finite() && value.abs() < 1e6);
            for wrt in ["x", "y"] {
                if !e.inputs().contains(wrt) { continue; }
                let sym = e.derivative(wrt).eval(&at, &iters).unwrap();
                let h = 1e-5;
                let mut p = at.clone();
                let mut m = at.clone();
                *p.get_mut(wrt).unwrap() += h;
                *m.get_mut(wrt).unwrap() -= h;
                let fd = (e.eval(&p, &iters).unwrap() - e.eval(&m, &iters).unwrap()) / (2.0 * h);
                prop_assume!(fd.is_finite() && fd.abs() < 1e6);
                prop_assert!((sym - fd).abs() <= 1e-3 * (1.0 + fd.abs()),
                    "expr {} wrt {}: sym {} vs fd {}", e, wrt, sym, fd);
            }
        }

        /// Compiled (register-based) evaluation is bit-identical to the
        /// tree-walking evaluator on random expressions: both apply the same
        /// operations in the same order, so even rounding must agree.
        #[test]
        fn compiled_matches_tree_eval(e in arb_compiled_expr(), x in -2.0f64..2.0, y in -2.0f64..2.0, i in -5i64..5) {
            let mut at = HashMap::new();
            at.insert("x".to_string(), x);
            at.insert("y".to_string(), y);
            let mut iters = HashMap::new();
            iters.insert("i".to_string(), i);
            let tree = e.eval(&at, &iters).unwrap();
            let compiled = e.compile(&mut |leaf| match leaf {
                LeafRef::Input("x") => Some(0),
                LeafRef::Input("y") => Some(1),
                LeafRef::Iter("i") => Some(2),
                _ => None,
            }).unwrap();
            let mut regs = Vec::new();
            let got = compiled.eval(&[x, y, i as f64], &mut regs);
            prop_assert!(
                got.to_bits() == tree.to_bits() || (got.is_nan() && tree.is_nan()),
                "compiled {} vs tree {} for {}", got, tree, e
            );
        }

        /// Simplification never changes the value.
        #[test]
        fn simplify_preserves_value(e in arb_expr(), x in 0.2f64..1.5, y in 0.2f64..1.5) {
            let mut at = HashMap::new();
            at.insert("x".to_string(), x);
            at.insert("y".to_string(), y);
            let iters = HashMap::new();
            let a = e.eval(&at, &iters).unwrap();
            let b = e.simplified().eval(&at, &iters).unwrap();
            prop_assume!(a.is_finite());
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
        }
    }
}
