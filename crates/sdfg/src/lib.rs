//! # dace-sdfg
//!
//! The Stateful DataFlow multiGraph (SDFG) intermediate representation, the
//! symbolic expression machinery, and the dataflow analyses used by the
//! DaCe AD reproduction.
//!
//! The IR mirrors the components described in Section I of the paper:
//!
//! * **Access nodes** ([`graph::DfNode::Access`]) expose data containers;
//!   incoming edges are writes, outgoing edges are reads.
//! * **Memlets** ([`memlet::Memlet`]) describe the moved data subset and the
//!   write-conflict resolution.
//! * **Tasklets** ([`tasklet::Tasklet`]) are fine-grained scalar computations
//!   written in the [`scalar_expr::ScalarExpr`] language, which supports the
//!   symbolic differentiation DaCe AD relies on.
//! * **Maps** ([`graph::MapScope`]) are parallel regions over an index set.
//! * **Library nodes** ([`graph::LibraryOp`]) expand to optimized kernels.
//! * **States** ([`sdfg::State`]) group dataflow, and the structured
//!   [`sdfg::ControlFlow`] tree provides sequences, sequential loop regions
//!   and branches.
//!
//! The [`analysis`] module implements the critical computation subgraph
//! (CCS) extraction of Section II plus the access summaries and cost
//! estimates used by the AD engine and the ILP checkpointing model.
//! The [`verify`] module is the structural verifier ([`sdfg::Sdfg::validate`]
//! returns located [`verify::Diagnostic`]s) and [`deps`] is the affine
//! dependence/race analyzer whose [`deps::ParVerdict`] the runtime uses as
//! its parallel-safety oracle.
//!
//! # Invariants
//!
//! * An [`sdfg::Sdfg`] is **pure structure**: it owns no tensors and no
//!   runtime state, so it can be cloned, transformed (the reverse pass
//!   rewrites it freely) and hashed.  `dace-runtime` fingerprints the
//!   structure — names, shapes, tasklet code, memlets, control flow — as
//!   one half of its plan-cache key, so any structural change produces a
//!   different compiled plan.
//! * Array shapes and loop bounds are *symbolic* ([`symexpr::SymExpr`])
//!   until execution: concrete symbol values are supplied at plan
//!   compilation, which is why a plan is specialised per (SDFG, symbol
//!   values) pair rather than per SDFG.
//! * [`scalar_expr::ScalarExpr`] is closed under differentiation
//!   ([`scalar_expr::ScalarExpr::derivative`]): the reverse pass emits
//!   adjoint tasklets in the same language it reads, so differentiated
//!   programs lower and execute exactly like hand-written ones.
//!
//! ```
//! use dace_sdfg::SymExpr;
//!
//! // Symbolic sizes evaluate once concrete values are known.
//! let n = SymExpr::sym("N");
//! let bound = n.mul(&n).add_int(1); // N*N + 1
//! let vals = std::collections::HashMap::from([("N".to_string(), 4i64)]);
//! assert_eq!(bound.eval(&vals).unwrap(), 17);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod deps;
pub mod graph;
pub mod memlet;
pub mod scalar_expr;
pub mod sdfg;
pub mod symexpr;
pub mod tasklet;
pub mod verify;

pub use analysis::{compute_ccs, is_full_overwrite, summarize_accesses, AccessSummary, CcsInfo};
pub use deps::{analyze_map, AffineAccess, Conflict, ParVerdict};
pub use graph::{DataflowGraph, DfNode, Edge, LibraryOp, MapScope, NodeId};
pub use memlet::{IndexRange, Memlet, Subset, SubsetClass, Wcr};
pub use scalar_expr::{BinOp, CompiledExpr, ExprOp, LeafRef, MicroPattern, ScalarExpr, UnOp};
pub use sdfg::{
    ArrayDesc, BranchRegion, CmpOp, CondExpr, CondOperand, ControlFlow, DType, LoopRegion, Sdfg,
    SdfgError, State,
};
pub use symexpr::{SymError, SymExpr};
pub use tasklet::Tasklet;
pub use verify::{DiagCode, Diagnostic, Severity};
