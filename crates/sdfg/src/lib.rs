//! # dace-sdfg
//!
//! The Stateful DataFlow multiGraph (SDFG) intermediate representation, the
//! symbolic expression machinery, and the dataflow analyses used by the
//! DaCe AD reproduction.
//!
//! The IR mirrors the components described in Section I of the paper:
//!
//! * **Access nodes** ([`graph::DfNode::Access`]) expose data containers;
//!   incoming edges are writes, outgoing edges are reads.
//! * **Memlets** ([`memlet::Memlet`]) describe the moved data subset and the
//!   write-conflict resolution.
//! * **Tasklets** ([`tasklet::Tasklet`]) are fine-grained scalar computations
//!   written in the [`scalar_expr::ScalarExpr`] language, which supports the
//!   symbolic differentiation DaCe AD relies on.
//! * **Maps** ([`graph::MapScope`]) are parallel regions over an index set.
//! * **Library nodes** ([`graph::LibraryOp`]) expand to optimized kernels.
//! * **States** ([`sdfg::State`]) group dataflow, and the structured
//!   [`sdfg::ControlFlow`] tree provides sequences, sequential loop regions
//!   and branches.
//!
//! The [`analysis`] module implements the critical computation subgraph
//! (CCS) extraction of Section II plus the access summaries and cost
//! estimates used by the AD engine and the ILP checkpointing model.

pub mod analysis;
pub mod graph;
pub mod memlet;
pub mod scalar_expr;
pub mod sdfg;
pub mod symexpr;
pub mod tasklet;

pub use analysis::{compute_ccs, is_full_overwrite, summarize_accesses, AccessSummary, CcsInfo};
pub use graph::{DataflowGraph, DfNode, Edge, LibraryOp, MapScope, NodeId};
pub use memlet::{IndexRange, Memlet, Subset, SubsetClass, Wcr};
pub use scalar_expr::{BinOp, CompiledExpr, ExprOp, LeafRef, ScalarExpr, UnOp};
pub use sdfg::{
    ArrayDesc, BranchRegion, CmpOp, CondExpr, CondOperand, ControlFlow, DType, LoopRegion, Sdfg,
    SdfgError, State,
};
pub use symexpr::{SymError, SymExpr};
pub use tasklet::Tasklet;
