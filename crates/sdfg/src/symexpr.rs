//! Integer symbolic expressions.
//!
//! `SymExpr` is used wherever DaCe uses sympy expressions: array shapes,
//! loop bounds, memlet subscripts and data-movement volumes.  Expressions are
//! built from integer literals, named symbols (SDFG symbols, loop iterators,
//! map parameters) and arithmetic, and can be evaluated against a symbol
//! binding or partially simplified.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An integer symbolic expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SymExpr {
    /// Integer constant.
    Int(i64),
    /// Named symbol (SDFG symbol, loop iterator or map parameter).
    Sym(String),
    /// Sum.
    Add(Box<SymExpr>, Box<SymExpr>),
    /// Difference.
    Sub(Box<SymExpr>, Box<SymExpr>),
    /// Product.
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Floor division (division by zero evaluates to an error).
    Div(Box<SymExpr>, Box<SymExpr>),
    /// Remainder.
    Rem(Box<SymExpr>, Box<SymExpr>),
    /// Minimum.
    Min(Box<SymExpr>, Box<SymExpr>),
    /// Maximum.
    Max(Box<SymExpr>, Box<SymExpr>),
    /// Negation.
    Neg(Box<SymExpr>),
}

/// Error produced when evaluating a symbolic expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymError {
    /// A symbol had no binding.
    UnboundSymbol(String),
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for SymError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymError::UnboundSymbol(s) => write!(f, "unbound symbol `{s}`"),
            SymError::DivisionByZero => write!(f, "division by zero in symbolic expression"),
        }
    }
}

impl std::error::Error for SymError {}

impl SymExpr {
    /// Shorthand constructor for a symbol.
    pub fn sym(name: impl Into<String>) -> Self {
        SymExpr::Sym(name.into())
    }

    /// Shorthand constructor for an integer.
    pub fn int(v: i64) -> Self {
        SymExpr::Int(v)
    }

    /// `self + other`
    pub fn add(&self, other: &SymExpr) -> SymExpr {
        SymExpr::Add(Box::new(self.clone()), Box::new(other.clone())).simplified()
    }

    /// `self - other`
    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        SymExpr::Sub(Box::new(self.clone()), Box::new(other.clone())).simplified()
    }

    /// `self * other`
    pub fn mul(&self, other: &SymExpr) -> SymExpr {
        SymExpr::Mul(Box::new(self.clone()), Box::new(other.clone())).simplified()
    }

    /// `self + constant`
    pub fn add_int(&self, v: i64) -> SymExpr {
        self.add(&SymExpr::Int(v))
    }

    /// `self * constant`
    pub fn mul_int(&self, v: i64) -> SymExpr {
        self.mul(&SymExpr::Int(v))
    }

    /// Evaluate against a symbol binding.
    pub fn eval(&self, bindings: &HashMap<String, i64>) -> Result<i64, SymError> {
        match self {
            SymExpr::Int(v) => Ok(*v),
            SymExpr::Sym(s) => bindings
                .get(s)
                .copied()
                .ok_or_else(|| SymError::UnboundSymbol(s.clone())),
            SymExpr::Add(a, b) => Ok(a.eval(bindings)? + b.eval(bindings)?),
            SymExpr::Sub(a, b) => Ok(a.eval(bindings)? - b.eval(bindings)?),
            SymExpr::Mul(a, b) => Ok(a.eval(bindings)? * b.eval(bindings)?),
            SymExpr::Div(a, b) => {
                let d = b.eval(bindings)?;
                if d == 0 {
                    Err(SymError::DivisionByZero)
                } else {
                    Ok(a.eval(bindings)?.div_euclid(d))
                }
            }
            SymExpr::Rem(a, b) => {
                let d = b.eval(bindings)?;
                if d == 0 {
                    Err(SymError::DivisionByZero)
                } else {
                    Ok(a.eval(bindings)?.rem_euclid(d))
                }
            }
            SymExpr::Min(a, b) => Ok(a.eval(bindings)?.min(b.eval(bindings)?)),
            SymExpr::Max(a, b) => Ok(a.eval(bindings)?.max(b.eval(bindings)?)),
            SymExpr::Neg(a) => Ok(-a.eval(bindings)?),
        }
    }

    /// Evaluate an expression with no free symbols.
    pub fn eval_const(&self) -> Result<i64, SymError> {
        self.eval(&HashMap::new())
    }

    /// The set of free symbols appearing in the expression.
    pub fn free_symbols(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<String>) {
        match self {
            SymExpr::Int(_) => {}
            SymExpr::Sym(s) => {
                out.insert(s.clone());
            }
            SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b)
            | SymExpr::Div(a, b)
            | SymExpr::Rem(a, b)
            | SymExpr::Min(a, b)
            | SymExpr::Max(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            SymExpr::Neg(a) => a.collect_symbols(out),
        }
    }

    /// True if the expression references the given symbol.
    pub fn references(&self, name: &str) -> bool {
        self.free_symbols().contains(name)
    }

    /// Substitute a symbol by another expression.
    pub fn substitute(&self, name: &str, with: &SymExpr) -> SymExpr {
        match self {
            SymExpr::Int(v) => SymExpr::Int(*v),
            SymExpr::Sym(s) => {
                if s == name {
                    with.clone()
                } else {
                    SymExpr::Sym(s.clone())
                }
            }
            SymExpr::Add(a, b) => SymExpr::Add(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Sub(a, b) => SymExpr::Sub(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Mul(a, b) => SymExpr::Mul(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Div(a, b) => SymExpr::Div(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Rem(a, b) => SymExpr::Rem(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Min(a, b) => SymExpr::Min(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Max(a, b) => SymExpr::Max(
                Box::new(a.substitute(name, with)),
                Box::new(b.substitute(name, with)),
            ),
            SymExpr::Neg(a) => SymExpr::Neg(Box::new(a.substitute(name, with))),
        }
        .simplified()
    }

    /// Constant-fold and apply simple algebraic identities
    /// (`x+0`, `x*1`, `x*0`, `x-0`, double negation, constant folding).
    pub fn simplified(&self) -> SymExpr {
        use SymExpr::*;
        match self {
            Int(_) | Sym(_) => self.clone(),
            Add(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) => Int(x + y),
                    (Int(0), _) => b,
                    (_, Int(0)) => a,
                    _ => Add(Box::new(a), Box::new(b)),
                }
            }
            Sub(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) => Int(x - y),
                    (_, Int(0)) => a,
                    _ if a == b => Int(0),
                    _ => Sub(Box::new(a), Box::new(b)),
                }
            }
            Mul(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) => Int(x * y),
                    (Int(0), _) | (_, Int(0)) => Int(0),
                    (Int(1), _) => b,
                    (_, Int(1)) => a,
                    _ => Mul(Box::new(a), Box::new(b)),
                }
            }
            Div(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) if *y != 0 => Int(x.div_euclid(*y)),
                    (_, Int(1)) => a,
                    _ => Div(Box::new(a), Box::new(b)),
                }
            }
            Rem(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) if *y != 0 => Int(x.rem_euclid(*y)),
                    _ => Rem(Box::new(a), Box::new(b)),
                }
            }
            Min(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) => Int(*x.min(y)),
                    _ if a == b => a,
                    _ => Min(Box::new(a), Box::new(b)),
                }
            }
            Max(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Int(x), Int(y)) => Int(*x.max(y)),
                    _ if a == b => a,
                    _ => Max(Box::new(a), Box::new(b)),
                }
            }
            Neg(a) => {
                let a = a.simplified();
                match &a {
                    Int(x) => Int(-x),
                    Neg(inner) => (**inner).clone(),
                    _ => Neg(Box::new(a)),
                }
            }
        }
    }

    /// True if the expression is the integer constant `v`.
    pub fn is_const(&self, v: i64) -> bool {
        matches!(self, SymExpr::Int(x) if *x == v)
    }

    /// Decompose the expression as an affine function of one symbol:
    /// `self == coeff * var + rest`, where `rest` does not reference `var`.
    ///
    /// Returns `None` when the expression is not affine in `var` (e.g. `var`
    /// under `Div`/`Rem`/`Min`/`Max`, or `var * var`).  Expressions that do
    /// not reference `var` at all decompose as `(0, self)`.  This is the
    /// memlet-shape analysis behind the runtime's specialized kernel tier:
    /// an element subset whose every dimension is affine in the innermost
    /// iteration variable can be walked with a precomputed flat stride.
    pub fn affine_in(&self, var: &str) -> Option<(i64, SymExpr)> {
        use SymExpr::*;
        match self {
            Int(v) => Some((0, Int(*v))),
            Sym(s) => {
                if s == var {
                    Some((1, Int(0)))
                } else {
                    Some((0, Sym(s.clone())))
                }
            }
            Add(a, b) => {
                let (ka, ra) = a.affine_in(var)?;
                let (kb, rb) = b.affine_in(var)?;
                Some((ka.checked_add(kb)?, ra.add(&rb)))
            }
            Sub(a, b) => {
                let (ka, ra) = a.affine_in(var)?;
                let (kb, rb) = b.affine_in(var)?;
                Some((ka.checked_sub(kb)?, ra.sub(&rb)))
            }
            Mul(a, b) => {
                let (ka, ra) = a.affine_in(var)?;
                let (kb, rb) = b.affine_in(var)?;
                // Affine only when at least one factor is a constant
                // (otherwise the product is quadratic in `var`).
                match (&ra, &rb) {
                    _ if ka == 0 && kb == 0 => Some((0, ra.mul(&rb))),
                    (Int(c), _) if ka == 0 => Some((c.checked_mul(kb)?, ra.mul(&rb))),
                    (_, Int(c)) if kb == 0 => Some((c.checked_mul(ka)?, ra.mul(&rb))),
                    _ => None,
                }
            }
            Neg(a) => {
                let (ka, ra) = a.affine_in(var)?;
                Some((ka.checked_neg()?, SymExpr::Neg(Box::new(ra)).simplified()))
            }
            Div(..) | Rem(..) | Min(..) | Max(..) => {
                if self.references(var) {
                    None
                } else {
                    Some((0, self.clone()))
                }
            }
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Int(v) => write!(f, "{v}"),
            SymExpr::Sym(s) => write!(f, "{s}"),
            SymExpr::Add(a, b) => write!(f, "({a} + {b})"),
            SymExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            SymExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            SymExpr::Div(a, b) => write!(f, "({a} / {b})"),
            SymExpr::Rem(a, b) => write!(f, "({a} % {b})"),
            SymExpr::Min(a, b) => write!(f, "min({a}, {b})"),
            SymExpr::Max(a, b) => write!(f, "max({a}, {b})"),
            SymExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

impl From<i64> for SymExpr {
    fn from(v: i64) -> Self {
        SymExpr::Int(v)
    }
}

impl From<&str> for SymExpr {
    fn from(s: &str) -> Self {
        SymExpr::Sym(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn eval_basic_arithmetic() {
        let e = SymExpr::sym("N").mul_int(2).add_int(3);
        assert_eq!(e.eval(&bind(&[("N", 10)])).unwrap(), 23);
    }

    #[test]
    fn eval_unbound_symbol_errors() {
        let e = SymExpr::sym("M");
        assert_eq!(
            e.eval(&HashMap::new()),
            Err(SymError::UnboundSymbol("M".into()))
        );
    }

    #[test]
    fn eval_division_by_zero_errors() {
        let e = SymExpr::Div(Box::new(SymExpr::Int(4)), Box::new(SymExpr::Int(0)));
        assert_eq!(e.eval_const(), Err(SymError::DivisionByZero));
    }

    #[test]
    fn simplify_identities() {
        let n = SymExpr::sym("N");
        assert_eq!(n.add_int(0), n);
        assert_eq!(n.mul_int(1), n);
        assert_eq!(n.mul_int(0), SymExpr::Int(0));
        assert_eq!(n.sub(&n), SymExpr::Int(0));
        assert_eq!(
            SymExpr::Neg(Box::new(SymExpr::Neg(Box::new(n.clone())))).simplified(),
            n
        );
    }

    #[test]
    fn simplify_constant_folding() {
        let e = SymExpr::Int(6).mul(&SymExpr::Int(7));
        assert_eq!(e, SymExpr::Int(42));
        let e = SymExpr::Min(Box::new(SymExpr::Int(3)), Box::new(SymExpr::Int(9))).simplified();
        assert_eq!(e, SymExpr::Int(3));
    }

    #[test]
    fn substitute_replaces_symbols() {
        let e = SymExpr::sym("i").add(&SymExpr::sym("j"));
        let s = e.substitute("i", &SymExpr::Int(5));
        assert_eq!(s.eval(&bind(&[("j", 2)])).unwrap(), 7);
        assert!(!s.references("i"));
        assert!(s.references("j"));
    }

    #[test]
    fn free_symbols_collects_all() {
        let e = SymExpr::sym("N")
            .mul(&SymExpr::sym("M"))
            .add(&SymExpr::sym("N"));
        let syms = e.free_symbols();
        assert_eq!(syms.len(), 2);
        assert!(syms.contains("N") && syms.contains("M"));
    }

    #[test]
    fn display_is_readable() {
        let e = SymExpr::sym("N").add_int(1);
        assert_eq!(format!("{e}"), "(N + 1)");
    }

    #[test]
    fn affine_decomposition() {
        // j - 1 + dj  ->  1*j + (dj - 1)
        let e = SymExpr::sym("j")
            .sub(&SymExpr::int(1))
            .add(&SymExpr::sym("dj"));
        let (k, rest) = e.affine_in("j").unwrap();
        assert_eq!(k, 1);
        assert_eq!(rest.eval(&bind(&[("dj", 2)])).unwrap(), 1);
        // 3*i - N  ->  3*i + (-N)
        let e = SymExpr::int(3)
            .mul(&SymExpr::sym("i"))
            .sub(&SymExpr::sym("N"));
        let (k, rest) = e.affine_in("i").unwrap();
        assert_eq!(k, 3);
        assert_eq!(rest.eval(&bind(&[("N", 7)])).unwrap(), -7);
        // Expressions without the variable decompose with coefficient 0.
        let e = SymExpr::sym("N").add_int(1);
        assert_eq!(e.affine_in("i").unwrap().0, 0);
        // Non-affine shapes are rejected.
        let sq = SymExpr::sym("i").mul(&SymExpr::sym("i"));
        assert!(sq.affine_in("i").is_none());
        let div = SymExpr::Div(Box::new(SymExpr::sym("i")), Box::new(SymExpr::int(2)));
        assert!(div.affine_in("i").is_none());
        // N*i is affine in i (symbolic coefficients are not supported, only
        // literal ones, so this must be rejected too).
        let ni = SymExpr::sym("N").mul(&SymExpr::sym("i"));
        assert!(ni.affine_in("i").is_none());
        // -(i + 1)  ->  -1*i + (-1)
        let e = SymExpr::Neg(Box::new(SymExpr::sym("i").add_int(1)));
        let (k, rest) = e.affine_in("i").unwrap();
        assert_eq!(k, -1);
        assert_eq!(rest.eval_const().unwrap(), -1);
    }

    #[test]
    fn euclidean_semantics_for_negative_operands() {
        let e = SymExpr::Rem(Box::new(SymExpr::Int(-7)), Box::new(SymExpr::Int(3)));
        assert_eq!(e.eval_const().unwrap(), 2);
        let d = SymExpr::Div(Box::new(SymExpr::Int(-7)), Box::new(SymExpr::Int(3)));
        assert_eq!(d.eval_const().unwrap(), -3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_expr(depth: u32) -> impl Strategy<Value = SymExpr> {
        let leaf = prop_oneof![
            (-20i64..20).prop_map(SymExpr::Int),
            prop_oneof![Just("N".to_string()), Just("M".to_string())].prop_map(SymExpr::Sym),
        ];
        leaf.prop_recursive(depth, 64, 8, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| SymExpr::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| SymExpr::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| SymExpr::Mul(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| SymExpr::Min(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| SymExpr::Max(Box::new(a), Box::new(b))),
                inner.clone().prop_map(|a| SymExpr::Neg(Box::new(a))),
            ]
        })
    }

    proptest! {
        /// Simplification must never change the value of an expression.
        #[test]
        fn simplify_preserves_evaluation(e in arb_expr(4), n in -10i64..10, m in -10i64..10) {
            let mut bindings = HashMap::new();
            bindings.insert("N".to_string(), n);
            bindings.insert("M".to_string(), m);
            let original = e.eval(&bindings);
            let simplified = e.simplified().eval(&bindings);
            prop_assert_eq!(original, simplified);
        }

        /// Whenever `affine_in` decomposes an expression, the decomposition
        /// must evaluate identically to the original at every binding.
        #[test]
        fn affine_decomposition_is_exact(e in arb_expr(4), n in -10i64..10, m in -10i64..10) {
            let mut bindings = HashMap::new();
            bindings.insert("N".to_string(), n);
            bindings.insert("M".to_string(), m);
            if let Some((k, rest)) = e.affine_in("N") {
                prop_assert!(!rest.references("N"));
                let direct = e.eval(&bindings);
                let recomposed = rest.eval(&bindings).map(|r| k * n + r);
                prop_assert_eq!(direct, recomposed);
            }
        }

        /// Substituting a symbol with a constant equals binding it.
        #[test]
        fn substitution_matches_binding(e in arb_expr(3), n in -10i64..10, m in -10i64..10) {
            let mut full = HashMap::new();
            full.insert("N".to_string(), n);
            full.insert("M".to_string(), m);
            let direct = e.eval(&full);
            let substituted = e
                .substitute("N", &SymExpr::Int(n))
                .substitute("M", &SymExpr::Int(m))
                .eval(&HashMap::new());
            prop_assert_eq!(direct, substituted);
        }
    }
}
