//! The Stateful DataFlow multiGraph container: arrays, symbols, states and
//! structured control flow.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::graph::DataflowGraph;
use crate::symexpr::{SymError, SymExpr};

/// Element data type of an array container.
///
/// The interpreter stores every container as `f64`; the dtype is kept as
/// metadata to mirror NPBench's float32 deep-learning kernels (documented
/// substitution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    F64,
    F32,
    I64,
    Bool,
}

impl DType {
    /// Size of one element in bytes (as the paper's memory model counts it).
    pub fn size_bytes(&self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::F32 => 4,
            DType::Bool => 1,
        }
    }
}

/// Descriptor of a data container.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDesc {
    /// Symbolic shape.
    pub shape: Vec<SymExpr>,
    /// Element type (metadata only; storage is f64).
    pub dtype: DType,
    /// Transient containers are allocated and freed by the SDFG itself;
    /// non-transients are program inputs/outputs.
    pub transient: bool,
}

impl ArrayDesc {
    /// Non-transient f64 array.
    pub fn input(shape: Vec<SymExpr>) -> Self {
        ArrayDesc {
            shape,
            dtype: DType::F64,
            transient: false,
        }
    }

    /// Transient f64 array.
    pub fn transient(shape: Vec<SymExpr>) -> Self {
        ArrayDesc {
            shape,
            dtype: DType::F64,
            transient: true,
        }
    }

    /// Scalar (shape `[1]`) transient.
    pub fn scalar_transient() -> Self {
        Self::transient(vec![SymExpr::Int(1)])
    }

    /// Total element count under symbol bindings.
    pub fn volume(&self, bindings: &HashMap<String, i64>) -> Result<i64, SymError> {
        let mut v = 1i64;
        for d in &self.shape {
            v *= d.eval(bindings)?.max(0);
        }
        Ok(v)
    }

    /// Size in bytes under symbol bindings (every element stored as f64 at
    /// runtime, but sized by `dtype` for the memory model to match the
    /// paper's MiB numbers).
    pub fn size_bytes(&self, bindings: &HashMap<String, i64>) -> Result<i64, SymError> {
        Ok(self.volume(bindings)? * self.dtype.size_bytes() as i64)
    }

    /// Concrete shape under symbol bindings.
    pub fn concrete_shape(&self, bindings: &HashMap<String, i64>) -> Result<Vec<usize>, SymError> {
        self.shape
            .iter()
            .map(|d| d.eval(bindings).map(|v| v.max(0) as usize))
            .collect()
    }
}

/// A state: a named dataflow graph, one "step" of the state machine.
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    /// Name (unique within the SDFG).
    pub name: String,
    /// The dataflow contents of the state.
    pub graph: DataflowGraph,
}

/// Comparison operators in control-flow conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Apply the comparison to two floats.
    pub fn apply(&self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// Operand of a control-flow condition.
#[derive(Clone, Debug, PartialEq)]
pub enum CondOperand {
    /// A scalar element of an array, e.g. `A[0, 0]`.
    Element {
        /// Array name.
        array: String,
        /// Symbolic element index.
        index: Vec<SymExpr>,
    },
    /// An integer symbolic expression over SDFG symbols / loop iterators.
    Sym(SymExpr),
    /// A floating-point constant.
    Const(f64),
}

/// A control-flow condition (interstate-edge condition in DaCe terms).
#[derive(Clone, Debug, PartialEq)]
pub enum CondExpr {
    /// Comparison of two operands.
    Cmp {
        lhs: CondOperand,
        op: CmpOp,
        rhs: CondOperand,
    },
    /// Negation.
    Not(Box<CondExpr>),
    /// Read a stored boolean flag (a `[1]`-shaped array written by the
    /// forward pass); used by backward SDFGs to replay forward decisions
    /// (Fig. 3 of the paper).
    StoredFlag(String),
}

impl CondExpr {
    /// Arrays referenced by the condition.
    pub fn referenced_arrays(&self) -> BTreeSet<String> {
        match self {
            CondExpr::Cmp { lhs, rhs, .. } => {
                let mut out = BTreeSet::new();
                for op in [lhs, rhs] {
                    if let CondOperand::Element { array, .. } = op {
                        out.insert(array.clone());
                    }
                }
                out
            }
            CondExpr::Not(inner) => inner.referenced_arrays(),
            CondExpr::StoredFlag(name) => {
                let mut out = BTreeSet::new();
                out.insert(name.clone());
                out
            }
        }
    }
}

/// Structured control flow of an SDFG.
///
/// DaCe represents control flow as a graph of states with conditional
/// interstate edges plus structured loop regions; this reproduction uses a
/// structured tree directly (Sequence / State / Loop / Branch), which covers
/// the loop taxonomy supported by the paper (affine `for` loops without
/// break/continue, branching, nesting).
#[derive(Clone, Debug, PartialEq)]
pub enum ControlFlow {
    /// Execute a single state.
    State(usize),
    /// Execute children in order.
    Sequence(Vec<ControlFlow>),
    /// A sequential loop region `for var in start..end step step`.
    Loop(LoopRegion),
    /// A two-way branch.
    Branch(BranchRegion),
}

/// A sequential loop region.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopRegion {
    /// Loop iterator name.
    pub var: String,
    /// Inclusive start (first value of the iterator).
    pub start: SymExpr,
    /// Exclusive end when `step > 0`; exclusive lower bound when `step < 0`.
    pub end: SymExpr,
    /// Step (non-zero integer expression, loop-invariant).
    pub step: SymExpr,
    /// Loop body.
    pub body: Box<ControlFlow>,
}

/// A structured branch region.
#[derive(Clone, Debug, PartialEq)]
pub struct BranchRegion {
    /// Branch condition.
    pub cond: CondExpr,
    /// Taken when the condition is true.
    pub then_body: Box<ControlFlow>,
    /// Taken when the condition is false (optional).
    pub else_body: Option<Box<ControlFlow>>,
}

impl ControlFlow {
    /// Iterate over the state ids referenced by this control-flow tree, in
    /// forward execution order (loop bodies and both branch arms once).
    pub fn states_in_order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_states(&mut out);
        out
    }

    fn collect_states(&self, out: &mut Vec<usize>) {
        match self {
            ControlFlow::State(id) => out.push(*id),
            ControlFlow::Sequence(children) => {
                for c in children {
                    c.collect_states(out);
                }
            }
            ControlFlow::Loop(l) => l.body.collect_states(out),
            ControlFlow::Branch(b) => {
                b.then_body.collect_states(out);
                if let Some(e) = &b.else_body {
                    e.collect_states(out);
                }
            }
        }
    }

    /// All loop iterator names declared in the tree.
    pub fn loop_iterators(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_iterators(&mut out);
        out
    }

    fn collect_iterators(&self, out: &mut BTreeSet<String>) {
        match self {
            ControlFlow::State(_) => {}
            ControlFlow::Sequence(children) => {
                for c in children {
                    c.collect_iterators(out);
                }
            }
            ControlFlow::Loop(l) => {
                out.insert(l.var.clone());
                l.body.collect_iterators(out);
            }
            ControlFlow::Branch(b) => {
                b.then_body.collect_iterators(out);
                if let Some(e) = &b.else_body {
                    e.collect_iterators(out);
                }
            }
        }
    }
}

/// Errors raised when constructing or validating SDFGs.
#[derive(Clone, Debug, PartialEq)]
pub enum SdfgError {
    /// A referenced array is not declared.
    UnknownArray(String),
    /// An array is declared twice.
    DuplicateArray(String),
    /// A state id in the control flow is out of range.
    UnknownState(usize),
    /// A dataflow graph contains a cycle.
    CyclicState(String),
    /// Generic validation failure.
    Invalid(String),
}

impl fmt::Display for SdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfgError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            SdfgError::DuplicateArray(a) => write!(f, "array `{a}` declared twice"),
            SdfgError::UnknownState(i) => write!(f, "control flow references unknown state {i}"),
            SdfgError::CyclicState(s) => write!(f, "state `{s}` has a cyclic dataflow graph"),
            SdfgError::Invalid(m) => write!(f, "invalid SDFG: {m}"),
        }
    }
}

impl std::error::Error for SdfgError {}

/// A Stateful DataFlow multiGraph.
#[derive(Clone, Debug, PartialEq)]
pub struct Sdfg {
    /// Name of the program.
    pub name: String,
    /// Data containers by name.
    pub arrays: BTreeMap<String, ArrayDesc>,
    /// Free integer symbols (problem sizes such as `N`, `TSTEPS`).
    pub symbols: Vec<String>,
    /// States (dataflow graphs).
    pub states: Vec<State>,
    /// Structured control flow over the states.
    pub cfg: ControlFlow,
}

impl Sdfg {
    /// Create an empty SDFG with an empty sequence as control flow.
    pub fn new(name: impl Into<String>) -> Self {
        Sdfg {
            name: name.into(),
            arrays: BTreeMap::new(),
            symbols: Vec::new(),
            states: Vec::new(),
            cfg: ControlFlow::Sequence(Vec::new()),
        }
    }

    /// Declare an array container.
    pub fn add_array(&mut self, name: impl Into<String>, desc: ArrayDesc) -> Result<(), SdfgError> {
        let name = name.into();
        if self.arrays.contains_key(&name) {
            return Err(SdfgError::DuplicateArray(name));
        }
        self.arrays.insert(name, desc);
        Ok(())
    }

    /// Declare a free symbol if not already present.
    pub fn add_symbol(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.symbols.contains(&name) {
            self.symbols.push(name);
        }
    }

    /// Add a state and return its id.
    pub fn add_state(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Convenience: add a state with a fresh dataflow graph and return its id.
    pub fn add_empty_state(&mut self, name: impl Into<String>) -> usize {
        self.add_state(State {
            name: name.into(),
            graph: DataflowGraph::new(),
        })
    }

    /// The descriptor of an array.
    pub fn array(&self, name: &str) -> Result<&ArrayDesc, SdfgError> {
        self.arrays
            .get(name)
            .ok_or_else(|| SdfgError::UnknownArray(name.to_string()))
    }

    /// Names of non-transient arrays (program inputs/outputs).
    pub fn non_transient_arrays(&self) -> Vec<String> {
        self.arrays
            .iter()
            .filter(|(_, d)| !d.transient)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Generate a fresh array name based on `base` that does not collide with
    /// existing containers.
    pub fn fresh_name(&self, base: &str) -> String {
        if !self.arrays.contains_key(base) {
            return base.to_string();
        }
        let mut i = 1;
        loop {
            let candidate = format!("{base}_{i}");
            if !self.arrays.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    // Structural validation lives in `crate::verify`: `validate()` returns
    // located diagnostics, `validate_strict()` the legacy typed error.

    /// Human-readable multi-line description (used in docs and debugging).
    pub fn describe(&self) -> String {
        let mut out = format!("SDFG `{}`\n", self.name);
        out.push_str(&format!(
            "  symbols: {}\n  arrays:\n",
            self.symbols.join(", ")
        ));
        for (name, desc) in &self.arrays {
            let dims: Vec<String> = desc.shape.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!(
                "    {name}[{}]{}\n",
                dims.join(", "),
                if desc.transient { " (transient)" } else { "" }
            ));
        }
        out.push_str(&format!("  states: {}\n", self.states.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_descriptor_sizes() {
        let d = ArrayDesc::input(vec![SymExpr::sym("N"), SymExpr::sym("N")]);
        let mut bind = HashMap::new();
        bind.insert("N".to_string(), 100);
        assert_eq!(d.volume(&bind).unwrap(), 10_000);
        assert_eq!(d.size_bytes(&bind).unwrap(), 80_000);
        assert_eq!(d.concrete_shape(&bind).unwrap(), vec![100, 100]);
    }

    #[test]
    fn duplicate_array_rejected() {
        let mut s = Sdfg::new("p");
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        assert!(s
            .add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .is_err());
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let mut s = Sdfg::new("p");
        s.add_array("grad_A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        assert_eq!(s.fresh_name("grad_A"), "grad_A_1");
        assert_eq!(s.fresh_name("B"), "B");
    }

    #[test]
    fn validate_detects_unknown_array() {
        let mut s = Sdfg::new("p");
        let mut state = State {
            name: "s0".into(),
            graph: DataflowGraph::new(),
        };
        state.graph.add_access("missing");
        let id = s.add_state(state);
        s.cfg = ControlFlow::State(id);
        assert!(matches!(
            s.validate_strict(),
            Err(SdfgError::UnknownArray(_))
        ));
    }

    #[test]
    fn validate_detects_unknown_state() {
        let mut s = Sdfg::new("p");
        s.cfg = ControlFlow::State(3);
        assert!(matches!(
            s.validate_strict(),
            Err(SdfgError::UnknownState(3))
        ));
    }

    #[test]
    fn control_flow_state_collection() {
        let cfg = ControlFlow::Sequence(vec![
            ControlFlow::State(0),
            ControlFlow::Loop(LoopRegion {
                var: "i".into(),
                start: SymExpr::int(0),
                end: SymExpr::sym("N"),
                step: SymExpr::int(1),
                body: Box::new(ControlFlow::Sequence(vec![
                    ControlFlow::State(1),
                    ControlFlow::Branch(BranchRegion {
                        cond: CondExpr::Cmp {
                            lhs: CondOperand::Sym(SymExpr::sym("i")),
                            op: CmpOp::Lt,
                            rhs: CondOperand::Const(3.0),
                        },
                        then_body: Box::new(ControlFlow::State(2)),
                        else_body: Some(Box::new(ControlFlow::State(3))),
                    }),
                ])),
            }),
        ]);
        assert_eq!(cfg.states_in_order(), vec![0, 1, 2, 3]);
        assert!(cfg.loop_iterators().contains("i"));
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
        assert!(!CmpOp::Eq.apply(1.0, 2.0));
    }

    #[test]
    fn cond_referenced_arrays() {
        let c = CondExpr::Cmp {
            lhs: CondOperand::Element {
                array: "A".into(),
                index: vec![SymExpr::int(0)],
            },
            op: CmpOp::Gt,
            rhs: CondOperand::Const(0.0),
        };
        assert!(c.referenced_arrays().contains("A"));
        let f = CondExpr::StoredFlag("cond_0".into());
        assert!(f.referenced_arrays().contains("cond_0"));
    }

    #[test]
    fn describe_mentions_arrays() {
        let mut s = Sdfg::new("prog");
        s.add_symbol("N");
        s.add_array("A", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        let d = s.describe();
        assert!(d.contains("prog"));
        assert!(d.contains("A[N]"));
    }
}
