//! Dataflow analyses over SDFGs.
//!
//! The central analysis is the **critical computation subgraph** (CCS) of
//! Section II of the paper: the minimal subgraph containing only the
//! computations through which the independent variables contribute to the
//! dependent variable.  It is computed by a reverse breadth-first traversal
//! that starts from the dependent output and propagates across states,
//! loops (to a fixed point, matching §III-B without unrolling) and branches
//! (as an over-approximation, pruned at runtime by stored conditionals).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::graph::{DataflowGraph, DfNode, NodeId};
use crate::memlet::{IndexRange, Subset};
use crate::sdfg::{ArrayDesc, ControlFlow, Sdfg};
use crate::symexpr::SymExpr;

/// Result of the CCS analysis.
#[derive(Clone, Debug, Default)]
pub struct CcsInfo {
    /// For each state id, the set of top-level node ids that belong to the CCS.
    pub per_state: BTreeMap<usize, BTreeSet<NodeId>>,
    /// Arrays that (transitively) contribute to the dependent output.
    pub contributing_arrays: BTreeSet<String>,
    /// Number of fixed-point iterations performed over loop bodies (reported
    /// for diagnostics; the paper's observation is that this converges after
    /// a small number of body evaluations).
    pub loop_iterations: usize,
}

impl CcsInfo {
    /// True if a state has any CCS node.
    pub fn state_active(&self, state: usize) -> bool {
        self.per_state
            .get(&state)
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    /// The CCS nodes of a state (empty set if none).
    pub fn nodes_of(&self, state: usize) -> BTreeSet<NodeId> {
        self.per_state.get(&state).cloned().unwrap_or_default()
    }
}

/// Compute the critical computation subgraph of `sdfg` with respect to the
/// dependent output array `output`.
pub fn compute_ccs(sdfg: &Sdfg, output: &str) -> CcsInfo {
    let mut info = CcsInfo::default();
    let mut live: BTreeSet<String> = BTreeSet::new();
    live.insert(output.to_string());
    analyze_cfg(sdfg, &sdfg.cfg, &mut live, &mut info);
    info.contributing_arrays = live;
    info
}

fn analyze_cfg(sdfg: &Sdfg, cfg: &ControlFlow, live: &mut BTreeSet<String>, info: &mut CcsInfo) {
    match cfg {
        ControlFlow::State(id) => {
            let state = &sdfg.states[*id];
            let marked = mark_state(&state.graph, live);
            // Arrays read by marked nodes now also contribute.
            for array in arrays_read_by(&state.graph, &marked) {
                live.insert(array);
            }
            let entry = info.per_state.entry(*id).or_default();
            entry.extend(marked);
        }
        ControlFlow::Sequence(children) => {
            // Reverse execution order: the last state is analysed first.
            for c in children.iter().rev() {
                analyze_cfg(sdfg, c, live, info);
            }
        }
        ControlFlow::Loop(l) => {
            // Fixed point over the loop body: the contributing set can only
            // grow, so at most |arrays| + 1 iterations are needed.
            let max_iters = sdfg.arrays.len() + 1;
            for _ in 0..max_iters {
                let before = live.clone();
                analyze_cfg(sdfg, &l.body, live, info);
                info.loop_iterations += 1;
                if *live == before {
                    break;
                }
            }
        }
        ControlFlow::Branch(b) => {
            // Over-approximate: both arms are analysed with the same incoming
            // live set and the union is kept (pruned at runtime, Fig. 3).
            let mut then_live = live.clone();
            analyze_cfg(sdfg, &b.then_body, &mut then_live, info);
            let mut else_live = live.clone();
            if let Some(e) = &b.else_body {
                analyze_cfg(sdfg, e, &mut else_live, info);
            }
            live.extend(then_live);
            live.extend(else_live);
            // Arrays referenced by the condition must be preserved for the
            // backward pass (the condition is stored and replayed).
            live.extend(b.cond.referenced_arrays());
        }
    }
}

/// Mark the nodes of a state graph that contribute to any of the `live`
/// arrays: reverse BFS starting from the written access nodes of live arrays.
fn mark_state(graph: &DataflowGraph, live: &BTreeSet<String>) -> BTreeSet<NodeId> {
    let mut marked: BTreeSet<NodeId> = BTreeSet::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();

    for (id, node) in graph.nodes.iter().enumerate() {
        if let DfNode::Access(name) = node {
            if live.contains(name) && !graph.in_edges(id).is_empty() {
                // This access node is written in this state: a seed.
                if marked.insert(id) {
                    queue.push_back(id);
                }
            }
        }
        // Map scopes and library nodes that write a live array directly via
        // their out-edges are seeded through their destination access nodes,
        // handled above.
    }

    while let Some(node) = queue.pop_front() {
        for e in graph.in_edges(node) {
            if marked.insert(e.src) {
                queue.push_back(e.src);
            }
        }
    }
    marked
}

/// Arrays read by the marked nodes of a graph (their incoming access-node
/// edges plus everything read inside marked map bodies).
fn arrays_read_by(graph: &DataflowGraph, marked: &BTreeSet<NodeId>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for e in &graph.edges {
        if marked.contains(&e.dst) {
            if let DfNode::Access(name) = &graph.nodes[e.src] {
                out.insert(name.clone());
            }
        }
    }
    for &id in marked {
        if let DfNode::MapScope(m) = &graph.nodes[id] {
            out.extend(m.body.reads().into_keys());
        }
    }
    out
}

/// Whether a write memlet fully overwrites the array (covers every element
/// and is not an accumulation).  Conservative: returns `false` when coverage
/// cannot be proven symbolically.
pub fn is_full_overwrite(subset: &Subset, desc: &ArrayDesc, wcr: bool) -> bool {
    if wcr {
        return false;
    }
    if subset.is_all() {
        return true;
    }
    if subset.0.len() != desc.shape.len() {
        return false;
    }
    subset
        .0
        .iter()
        .zip(desc.shape.iter())
        .all(|(r, dim)| match r {
            IndexRange::Range { start, end } => {
                start.simplified().is_const(0) && end.simplified() == dim.simplified()
            }
            IndexRange::Index(_) => dim.simplified().is_const(1),
        })
}

/// Per-state classification of how each array is accessed, used by the AD
/// engine for gradient clearing and forwarding decisions.
#[derive(Clone, Debug, Default)]
pub struct AccessSummary {
    /// Arrays read in the state (outside or inside maps).
    pub reads: BTreeSet<String>,
    /// Arrays written in the state.
    pub writes: BTreeSet<String>,
    /// Arrays that are fully overwritten by at least one write.
    pub overwrites: BTreeSet<String>,
}

/// Summarise accesses of a state graph.
pub fn summarize_accesses(graph: &DataflowGraph, sdfg: &Sdfg) -> AccessSummary {
    let mut summary = AccessSummary {
        reads: graph.reads().into_keys().collect(),
        writes: BTreeSet::new(),
        overwrites: BTreeSet::new(),
    };
    for (array, memlets) in graph.writes() {
        summary.writes.insert(array.clone());
        if let Ok(desc) = sdfg.array(&array) {
            for m in &memlets {
                if is_full_overwrite(&m.subset, desc, m.wcr.is_some()) {
                    summary.overwrites.insert(array.clone());
                }
            }
        }
    }
    summary
}

/// Estimated floating-point cost of executing the whole SDFG once under the
/// given symbol bindings (loops multiply by their trip count).
pub fn sdfg_flop_estimate(sdfg: &Sdfg, bindings: &HashMap<String, i64>) -> f64 {
    cfg_flops(sdfg, &sdfg.cfg, bindings)
}

fn cfg_flops(sdfg: &Sdfg, cfg: &ControlFlow, bindings: &HashMap<String, i64>) -> f64 {
    match cfg {
        ControlFlow::State(id) => sdfg.states[*id].graph.flop_estimate(bindings),
        ControlFlow::Sequence(children) => {
            children.iter().map(|c| cfg_flops(sdfg, c, bindings)).sum()
        }
        ControlFlow::Loop(l) => {
            let start = l.start.eval(bindings).unwrap_or(0);
            let end = l.end.eval(bindings).unwrap_or(0);
            let step = l.step.eval(bindings).unwrap_or(1);
            let trips = if step > 0 {
                ((end - start).max(0) + step - 1) / step.max(1)
            } else if step < 0 {
                ((start - end).max(0) + (-step) - 1) / (-step)
            } else {
                0
            };
            let mut inner = bindings.clone();
            inner.insert(l.var.clone(), start);
            trips as f64 * cfg_flops(sdfg, &l.body, &inner)
        }
        ControlFlow::Branch(b) => {
            // Pessimistic: the more expensive arm.
            let t = cfg_flops(sdfg, &b.then_body, bindings);
            let e = b
                .else_body
                .as_ref()
                .map(|e| cfg_flops(sdfg, e, bindings))
                .unwrap_or(0.0);
            t.max(e)
        }
    }
}

/// The trip count of a loop region under symbol bindings (0 if empty).
pub fn loop_trip_count(
    start: &SymExpr,
    end: &SymExpr,
    step: &SymExpr,
    bindings: &HashMap<String, i64>,
) -> i64 {
    let s = match start.eval(bindings) {
        Ok(v) => v,
        Err(_) => return 0,
    };
    let e = match end.eval(bindings) {
        Ok(v) => v,
        Err(_) => return 0,
    };
    let st = match step.eval(bindings) {
        Ok(v) => v,
        Err(_) => return 0,
    };
    if st > 0 {
        ((e - s).max(0) + st - 1) / st
    } else if st < 0 {
        ((s - e).max(0) + (-st) - 1) / (-st)
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LibraryOp, MapScope};
    use crate::memlet::Memlet;
    use crate::scalar_expr::ScalarExpr as E;
    use crate::sdfg::{BranchRegion, CmpOp, CondExpr, CondOperand, LoopRegion, State};
    use crate::tasklet::Tasklet;

    /// Build the running example of Fig. 2: two states inside a time-step
    /// loop; `A = 2*M`, `B = 3*M`, `C = 4*N`, `E += C`, `O += sin(A+B)`.
    fn fig2_sdfg() -> Sdfg {
        let mut sdfg = Sdfg::new("fig2");
        sdfg.add_symbol("S");
        sdfg.add_symbol("TSTEPS");
        for name in ["M", "N", "A", "B", "C", "E", "O"] {
            sdfg.add_array(name, ArrayDesc::input(vec![SymExpr::sym("S")]))
                .unwrap();
        }

        // state_1: A = 2*M ; B = 3*M ; C = 4*N  (element-wise maps)
        let mut s1 = DataflowGraph::new();
        for (dst, src, k) in [("A", "M", 2.0), ("B", "M", 3.0), ("C", "N", 4.0)] {
            let mut body = DataflowGraph::new();
            let r = body.add_access(src);
            let t = body.add_tasklet(Tasklet::new("scale", "o", E::input("x").mul(E::c(k))));
            let w = body.add_access(dst);
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element(src, vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element(dst, vec![SymExpr::sym("i")]),
            );
            let src_node = s1.add_access(src);
            let map = s1.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("S"))],
                body,
                parallel: true,
            });
            let dst_node = s1.add_access(dst);
            s1.add_edge(src_node, None, map, None, Memlet::all(src));
            s1.add_edge(map, None, dst_node, None, Memlet::all(dst));
        }
        let s1_id = sdfg.add_state(State {
            name: "state_1".into(),
            graph: s1,
        });

        // state_2: E += C ; O += sin(A + B)  (element-wise maps with WCR)
        let mut s2 = DataflowGraph::new();
        {
            let mut body = DataflowGraph::new();
            let c = body.add_access("C");
            let t = body.add_tasklet(Tasklet::new("acc", "o", E::input("c")));
            let e = body.add_access("E");
            body.add_edge(
                c,
                None,
                t,
                Some("c"),
                Memlet::element("C", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                e,
                None,
                Memlet::element("E", vec![SymExpr::sym("i")]).with_wcr_sum(),
            );
            let c_out = s2.add_access("C");
            let map = s2.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("S"))],
                body,
                parallel: true,
            });
            let e_out = s2.add_access("E");
            s2.add_edge(c_out, None, map, None, Memlet::all("C"));
            s2.add_edge(map, None, e_out, None, Memlet::all("E"));
        }
        {
            let mut body = DataflowGraph::new();
            let a = body.add_access("A");
            let b = body.add_access("B");
            let t = body.add_tasklet(Tasklet::new(
                "sin_add",
                "o",
                E::un(
                    crate::scalar_expr::UnOp::Sin,
                    E::input("a").add(E::input("b")),
                ),
            ));
            let o = body.add_access("O");
            body.add_edge(
                a,
                None,
                t,
                Some("a"),
                Memlet::element("A", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                b,
                None,
                t,
                Some("b"),
                Memlet::element("B", vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                o,
                None,
                Memlet::element("O", vec![SymExpr::sym("i")]).with_wcr_sum(),
            );
            let a_out = s2.add_access("A");
            let b_out = s2.add_access("B");
            let map = s2.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::sym("S"))],
                body,
                parallel: true,
            });
            let o_out = s2.add_access("O");
            s2.add_edge(a_out, None, map, None, Memlet::all("A"));
            s2.add_edge(b_out, None, map, None, Memlet::all("B"));
            s2.add_edge(map, None, o_out, None, Memlet::all("O"));
        }
        let s2_id = sdfg.add_state(State {
            name: "state_2".into(),
            graph: s2,
        });

        sdfg.cfg = ControlFlow::Loop(LoopRegion {
            var: "t".into(),
            start: SymExpr::int(0),
            end: SymExpr::sym("TSTEPS"),
            step: SymExpr::int(1),
            body: Box::new(ControlFlow::Sequence(vec![
                ControlFlow::State(s1_id),
                ControlFlow::State(s2_id),
            ])),
        });
        sdfg.validate_strict().unwrap();
        sdfg
    }

    #[test]
    fn ccs_tracks_contributions_to_output() {
        let sdfg = fig2_sdfg();
        let ccs = compute_ccs(&sdfg, "O");
        // O depends on A and B, which depend on M.  C, E, N do not contribute.
        assert!(ccs.contributing_arrays.contains("O"));
        assert!(ccs.contributing_arrays.contains("A"));
        assert!(ccs.contributing_arrays.contains("B"));
        assert!(ccs.contributing_arrays.contains("M"));
        assert!(!ccs.contributing_arrays.contains("C"));
        assert!(!ccs.contributing_arrays.contains("E"));
        assert!(!ccs.contributing_arrays.contains("N"));
    }

    #[test]
    fn ccs_marks_only_contributing_nodes() {
        let sdfg = fig2_sdfg();
        let ccs = compute_ccs(&sdfg, "O");
        // state_1 has three map chains (A, B, C); only the A and B chains are
        // in the CCS: 3 nodes each (access src, map, access dst) = 6 nodes.
        let s1_nodes = ccs.nodes_of(0);
        assert_eq!(s1_nodes.len(), 6, "CCS of state_1: {s1_nodes:?}");
        // state_2: only the O chain (4 nodes: A access, B access, map, O access).
        let s2_nodes = ccs.nodes_of(1);
        assert_eq!(s2_nodes.len(), 4, "CCS of state_2: {s2_nodes:?}");
    }

    #[test]
    fn ccs_with_output_e_tracks_c_and_n() {
        let sdfg = fig2_sdfg();
        let ccs = compute_ccs(&sdfg, "E");
        assert!(ccs.contributing_arrays.contains("C"));
        assert!(ccs.contributing_arrays.contains("N"));
        assert!(!ccs.contributing_arrays.contains("A"));
        assert!(!ccs.contributing_arrays.contains("M"));
    }

    #[test]
    fn loop_fixed_point_terminates() {
        let sdfg = fig2_sdfg();
        let ccs = compute_ccs(&sdfg, "O");
        // The live set stabilises after at most two body passes plus the
        // confirming pass.
        assert!(ccs.loop_iterations <= sdfg.arrays.len() + 1);
        assert!(ccs.loop_iterations >= 2);
    }

    #[test]
    fn branch_over_approximates_and_tracks_condition() {
        let mut sdfg = Sdfg::new("branchy");
        sdfg.add_array("X", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        sdfg.add_array("Y", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        sdfg.add_array("O", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        sdfg.add_array("P", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();

        // then: O = X * 2 ; else: O = Y * 3
        let build = |src: &str| {
            let mut g = DataflowGraph::new();
            let mut body = DataflowGraph::new();
            let r = body.add_access(src);
            let t = body.add_tasklet(Tasklet::new("s", "o", E::input("x").mul(E::c(2.0))));
            let w = body.add_access("O");
            body.add_edge(
                r,
                None,
                t,
                Some("x"),
                Memlet::element(src, vec![SymExpr::sym("i")]),
            );
            body.add_edge(
                t,
                Some("o"),
                w,
                None,
                Memlet::element("O", vec![SymExpr::sym("i")]),
            );
            let rn = g.add_access(src);
            let m = g.add_map(MapScope {
                params: vec!["i".into()],
                ranges: vec![(SymExpr::int(0), SymExpr::int(4))],
                body,
                parallel: true,
            });
            let wn = g.add_access("O");
            g.add_edge(rn, None, m, None, Memlet::all(src));
            g.add_edge(m, None, wn, None, Memlet::all("O"));
            g
        };
        let then_id = sdfg.add_state(State {
            name: "then".into(),
            graph: build("X"),
        });
        let else_id = sdfg.add_state(State {
            name: "else".into(),
            graph: build("Y"),
        });
        sdfg.cfg = ControlFlow::Branch(BranchRegion {
            cond: CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            then_body: Box::new(ControlFlow::State(then_id)),
            else_body: Some(Box::new(ControlFlow::State(else_id))),
        });
        let ccs = compute_ccs(&sdfg, "O");
        assert!(ccs.contributing_arrays.contains("X"));
        assert!(ccs.contributing_arrays.contains("Y"));
        // The branch condition array must be preserved.
        assert!(ccs.contributing_arrays.contains("P"));
        assert!(ccs.state_active(then_id));
        assert!(ccs.state_active(else_id));
    }

    #[test]
    fn full_overwrite_detection() {
        let desc = ArrayDesc::input(vec![SymExpr::sym("N"), SymExpr::sym("N")]);
        assert!(is_full_overwrite(&Subset::all(), &desc, false));
        assert!(!is_full_overwrite(&Subset::all(), &desc, true));
        let full = Subset(vec![
            IndexRange::range(SymExpr::int(0), SymExpr::sym("N")),
            IndexRange::range(SymExpr::int(0), SymExpr::sym("N")),
        ]);
        assert!(is_full_overwrite(&full, &desc, false));
        let partial = Subset(vec![
            IndexRange::range(SymExpr::int(0), SymExpr::sym("N")),
            IndexRange::idx(SymExpr::int(3)),
        ]);
        assert!(!is_full_overwrite(&partial, &desc, false));
        let scalar_desc = ArrayDesc::input(vec![SymExpr::int(1)]);
        assert!(is_full_overwrite(
            &Subset::indices(vec![SymExpr::int(0)]),
            &scalar_desc,
            false
        ));
    }

    #[test]
    fn access_summary_classifies() {
        let sdfg = fig2_sdfg();
        let summary = summarize_accesses(&sdfg.states[0].graph, &sdfg);
        assert!(summary.reads.contains("M"));
        assert!(summary.writes.contains("A"));
        assert!(summary.overwrites.is_empty() || summary.overwrites.contains("A"));
        let s2 = summarize_accesses(&sdfg.states[1].graph, &sdfg);
        assert!(s2.reads.contains("A") && s2.reads.contains("C"));
        assert!(s2.writes.contains("O") && s2.writes.contains("E"));
    }

    #[test]
    fn flop_estimate_counts_loop_trips() {
        let sdfg = fig2_sdfg();
        let mut bind = HashMap::new();
        bind.insert("S".to_string(), 10);
        bind.insert("TSTEPS".to_string(), 3);
        let flops = sdfg_flop_estimate(&sdfg, &bind);
        // state_1: 3 maps x 10 elements x 1 op = 30; state_2: E map 10*0 + O map 10*2 = 20
        // total per iteration = 50, times 3 iterations = 150.
        assert_eq!(flops, 150.0);
    }

    #[test]
    fn trip_count_handles_negative_steps() {
        let bind = HashMap::new();
        assert_eq!(
            loop_trip_count(&SymExpr::int(0), &SymExpr::int(10), &SymExpr::int(1), &bind),
            10
        );
        assert_eq!(
            loop_trip_count(
                &SymExpr::int(9),
                &SymExpr::int(-1),
                &SymExpr::int(-1),
                &bind
            ),
            10
        );
        assert_eq!(
            loop_trip_count(&SymExpr::int(0), &SymExpr::int(10), &SymExpr::int(3), &bind),
            4
        );
        assert_eq!(
            loop_trip_count(&SymExpr::int(0), &SymExpr::int(0), &SymExpr::int(1), &bind),
            0
        );
    }

    #[test]
    fn library_node_in_ccs() {
        let mut sdfg = Sdfg::new("mm");
        sdfg.add_symbol("N");
        for n in ["A", "B", "C"] {
            sdfg.add_array(
                n,
                ArrayDesc::input(vec![SymExpr::sym("N"), SymExpr::sym("N")]),
            )
            .unwrap();
        }
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let b = g.add_access("B");
        let mm = g.add_library(LibraryOp::MatMul);
        let c = g.add_access("C");
        g.add_edge(a, None, mm, Some("A"), Memlet::all("A"));
        g.add_edge(b, None, mm, Some("B"), Memlet::all("B"));
        g.add_edge(mm, Some("C"), c, None, Memlet::all("C"));
        let sid = sdfg.add_state(State {
            name: "s".into(),
            graph: g,
        });
        sdfg.cfg = ControlFlow::State(sid);
        let ccs = compute_ccs(&sdfg, "C");
        assert_eq!(ccs.nodes_of(sid).len(), 4);
        assert!(ccs.contributing_arrays.contains("A"));
        assert!(ccs.contributing_arrays.contains("B"));
    }
}
