//! Structural SDFG verification.
//!
//! [`Sdfg::validate`] walks the whole graph — control flow, states, map
//! bodies — and returns every structural problem it can find as a
//! [`Diagnostic`] carrying a severity, a location (state index and node id
//! where applicable) and a human-readable message.  The runtime runs this
//! pass inside `compile()` and rejects SDFGs with error-severity
//! diagnostics, so malformed graphs are reported once, at compile time,
//! instead of surfacing as lazy per-node execution errors.
//!
//! Severity policy:
//!
//! * **Error** — the construct is unambiguously broken and cannot execute
//!   meaningfully: dangling memlet endpoints, references to undeclared
//!   arrays or states, cyclic dataflow graphs, subset-rank vs array-rank
//!   mismatches, constant indices provably out of bounds against constant
//!   shape dimensions, and inconsistent map scopes (parameter/range arity
//!   mismatch, duplicate parameters).
//! * **Warning** — suspicious but executable (or only checkable with more
//!   context than the pure structure provides): free subset symbols that
//!   are neither declared SDFG symbols, loop iterators, nor in-scope map
//!   parameters; iterator names shadowing an outer binding; tasklet edges
//!   without connectors (the runtime reports these lazily, and only if the
//!   state is ever executed); memlets whose `data` disagrees with the
//!   access node they attach to; constant zero loop steps.
//!
//! The legacy typed interface survives as [`Sdfg::validate_strict`], which
//! maps the first error diagnostic back onto [`SdfgError`].

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::{DataflowGraph, DfNode, NodeId};
use crate::memlet::IndexRange;
use crate::sdfg::{CondExpr, CondOperand, ControlFlow, Sdfg, SdfgError};
use crate::symexpr::SymExpr;

/// How severe a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but executable structure.
    Warning,
    /// Unambiguously broken structure; `compile()` rejects the SDFG.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Machine-readable diagnostic category (with the offending name/id where
/// one exists, so callers can match without parsing messages).
#[derive(Clone, Debug, PartialEq)]
pub enum DiagCode {
    /// Control flow references a state index that does not exist.
    UnknownState(usize),
    /// A state's dataflow graph is cyclic.
    CyclicState(String),
    /// An edge endpoint is not a node of its graph.
    DanglingEdge,
    /// An access node or memlet references an undeclared array.
    UnknownArray(String),
    /// A symbolic expression references a name that is neither an SDFG
    /// symbol, a loop iterator, nor an in-scope map parameter.
    UnknownSymbol(String),
    /// A memlet subset's rank differs from the declared array rank.
    RankMismatch,
    /// A constant index is out of bounds against a constant shape.
    IndexOutOfBounds,
    /// A map scope's parameter and range lists have different lengths.
    MapArity,
    /// A map scope declares the same parameter twice.
    DuplicateParam,
    /// An iterator or parameter shadows an outer binding.
    ShadowedName(String),
    /// A loop region's step is constant zero.
    ZeroStep,
    /// A tasklet edge is missing a connector or names an unknown one.
    BadConnector,
    /// A memlet's `data` disagrees with the access node it attaches to.
    DataMismatch,
}

/// One structural problem found by [`Sdfg::validate`].
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub code: DiagCode,
    /// Index of the state the problem was found in (`None` for control-flow
    /// or array-declaration problems).
    pub state: Option<usize>,
    /// Node id within the (possibly nested) graph, when the problem is
    /// attached to a node or one of its edges.
    pub node: Option<NodeId>,
    /// Human-readable description, including state names and expressions.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

/// Whether any edge endpoint is outside the node list (such graphs cannot
/// be topologically sorted).
fn has_dangling_edges(graph: &DataflowGraph) -> bool {
    graph
        .edges
        .iter()
        .any(|e| e.src >= graph.nodes.len() || e.dst >= graph.nodes.len())
}

/// Walks one SDFG, accumulating diagnostics.
struct Verifier<'a> {
    sdfg: &'a Sdfg,
    /// Declared SDFG symbols plus every control-flow loop iterator; map
    /// parameters extend this per scope during graph recursion.
    known_syms: BTreeSet<String>,
    diags: Vec<Diagnostic>,
}

impl<'a> Verifier<'a> {
    fn push(
        &mut self,
        severity: Severity,
        code: DiagCode,
        state: Option<usize>,
        node: Option<NodeId>,
        message: String,
    ) {
        self.diags.push(Diagnostic {
            severity,
            code,
            state,
            node,
            message,
        });
    }

    fn state_name(&self, state: Option<usize>) -> &str {
        state
            .and_then(|s| self.sdfg.states.get(s))
            .map(|s| s.name.as_str())
            .unwrap_or("<cfg>")
    }

    /// Check that every free symbol of `e` is in scope.
    fn check_expr_syms(
        &mut self,
        e: &SymExpr,
        scope: &[String],
        state: Option<usize>,
        node: Option<NodeId>,
        what: &str,
    ) {
        for s in e.free_symbols() {
            if !self.known_syms.contains(&s) && !scope.contains(&s) {
                let loc = self.state_name(state).to_string();
                self.push(
                    Severity::Warning,
                    DiagCode::UnknownSymbol(s.clone()),
                    state,
                    node,
                    format!("undeclared symbol `{s}` in {what} `{e}` (state `{loc}`)"),
                );
            }
        }
    }

    fn check_cf(&mut self, cf: &ControlFlow) {
        match cf {
            ControlFlow::State(id) => {
                if *id >= self.sdfg.states.len() {
                    self.push(
                        Severity::Error,
                        DiagCode::UnknownState(*id),
                        None,
                        None,
                        format!(
                            "control flow references state {id}, but only {} states exist",
                            self.sdfg.states.len()
                        ),
                    );
                }
            }
            ControlFlow::Sequence(items) => {
                for item in items {
                    self.check_cf(item);
                }
            }
            ControlFlow::Loop(l) => {
                if self.sdfg.symbols.contains(&l.var) {
                    self.push(
                        Severity::Warning,
                        DiagCode::ShadowedName(l.var.clone()),
                        None,
                        None,
                        format!("loop iterator `{}` shadows an SDFG symbol", l.var),
                    );
                }
                for (e, what) in [
                    (&l.start, "loop start"),
                    (&l.end, "loop end"),
                    (&l.step, "loop step"),
                ] {
                    self.check_expr_syms(e, &[], None, None, what);
                }
                if l.step.is_const(0) {
                    self.push(
                        Severity::Warning,
                        DiagCode::ZeroStep,
                        None,
                        None,
                        format!("loop over `{}` has constant step 0", l.var),
                    );
                }
                self.check_cf(&l.body);
            }
            ControlFlow::Branch(b) => {
                self.check_cond(&b.cond);
                self.check_cf(&b.then_body);
                if let Some(else_body) = &b.else_body {
                    self.check_cf(else_body);
                }
            }
        }
    }

    fn check_cond(&mut self, cond: &CondExpr) {
        match cond {
            CondExpr::Cmp { lhs, rhs, .. } => {
                self.check_operand(lhs);
                self.check_operand(rhs);
            }
            CondExpr::Not(inner) => self.check_cond(inner),
            CondExpr::StoredFlag(array) => self.check_cond_array(array, None),
        }
    }

    fn check_operand(&mut self, op: &CondOperand) {
        match op {
            CondOperand::Const(_) => {}
            CondOperand::Sym(e) => self.check_expr_syms(e, &[], None, None, "branch condition"),
            CondOperand::Element { array, index } => {
                self.check_cond_array(array, Some(index));
            }
        }
    }

    fn check_cond_array(&mut self, array: &str, index: Option<&Vec<SymExpr>>) {
        let Some(desc) = self.sdfg.arrays.get(array) else {
            self.push(
                Severity::Error,
                DiagCode::UnknownArray(array.to_string()),
                None,
                None,
                format!("branch condition reads undeclared array `{array}`"),
            );
            return;
        };
        if let Some(index) = index {
            if index.len() != desc.shape.len() {
                self.push(
                    Severity::Error,
                    DiagCode::RankMismatch,
                    None,
                    None,
                    format!(
                        "branch condition indexes `{array}` with rank {} (declared rank {})",
                        index.len(),
                        desc.shape.len()
                    ),
                );
                return;
            }
            for (d, e) in index.iter().enumerate() {
                self.check_expr_syms(e, &[], None, None, "branch condition index");
                self.check_const_bound(e, &desc.shape[d], array, None, None);
            }
        }
    }

    /// Flag a constant index against a constant shape dimension.
    fn check_const_bound(
        &mut self,
        index: &SymExpr,
        dim: &SymExpr,
        array: &str,
        state: Option<usize>,
        node: Option<NodeId>,
    ) {
        let (Ok(i), Ok(n)) = (index.eval_const(), dim.eval_const()) else {
            return;
        };
        if i < 0 || i >= n {
            let loc = self.state_name(state).to_string();
            self.push(
                Severity::Error,
                DiagCode::IndexOutOfBounds,
                state,
                node,
                format!(
                    "index {i} out of bounds for `{array}` dimension of extent {n} (state `{loc}`)"
                ),
            );
        }
    }

    fn check_graph(&mut self, graph: &DataflowGraph, state: usize, scope: &mut Vec<String>) {
        // Nodes (recursing into map bodies with extended parameter scope).
        for (id, node) in graph.nodes.iter().enumerate() {
            match node {
                DfNode::Access(name) => {
                    if !self.sdfg.arrays.contains_key(name) {
                        let loc = self.state_name(Some(state)).to_string();
                        self.push(
                            Severity::Error,
                            DiagCode::UnknownArray(name.clone()),
                            Some(state),
                            Some(id),
                            format!(
                                "access node references undeclared array `{name}` (state `{loc}`)"
                            ),
                        );
                    }
                }
                DfNode::Tasklet(t) => {
                    // Connector hygiene: the runtime reports these lazily
                    // (only when the tasklet executes), so they are warnings.
                    for e in graph.in_edges(id) {
                        if e.dst_conn.is_none() {
                            self.push(
                                Severity::Warning,
                                DiagCode::BadConnector,
                                Some(state),
                                Some(id),
                                format!("in-edge of tasklet `{}` has no connector", t.label),
                            );
                        }
                    }
                    for e in graph.out_edges(id) {
                        match e.src_conn.as_deref() {
                            None => self.push(
                                Severity::Warning,
                                DiagCode::BadConnector,
                                Some(state),
                                Some(id),
                                format!("out-edge of tasklet `{}` has no connector", t.label),
                            ),
                            Some(conn) if !t.code.iter().any(|(out, _)| out == conn) => self.push(
                                Severity::Warning,
                                DiagCode::BadConnector,
                                Some(state),
                                Some(id),
                                format!(
                                    "tasklet `{}` has no assignment for out connector `{conn}`",
                                    t.label
                                ),
                            ),
                            Some(_) => {}
                        }
                    }
                }
                DfNode::MapScope(m) => {
                    if m.params.len() != m.ranges.len() {
                        let loc = self.state_name(Some(state)).to_string();
                        self.push(
                            Severity::Error,
                            DiagCode::MapArity,
                            Some(state),
                            Some(id),
                            format!(
                                "map has {} parameters but {} ranges (state `{loc}`)",
                                m.params.len(),
                                m.ranges.len()
                            ),
                        );
                    }
                    for (i, p) in m.params.iter().enumerate() {
                        if m.params[..i].contains(p) {
                            self.push(
                                Severity::Error,
                                DiagCode::DuplicateParam,
                                Some(state),
                                Some(id),
                                format!("map declares parameter `{p}` twice"),
                            );
                        }
                        if self.known_syms.contains(p) || scope.contains(p) {
                            self.push(
                                Severity::Warning,
                                DiagCode::ShadowedName(p.clone()),
                                Some(state),
                                Some(id),
                                format!("map parameter `{p}` shadows an outer binding"),
                            );
                        }
                    }
                    for (s, e) in &m.ranges {
                        let scope_snapshot = scope.clone();
                        self.check_expr_syms(
                            s,
                            &scope_snapshot,
                            Some(state),
                            Some(id),
                            "map range",
                        );
                        self.check_expr_syms(
                            e,
                            &scope_snapshot,
                            Some(state),
                            Some(id),
                            "map range",
                        );
                    }
                    if !has_dangling_edges(&m.body) && m.body.topological_order().is_none() {
                        let loc = self.state_name(Some(state)).to_string();
                        self.push(
                            Severity::Error,
                            DiagCode::CyclicState(loc.clone()),
                            Some(state),
                            Some(id),
                            format!("map body dataflow graph is cyclic (state `{loc}`)"),
                        );
                    }
                    let depth = scope.len();
                    scope.extend(m.params.iter().cloned());
                    self.check_graph(&m.body, state, scope);
                    scope.truncate(depth);
                }
                DfNode::Library(_) => {}
            }
        }
        // Edges: endpoints, memlet data, subset shape.
        for e in &graph.edges {
            if e.src >= graph.nodes.len() || e.dst >= graph.nodes.len() {
                let loc = self.state_name(Some(state)).to_string();
                self.push(
                    Severity::Error,
                    DiagCode::DanglingEdge,
                    Some(state),
                    None,
                    format!(
                        "edge {} -> {} dangles: the graph has {} nodes (state `{loc}`)",
                        e.src,
                        e.dst,
                        graph.nodes.len()
                    ),
                );
                continue;
            }
            let array = &e.memlet.data;
            let Some(desc) = self.sdfg.arrays.get(array) else {
                let loc = self.state_name(Some(state)).to_string();
                self.push(
                    Severity::Error,
                    DiagCode::UnknownArray(array.clone()),
                    Some(state),
                    Some(e.src),
                    format!("memlet references undeclared array `{array}` (state `{loc}`)"),
                );
                continue;
            };
            for (node, end) in [(e.src, "source"), (e.dst, "destination")] {
                if let DfNode::Access(name) = &graph.nodes[node] {
                    if name != array {
                        self.push(
                            Severity::Warning,
                            DiagCode::DataMismatch,
                            Some(state),
                            Some(node),
                            format!("memlet moves `{array}` but its {end} access node is `{name}`"),
                        );
                    }
                }
            }
            let subset = &e.memlet.subset;
            if subset.is_all() {
                continue;
            }
            if subset.0.len() != desc.shape.len() {
                let loc = self.state_name(Some(state)).to_string();
                self.push(
                    Severity::Error,
                    DiagCode::RankMismatch,
                    Some(state),
                    Some(e.src),
                    format!(
                        "memlet `{}` has rank {} but `{array}` is declared with rank {} (state `{loc}`)",
                        e.memlet,
                        subset.0.len(),
                        desc.shape.len()
                    ),
                );
                continue;
            }
            let scope_snapshot = scope.clone();
            for (d, r) in subset.0.iter().enumerate() {
                match r {
                    IndexRange::Index(ix) => {
                        self.check_expr_syms(
                            ix,
                            &scope_snapshot,
                            Some(state),
                            Some(e.src),
                            "memlet subset",
                        );
                        self.check_const_bound(ix, &desc.shape[d], array, Some(state), Some(e.src));
                    }
                    IndexRange::Range { start, end } => {
                        for ix in [start, end] {
                            self.check_expr_syms(
                                ix,
                                &scope_snapshot,
                                Some(state),
                                Some(e.src),
                                "memlet subset",
                            );
                        }
                        // The runtime reads range dimensions at their start
                        // index, so only the start gets the hard bound check.
                        self.check_const_bound(
                            start,
                            &desc.shape[d],
                            array,
                            Some(state),
                            Some(e.src),
                        );
                    }
                }
            }
        }
    }
}

impl Sdfg {
    /// Validate structural invariants, returning every problem found.
    ///
    /// An empty result means the structure is sound; entries with
    /// [`Severity::Error`] make the SDFG unexecutable and are rejected by
    /// the runtime's `compile()`.  See the module docs for the severity
    /// policy and [`Sdfg::validate_strict`] for the legacy typed interface.
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut known_syms: BTreeSet<String> = self.symbols.iter().cloned().collect();
        known_syms.extend(self.cfg.loop_iterators());
        let mut v = Verifier {
            sdfg: self,
            known_syms,
            diags: Vec::new(),
        };
        v.check_cf(&self.cfg);
        for (name, desc) in &self.arrays {
            for dim in &desc.shape {
                for s in dim.free_symbols() {
                    if !v.known_syms.contains(&s) {
                        v.push(
                            Severity::Warning,
                            DiagCode::UnknownSymbol(s.clone()),
                            None,
                            None,
                            format!("shape of array `{name}` references undeclared symbol `{s}`"),
                        );
                    }
                }
            }
        }
        for (sid, st) in self.states.iter().enumerate() {
            // A dangling edge would make the topological sort index out of
            // bounds; it is reported per edge, and cyclicity is moot then.
            if !has_dangling_edges(&st.graph) && st.graph.topological_order().is_none() {
                v.push(
                    Severity::Error,
                    DiagCode::CyclicState(st.name.clone()),
                    Some(sid),
                    None,
                    format!("dataflow graph of state `{}` is cyclic", st.name),
                );
            }
            let mut scope = Vec::new();
            v.check_graph(&st.graph, sid, &mut scope);
        }
        v.diags
    }

    /// Validate and map the first error diagnostic onto the legacy typed
    /// [`SdfgError`].  Warnings never fail this check.
    pub fn validate_strict(&self) -> Result<(), SdfgError> {
        for d in self.validate() {
            if d.severity != Severity::Error {
                continue;
            }
            return Err(match d.code {
                DiagCode::UnknownState(id) => SdfgError::UnknownState(id),
                DiagCode::CyclicState(name) => SdfgError::CyclicState(name),
                DiagCode::UnknownArray(name) => SdfgError::UnknownArray(name),
                _ => SdfgError::Invalid(d.message),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DataflowGraph;
    use crate::memlet::{Memlet, Subset};
    use crate::scalar_expr::ScalarExpr;
    use crate::sdfg::{ArrayDesc, State};
    use crate::tasklet::Tasklet;

    fn one_state(graph: DataflowGraph) -> (Sdfg, usize) {
        let mut s = Sdfg::new("p");
        let id = s.add_state(State {
            name: "s0".into(),
            graph,
        });
        s.cfg = ControlFlow::State(id);
        (s, id)
    }

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn dangling_edge_is_an_error() {
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        g.add_edge(a, None, 7, None, Memlet::all("A"));
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        let diags = s.validate();
        assert!(errors(&diags)
            .iter()
            .any(|d| matches!(d.code, DiagCode::DanglingEdge)));
    }

    #[test]
    fn rank_mismatch_is_an_error() {
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        g.add_edge(
            a,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::int(0), SymExpr::int(0)]),
        );
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        let diags = s.validate();
        assert!(errors(&diags)
            .iter()
            .any(|d| matches!(d.code, DiagCode::RankMismatch)));
    }

    #[test]
    fn constant_index_out_of_bounds_is_an_error() {
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        g.add_edge(
            a,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::int(9)]),
        );
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        let diags = s.validate();
        assert!(errors(&diags)
            .iter()
            .any(|d| matches!(d.code, DiagCode::IndexOutOfBounds)));
        // A symbolic shape cannot be bounds-checked statically.
        let mut g = DataflowGraph::new();
        let a = g.add_access("B");
        let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        g.add_edge(
            a,
            None,
            t,
            Some("x"),
            Memlet::element("B", vec![SymExpr::int(9)]),
        );
        let (mut s, _) = one_state(g);
        s.symbols.push("N".into());
        s.add_array("B", ArrayDesc::input(vec![SymExpr::sym("N")]))
            .unwrap();
        assert!(errors(&s.validate()).is_empty());
    }

    #[test]
    fn map_arity_and_duplicate_params_are_errors() {
        let mut body = DataflowGraph::new();
        body.add_access("A");
        let mut g = DataflowGraph::new();
        g.add_map(crate::graph::MapScope {
            params: vec!["i".into(), "i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::int(4))],
            body,
            parallel: true,
        });
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        let diags = s.validate();
        let errs = errors(&diags);
        assert!(errs.iter().any(|d| matches!(d.code, DiagCode::MapArity)));
        assert!(errs
            .iter()
            .any(|d| matches!(d.code, DiagCode::DuplicateParam)));
    }

    #[test]
    fn undeclared_subset_symbol_is_a_warning() {
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        g.add_edge(
            a,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::sym("mystery")]),
        );
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        let diags = s.validate();
        assert!(errors(&diags).is_empty());
        assert!(diags
            .iter()
            .any(|d| matches!(&d.code, DiagCode::UnknownSymbol(n) if n == "mystery")));
    }

    #[test]
    fn map_params_are_in_scope_inside_the_body() {
        let mut body = DataflowGraph::new();
        let a = body.add_access("A");
        let t = body.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        body.add_edge(
            a,
            None,
            t,
            Some("x"),
            Memlet::element("A", vec![SymExpr::sym("i")]),
        );
        let mut g = DataflowGraph::new();
        g.add_map(crate::graph::MapScope {
            params: vec!["i".into()],
            ranges: vec![(SymExpr::int(0), SymExpr::int(4))],
            body,
            parallel: true,
        });
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        assert!(s.validate().is_empty());
    }

    /// Range dimensions are read at their start index, so the start gets
    /// the constant bound check.
    #[test]
    fn subset_of_ranges_is_validated() {
        let mut g = DataflowGraph::new();
        let a = g.add_access("A");
        let t = g.add_tasklet(Tasklet::new("t", "o", ScalarExpr::input("x")));
        g.add_edge(
            a,
            None,
            t,
            Some("x"),
            Memlet {
                data: "A".into(),
                subset: Subset(vec![IndexRange::range(SymExpr::int(9), SymExpr::int(10))]),
                wcr: None,
            },
        );
        let (mut s, _) = one_state(g);
        s.add_array("A", ArrayDesc::input(vec![SymExpr::int(4)]))
            .unwrap();
        assert!(errors(&s.validate())
            .iter()
            .any(|d| matches!(d.code, DiagCode::IndexOutOfBounds)));
    }
}
