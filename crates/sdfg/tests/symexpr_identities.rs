//! Simplification identities for the symbolic expression engine.
//!
//! Loop bounds, memlet subsets and tape-size expressions all flow through
//! `SymExpr::simplified`; a wrong rewrite here silently corrupts the reverse
//! pass's iteration spaces, so the algebraic identities are pinned as tests.

use std::collections::HashMap;

use dace_sdfg::SymExpr;

fn n() -> SymExpr {
    SymExpr::sym("N")
}

fn int(v: i64) -> SymExpr {
    SymExpr::int(v)
}

#[test]
fn additive_and_multiplicative_identities() {
    assert_eq!(n().add(&int(0)), n());
    assert_eq!(int(0).add(&n()), n());
    assert_eq!(n().sub(&int(0)), n());
    assert_eq!(n().mul(&int(1)), n());
    assert_eq!(int(1).mul(&n()), n());
    assert_eq!(n().mul(&int(0)), int(0));
    assert_eq!(int(0).mul(&n()), int(0));
}

#[test]
fn constant_folding() {
    assert_eq!(int(2).add(&int(3)), int(5));
    assert_eq!(int(2).sub(&int(3)), int(-1));
    assert_eq!(int(4).mul(&int(-6)), int(-24));
    assert!(!n().add_int(2).is_const(0));
    assert_eq!(int(7).add_int(-7), int(0));
}

#[test]
fn self_cancellation() {
    // N - N simplifies to 0 (used when a reversed range collapses).
    assert_eq!(n().sub(&n()), int(0));
}

#[test]
fn min_max_folding_on_constants() {
    let min = SymExpr::Min(Box::new(int(3)), Box::new(int(8))).simplified();
    let max = SymExpr::Max(Box::new(int(3)), Box::new(int(8))).simplified();
    assert_eq!(min, int(3));
    assert_eq!(max, int(8));
}

#[test]
fn neg_folding() {
    let e = SymExpr::Neg(Box::new(int(5))).simplified();
    assert_eq!(e, int(-5));
    let nn = SymExpr::Neg(Box::new(SymExpr::Neg(Box::new(n())))).simplified();
    assert_eq!(nn, n());
}

#[test]
fn simplification_preserves_value_on_nested_expression() {
    // ((N + 0) * 1 - (N - N)) * (2 + 3) evaluated at several bindings.
    let e = n()
        .add(&int(0))
        .mul(&int(1))
        .sub(&n().sub(&n()))
        .mul(&int(2).add(&int(3)));
    for v in [-3i64, 0, 1, 17] {
        let mut b = HashMap::new();
        b.insert("N".to_string(), v);
        assert_eq!(e.eval(&b).unwrap(), 5 * v);
        assert_eq!(e.simplified().eval(&b).unwrap(), 5 * v);
    }
}

#[test]
fn substitution_composes_with_simplification() {
    // (N - 1) with N := M + 1 must simplify to M.
    let e = n()
        .sub(&int(1))
        .substitute("N", &SymExpr::sym("M").add(&int(1)));
    let mut b = HashMap::new();
    b.insert("M".to_string(), 9);
    assert_eq!(e.eval(&b).unwrap(), 9);
    assert_eq!(e.simplified().free_symbols().len(), 1);
}

#[test]
fn free_symbols_and_references() {
    let e = n().add(&SymExpr::sym("M")).mul(&n());
    let syms = e.free_symbols();
    assert_eq!(syms.len(), 2);
    assert!(e.references("N") && e.references("M"));
    assert!(!e.references("K"));
    assert!(int(4).free_symbols().is_empty());
}

#[test]
fn floor_division_and_remainder_follow_python_semantics() {
    // The SDFG symbol language uses floor division (like Python), not
    // truncation: -7 // 3 == -3 and -7 % 3 == 2.
    let div = SymExpr::Div(Box::new(int(-7)), Box::new(int(3))).simplified();
    let rem = SymExpr::Rem(Box::new(int(-7)), Box::new(int(3))).simplified();
    assert_eq!(div.eval_const().unwrap(), -3);
    assert_eq!(rem.eval_const().unwrap(), 2);
    // Division by zero must surface as an error, not fold away.
    let bad = SymExpr::Div(Box::new(n()), Box::new(int(0)));
    let mut b = HashMap::new();
    b.insert("N".to_string(), 1);
    assert!(bad.eval(&b).is_err());
}
