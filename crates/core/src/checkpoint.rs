//! ILP-based automatic checkpointing (Section IV of the paper).
//!
//! Candidates are forwarded containers: transients produced in straight-line
//! code whose values the backward pass reads directly.  *Storing* a candidate
//! means keeping it alive from the forward pass into the backward pass;
//! *recomputing* it means freeing it after its last forward use and cloning
//! its producer slice into the backward pass right before its first backward
//! use (with versioned temporaries for dependencies that were overwritten in
//! the meantime).
//!
//! The store/recompute decision is a binary variable per candidate.  The
//! memory-measurement sequence models the peak footprint of the combined
//! forward+backward timeline as a linear function of those variables; every
//! sequence entry must stay below the user limit, and the objective minimises
//! the recomputation FLOP cost — exactly the formulation of Section IV-A.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use dace_ilp::{IlpProblem, IlpStatus};
use dace_sdfg::{ControlFlow, DataflowGraph, DfNode, Sdfg, State};

use crate::reverse::{AdError, BackwardPlan};
use crate::CheckpointStrategy;

/// A store/recompute candidate discovered during reversal.
#[derive(Clone, Debug, PartialEq)]
pub struct RecomputeCandidate {
    /// The transient container name.
    pub array: String,
    /// Forward-order position of the state producing it (diagnostics).
    pub producer_pos: usize,
}

/// Cost model entry for one candidate (the `S_i`, `R_i`, `c_i` of §IV-A).
#[derive(Clone, Debug)]
pub struct CandidateCost {
    /// Container name.
    pub array: String,
    /// Size in bytes (`S_i`).
    pub size_bytes: usize,
    /// Estimated FLOPs to recompute it (`c_i`).
    pub recompute_flops: f64,
    /// Peak extra bytes of versioned temporaries during recomputation (`R_i`).
    pub recompute_overhead_bytes: usize,
    /// Whether a recomputation slice could be constructed.
    pub recomputable: bool,
}

/// Result of the checkpointing pass.
#[derive(Clone, Debug, Default)]
pub struct CheckpointReport {
    /// Cost model per candidate.
    pub costs: Vec<CandidateCost>,
    /// Containers chosen to be stored.
    pub stored: Vec<String>,
    /// Containers chosen to be recomputed.
    pub recomputed: Vec<String>,
    /// The memory limit, if one was given.
    pub memory_limit_bytes: Option<usize>,
    /// Peak bytes predicted by the memory-measurement sequence for the chosen
    /// configuration.
    pub predicted_peak_bytes: usize,
    /// Branch-and-bound nodes explored by the ILP solver.
    pub solver_nodes: usize,
    /// Wall-clock time of the ILP solve.
    pub solve_time: Duration,
    /// Whether the ILP found a feasible configuration (false means the limit
    /// cannot be met even with all candidates recomputed; the cheapest
    /// configuration is applied instead).
    pub feasible: bool,
}

/// A fully analysed candidate, including the recomputation slice.
struct AnalyzedCandidate {
    array: String,
    size_bytes: usize,
    flops: f64,
    overhead_bytes: usize,
    /// States (already added to the plan SDFG) forming the recompute slice.
    slice_states: Vec<usize>,
    /// Versioned temporaries used by the slice (freed after the recompute).
    temporaries: Vec<String>,
    /// Top-level item index of the producer in the forward half.
    producer_item: usize,
    /// Top-level item index of the last forward reader.
    last_forward_reader: usize,
    /// Top-level item index of the first backward reader.
    first_backward_reader: usize,
    /// Top-level item index of the last backward reader.
    last_backward_reader: usize,
    recomputable: bool,
}

/// Apply a checkpointing strategy to a plan, mutating its SDFG (recompute
/// blocks, free hints) and returning the report.
pub fn apply_strategy(
    plan: &mut BackwardPlan,
    strategy: &CheckpointStrategy,
    symbols: &HashMap<String, i64>,
) -> Result<CheckpointReport, AdError> {
    let mut report = CheckpointReport::default();
    if plan.candidates.is_empty() || matches!(strategy, CheckpointStrategy::StoreAll) {
        report.stored = plan.candidates.iter().map(|c| c.array.clone()).collect();
        report.feasible = true;
        for c in &plan.candidates {
            report.costs.push(CandidateCost {
                array: c.array.clone(),
                size_bytes: array_bytes(&plan.sdfg, &c.array, symbols),
                recompute_flops: 0.0,
                recompute_overhead_bytes: 0,
                recomputable: false,
            });
        }
        apply_liveness_hints(plan);
        report.predicted_peak_bytes = predict_peak_store_all(plan, symbols);
        return Ok(report);
    }

    // Analyse every candidate.
    let mut analyzed: Vec<AnalyzedCandidate> = Vec::new();
    let candidates = plan.candidates.clone();
    for cand in &candidates {
        if let Some(a) = analyze_candidate(plan, &cand.array, symbols)? {
            analyzed.push(a);
        }
    }

    // Decide which to store.
    let store_set: BTreeSet<String> = match strategy {
        CheckpointStrategy::StoreAll => unreachable!(),
        CheckpointStrategy::RecomputeAll => analyzed
            .iter()
            .filter(|a| !a.recomputable)
            .map(|a| a.array.clone())
            .collect(),
        CheckpointStrategy::Manual { store } => {
            let explicit: BTreeSet<String> = store.iter().cloned().collect();
            analyzed
                .iter()
                .filter(|a| explicit.contains(&a.array) || !a.recomputable)
                .map(|a| a.array.clone())
                .collect()
        }
        CheckpointStrategy::Ilp { memory_limit_bytes } => {
            report.memory_limit_bytes = Some(*memory_limit_bytes);
            let start = Instant::now();
            let (set, nodes, feasible) = solve_ilp(plan, &analyzed, *memory_limit_bytes, symbols);
            report.solve_time = start.elapsed();
            report.solver_nodes = nodes;
            report.feasible = feasible;
            set
        }
    };
    if !matches!(strategy, CheckpointStrategy::Ilp { .. }) {
        report.feasible = true;
    }

    // Record the cost model.
    for a in &analyzed {
        report.costs.push(CandidateCost {
            array: a.array.clone(),
            size_bytes: a.size_bytes,
            recompute_flops: a.flops,
            recompute_overhead_bytes: a.overhead_bytes,
            recomputable: a.recomputable,
        });
    }

    // Apply the decisions to the plan.
    let decisions: Vec<(bool, &AnalyzedCandidate)> = analyzed
        .iter()
        .map(|a| (store_set.contains(&a.array), a))
        .collect();
    report.predicted_peak_bytes = predict_peak(plan, &decisions, symbols);

    // Insertions must be applied back-to-front so indices stay valid.
    let ControlFlow::Sequence(ref mut top) = plan.sdfg.cfg else {
        return Err(AdError::Malformed(
            "gradient SDFG has no top-level sequence".into(),
        ));
    };
    let mut insertions: Vec<(usize, Vec<ControlFlow>, &AnalyzedCandidate)> = Vec::new();
    for (stored, a) in &decisions {
        if *stored || !a.recomputable {
            report.stored.push(a.array.clone());
            continue;
        }
        report.recomputed.push(a.array.clone());
        plan.recomputed.push(a.array.clone());
        // Free after the last forward reader.
        if let Some(sid) = last_state_of(&top[a.last_forward_reader]) {
            plan.free_hints
                .entry(sid)
                .or_default()
                .push(a.array.clone());
        }
        // Free the candidate and its temporaries after the last backward reader.
        if let Some(sid) = last_state_of(&top[a.last_backward_reader]) {
            let entry = plan.free_hints.entry(sid).or_default();
            entry.push(a.array.clone());
            entry.extend(a.temporaries.clone());
        }
        insertions.push((
            a.first_backward_reader,
            a.slice_states
                .iter()
                .map(|&sid| ControlFlow::State(sid))
                .collect(),
            a,
        ));
    }
    insertions.sort_by_key(|(idx, _, _)| std::cmp::Reverse(*idx));
    for (idx, states, _) in insertions {
        for (offset, st) in states.into_iter().enumerate() {
            top.insert(idx + offset, st);
        }
    }

    apply_liveness_hints(plan);
    Ok(report)
}

// ---------------------------------------------------------------------------
// candidate analysis
// ---------------------------------------------------------------------------

fn array_bytes(sdfg: &Sdfg, array: &str, symbols: &HashMap<String, i64>) -> usize {
    sdfg.arrays
        .get(array)
        .and_then(|d| d.size_bytes(symbols).ok())
        .unwrap_or(0)
        .max(0) as usize
}

/// Indices of top-level items that read / write a given array.
fn item_accesses(top: &[ControlFlow], sdfg: &Sdfg, array: &str) -> (Vec<usize>, Vec<usize>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for (i, item) in top.iter().enumerate() {
        let mut r = false;
        let mut w = false;
        for sid in item.states_in_order() {
            let g = &sdfg.states[sid].graph;
            if g.reads().contains_key(array) {
                r = true;
            }
            if g.writes().contains_key(array) {
                w = true;
            }
        }
        if r {
            reads.push(i);
        }
        if w {
            writes.push(i);
        }
    }
    (reads, writes)
}

fn last_state_of(cf: &ControlFlow) -> Option<usize> {
    cf.states_in_order().last().copied()
}

/// True if a top-level item consists only of plain states (no loops or
/// branches) — the precondition for recompute-slice construction.
fn is_straight_line(cf: &ControlFlow) -> bool {
    match cf {
        ControlFlow::State(_) => true,
        ControlFlow::Sequence(children) => children.iter().all(is_straight_line),
        _ => false,
    }
}

fn analyze_candidate(
    plan: &mut BackwardPlan,
    array: &str,
    symbols: &HashMap<String, i64>,
) -> Result<Option<AnalyzedCandidate>, AdError> {
    let ControlFlow::Sequence(top) = plan.sdfg.cfg.clone() else {
        return Err(AdError::Malformed(
            "gradient SDFG has no top-level sequence".into(),
        ));
    };
    let fwd_half = &top[..plan.backward_start_index];
    let (fwd_reads, fwd_writes) = item_accesses(fwd_half, &plan.sdfg, array);
    let (all_reads, _) = item_accesses(&top, &plan.sdfg, array);
    let bwd_reads: Vec<usize> = all_reads
        .iter()
        .copied()
        .filter(|&i| i > plan.backward_start_index)
        .collect();
    if fwd_writes.len() != 1 || bwd_reads.is_empty() {
        return Ok(None);
    }
    let producer_item = fwd_writes[0];
    let last_forward_reader = fwd_reads.last().copied().unwrap_or(producer_item);
    let size_bytes = array_bytes(&plan.sdfg, array, symbols);

    // Build the recomputation slice (if the producer region is straight-line).
    let straight_line = fwd_half[..=producer_item].iter().all(is_straight_line);
    let (slice_states, temporaries, flops, overhead_bytes) = if straight_line {
        build_recompute_slice(plan, fwd_half, array, producer_item, symbols)?
    } else {
        (Vec::new(), Vec::new(), 0.0, 0)
    };
    // An empty slice means the producer chain could not be reconstructed
    // from live program inputs — the candidate must always be stored.
    let recomputable = straight_line && !slice_states.is_empty();

    Ok(Some(AnalyzedCandidate {
        array: array.to_string(),
        size_bytes,
        flops,
        overhead_bytes,
        slice_states,
        temporaries,
        producer_item,
        last_forward_reader,
        first_backward_reader: bwd_reads[0],
        last_backward_reader: *bwd_reads.last().unwrap(),
        recomputable,
    }))
}

/// Construct the recomputation slice for `array`.
///
/// The model follows Section IV-A of the paper: the candidate is recomputed
/// *from the program inputs*, re-running its transitive producer chain.
/// Every transient intermediate along the chain is materialised into a fresh
/// `rc_*` temporary (their combined size is the recomputation memory
/// overhead `R_i`), and the summed FLOP estimate of the chain is the
/// recomputation cost `c_i`.  The chain must be straight-line, each array in
/// it written exactly once, and all non-transient dependencies must never be
/// overwritten — otherwise the candidate is reported as non-recomputable and
/// is always stored.
///
/// Returns (new state ids in program order, temporary containers, FLOPs,
/// peak temporary bytes).
fn build_recompute_slice(
    plan: &mut BackwardPlan,
    fwd_half: &[ControlFlow],
    target: &str,
    _producer_item: usize,
    symbols: &HashMap<String, i64>,
) -> Result<(Vec<usize>, Vec<String>, f64, usize), AdError> {
    // Straight-line view: one (item index, state id) per plain state.
    let mut line: Vec<(usize, usize)> = Vec::new();
    for (i, item) in fwd_half.iter().enumerate() {
        if !is_straight_line(item) {
            continue;
        }
        for sid in item.states_in_order() {
            line.push((i, sid));
        }
    }
    // writer positions (in `line`) per array.
    let mut writers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (k, (_, sid)) in line.iter().enumerate() {
        for a in plan.sdfg.states[*sid].graph.writes().into_keys() {
            writers.entry(a).or_default().push(k);
        }
    }

    // Transitive producer closure over transient arrays.
    let mut needed: BTreeSet<String> = BTreeSet::new();
    let mut work: Vec<String> = vec![target.to_string()];
    while let Some(array) = work.pop() {
        if !needed.insert(array.clone()) {
            continue;
        }
        let w = writers.get(&array).cloned().unwrap_or_default();
        if w.len() != 1 {
            return Ok((Vec::new(), Vec::new(), 0.0, 0));
        }
        let (_, sid) = line[w[0]];
        for dep in plan.sdfg.states[sid].graph.reads().into_keys() {
            let dep_transient = plan
                .sdfg
                .arrays
                .get(&dep)
                .map(|d| d.transient)
                .unwrap_or(false);
            let dep_writes = writers.get(&dep).map(|v| v.len()).unwrap_or(0);
            if dep_transient {
                work.push(dep);
            } else if dep_writes > 0 {
                // A program input that the forward pass overwrites cannot be
                // used to recompute anything.
                return Ok((Vec::new(), Vec::new(), 0.0, 0));
            }
        }
    }

    // Emit the slice states in original program order, renaming every
    // transient intermediate except the target itself.
    let mut ordered: Vec<(usize, String)> =
        needed.iter().map(|a| (writers[a][0], a.clone())).collect();
    ordered.sort_by_key(|(k, _)| *k);

    let mut rename_map: BTreeMap<String, String> = BTreeMap::new();
    let mut temporaries: Vec<String> = Vec::new();
    let mut overhead_bytes = 0usize;
    for (_, array) in &ordered {
        if array == target {
            continue;
        }
        let tmp = plan.sdfg.fresh_name(&format!("rc_{array}"));
        let desc = plan.sdfg.arrays[array].clone();
        plan.sdfg
            .add_array(tmp.clone(), dace_sdfg::ArrayDesc::transient(desc.shape))
            .map_err(|e| AdError::Malformed(e.to_string()))?;
        overhead_bytes += array_bytes(&plan.sdfg, &tmp, symbols);
        temporaries.push(tmp.clone());
        rename_map.insert(array.clone(), tmp);
    }

    let mut slice_states = Vec::new();
    let mut flops = 0.0;
    for (k, array) in ordered {
        let (_, sid) = line[k];
        let mut graph = plan.sdfg.states[sid].graph.clone();
        rename_arrays(&mut graph, &rename_map);
        flops += graph.flop_estimate(symbols);
        let new_id = plan.sdfg.add_state(State {
            name: format!("recompute_{array}"),
            graph,
        });
        slice_states.push(new_id);
    }
    Ok((slice_states, temporaries, flops, overhead_bytes))
}

/// Rename array references (access nodes and memlets) in a dataflow graph.
fn rename_arrays(graph: &mut DataflowGraph, renames: &BTreeMap<String, String>) {
    if renames.is_empty() {
        return;
    }
    for node in &mut graph.nodes {
        match node {
            DfNode::Access(name) => {
                if let Some(new) = renames.get(name) {
                    *name = new.clone();
                }
            }
            DfNode::MapScope(m) => rename_arrays(&mut m.body, renames),
            _ => {}
        }
    }
    for edge in &mut graph.edges {
        if let Some(new) = renames.get(&edge.memlet.data) {
            edge.memlet.data = new.clone();
        }
    }
}

// ---------------------------------------------------------------------------
// memory-measurement sequence and ILP
// ---------------------------------------------------------------------------

/// Alive-interval model of one container over the top-level timeline.
struct Interval {
    start: usize,
    end: usize,
    bytes: usize,
}

fn baseline_intervals(
    plan: &BackwardPlan,
    symbols: &HashMap<String, i64>,
    skip: &BTreeSet<String>,
) -> Vec<Interval> {
    let ControlFlow::Sequence(top) = &plan.sdfg.cfg else {
        return Vec::new();
    };
    let horizon = top.len();
    let mut out = Vec::new();
    for (name, desc) in &plan.sdfg.arrays {
        if skip.contains(name) {
            continue;
        }
        let bytes = desc.size_bytes(symbols).unwrap_or(0).max(0) as usize;
        if bytes == 0 {
            continue;
        }
        if !desc.transient {
            out.push(Interval {
                start: 0,
                end: horizon,
                bytes,
            });
        } else {
            // Transients live from their first write to their last reference
            // (the liveness pass frees them there).
            let (reads, writes) = item_accesses(top, &plan.sdfg, name);
            if let Some(&first) = writes.first() {
                let last = reads
                    .last()
                    .copied()
                    .unwrap_or(first)
                    .max(writes.last().copied().unwrap_or(first));
                out.push(Interval {
                    start: first,
                    end: last,
                    bytes,
                });
            }
        }
    }
    out
}

/// Free every transient container after the last top-level item that
/// references it, provided that item is straight-line (freeing inside loops
/// would discard values still needed by later iterations).  This mirrors the
/// scoped deallocation DaCe's generated code performs and is what makes the
/// measured peak memory reflect store/recompute decisions (Fig. 13).
pub fn apply_liveness_hints(plan: &mut BackwardPlan) {
    let ControlFlow::Sequence(top) = plan.sdfg.cfg.clone() else {
        return;
    };
    let names: Vec<String> = plan
        .sdfg
        .arrays
        .iter()
        .filter(|(_, d)| d.transient)
        .map(|(n, _)| n.clone())
        .collect();
    for name in names {
        let (reads, writes) = item_accesses(&top, &plan.sdfg, &name);
        let last = reads
            .last()
            .copied()
            .unwrap_or(0)
            .max(writes.last().copied().unwrap_or(0));
        if reads.is_empty() && writes.is_empty() {
            continue;
        }
        if !is_straight_line(&top[last]) {
            continue;
        }
        if let Some(sid) = last_state_of(&top[last]) {
            let entry = plan.free_hints.entry(sid).or_default();
            if !entry.contains(&name) {
                entry.push(name);
            }
        }
    }
}

fn predict_peak_store_all(plan: &BackwardPlan, symbols: &HashMap<String, i64>) -> usize {
    let decisions: Vec<(bool, &AnalyzedCandidate)> = Vec::new();
    predict_peak(plan, &decisions, symbols)
}

fn predict_peak(
    plan: &BackwardPlan,
    decisions: &[(bool, &AnalyzedCandidate)],
    symbols: &HashMap<String, i64>,
) -> usize {
    let ControlFlow::Sequence(top) = &plan.sdfg.cfg else {
        return 0;
    };
    let horizon = top.len();
    let _ = horizon;
    let skip: BTreeSet<String> = decisions.iter().map(|(_, a)| a.array.clone()).collect();
    let mut intervals = baseline_intervals(plan, symbols, &skip);
    for (stored, a) in decisions {
        if *stored || !a.recomputable {
            intervals.push(Interval {
                start: a.producer_item,
                end: a.last_backward_reader,
                bytes: a.size_bytes,
            });
        } else {
            intervals.push(Interval {
                start: a.producer_item,
                end: a.last_forward_reader,
                bytes: a.size_bytes,
            });
            intervals.push(Interval {
                start: a.first_backward_reader,
                end: a.last_backward_reader,
                bytes: a.size_bytes + a.overhead_bytes,
            });
        }
    }
    let mut peak = 0usize;
    let horizon_t = match &plan.sdfg.cfg {
        ControlFlow::Sequence(v) => v.len(),
        _ => 0,
    };
    for t in 0..=horizon_t {
        let total: usize = intervals
            .iter()
            .filter(|iv| iv.start <= t && t <= iv.end)
            .map(|iv| iv.bytes)
            .sum();
        peak = peak.max(total);
    }
    peak
}

/// Build and solve the ILP of Section IV; returns the set of candidates to
/// store, the solver node count and whether the limit was met.
fn solve_ilp(
    plan: &BackwardPlan,
    analyzed: &[AnalyzedCandidate],
    memory_limit_bytes: usize,
    symbols: &HashMap<String, i64>,
) -> (BTreeSet<String>, usize, bool) {
    let ControlFlow::Sequence(top) = &plan.sdfg.cfg else {
        return (BTreeSet::new(), 0, false);
    };
    let horizon = top.len();
    let skip: BTreeSet<String> = analyzed.iter().map(|a| a.array.clone()).collect();
    let intervals = baseline_intervals(plan, symbols, &skip);

    let n = analyzed.len();
    let mut ilp = IlpProblem::binary(n);
    // Objective: minimise recomputation cost = sum c_i (1 - v_i)  <=> minimise -c_i v_i.
    for (i, a) in analyzed.iter().enumerate() {
        let cost = if a.recomputable {
            a.flops.max(1.0)
        } else {
            1e15
        };
        ilp.set_objective(i, -cost);
    }
    // One constraint per timeline position (memory-measurement sequence).
    for t in 0..=horizon {
        let base: f64 = intervals
            .iter()
            .filter(|iv| iv.start <= t && t <= iv.end)
            .map(|iv| iv.bytes as f64)
            .sum();
        let mut row = vec![0.0; n];
        let mut constant = base;
        for (i, a) in analyzed.iter().enumerate() {
            // store contribution: S_i * v_i over [producer, last backward read]
            let store_alive = a.producer_item <= t && t <= a.last_backward_reader;
            // recompute contribution: S_i over [producer, last_fwd_read] and
            // (S_i + R_i) over [first_bwd_read, last_bwd_read], times (1 - v_i)
            let rec_alive_fwd = a.producer_item <= t && t <= a.last_forward_reader;
            let rec_alive_bwd = a.first_backward_reader <= t && t <= a.last_backward_reader;
            let s = a.size_bytes as f64;
            let r = a.overhead_bytes as f64;
            let store_term = if store_alive { s } else { 0.0 };
            let rec_term =
                if rec_alive_fwd { s } else { 0.0 } + if rec_alive_bwd { s + r } else { 0.0 };
            // m_t += store_term * v_i + rec_term * (1 - v_i)
            constant += rec_term;
            row[i] += store_term - rec_term;
        }
        ilp.add_le_constraint(row, memory_limit_bytes as f64 - constant);
    }
    let sol = ilp.solve();
    if sol.status != IlpStatus::Optimal {
        // Infeasible even with maximal recomputation: recompute everything
        // recomputable (cheapest-memory configuration).
        let stored = analyzed
            .iter()
            .filter(|a| !a.recomputable)
            .map(|a| a.array.clone())
            .collect();
        return (stored, sol.nodes_explored, false);
    }
    let mut stored = BTreeSet::new();
    for (i, a) in analyzed.iter().enumerate() {
        if sol.values[i] > 0.5 || !a.recomputable {
            stored.insert(a.array.clone());
        }
    }
    (stored, sol.nodes_explored, true)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::reverse::generate_backward;
    use dace_frontend::{ArrayExpr, ProgramBuilder};

    /// The motivating example of Listing 1: three sin() sites whose inputs
    /// A0/A1/A2 must be forwarded; the two scalings of D are materialised as
    /// the transients D1 and D2 (an SSA rendering of the in-place updates,
    /// preserving the paper's S/R/c cost structure — see EXPERIMENTS.md).
    pub(crate) fn listing1() -> dace_sdfg::Sdfg {
        let mut b = ProgramBuilder::new("listing1");
        let n = b.symbol("N");
        b.add_input("C", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("D", vec![n.clone(), n.clone()]).unwrap();
        for t in ["A0", "A1", "A2", "sin0", "sin1", "sin2", "D1", "D2", "tmp"] {
            b.add_transient(t, vec![n.clone(), n.clone()]).unwrap();
        }
        b.add_scalar("OUT").unwrap();
        b.assign("A0", ArrayExpr::a("C").mul(ArrayExpr::a("D")));
        b.assign("sin0", ArrayExpr::a("A0").sin());
        b.assign("D1", ArrayExpr::a("D").mul(ArrayExpr::s(6.0)));
        b.assign("A1", ArrayExpr::a("C").mul(ArrayExpr::a("D1")));
        b.assign("sin1", ArrayExpr::a("A1").sin());
        b.assign("D2", ArrayExpr::a("D1").mul(ArrayExpr::s(3.0)));
        b.assign("A2", ArrayExpr::a("C").mul(ArrayExpr::a("D2")));
        b.assign("sin2", ArrayExpr::a("A2").sin());
        b.assign(
            "tmp",
            ArrayExpr::a("sin0")
                .add(ArrayExpr::a("sin1"))
                .add(ArrayExpr::a("sin2")),
        );
        b.sum_into("OUT", "tmp", false);
        b.build().unwrap()
    }

    fn symbols(n: i64) -> HashMap<String, i64> {
        let mut m = HashMap::new();
        m.insert("N".to_string(), n);
        m
    }

    #[test]
    fn listing1_has_three_sin_candidates() {
        let fwd = listing1();
        let plan = generate_backward(&fwd, "OUT", &["C", "D"]).unwrap();
        for a in ["A0", "A1", "A2"] {
            assert!(
                plan.candidates.iter().any(|c| c.array == a),
                "{a} should be a store/recompute candidate"
            );
        }
    }

    #[test]
    fn recompute_all_builds_slices_and_hints() {
        let fwd = listing1();
        let mut plan = generate_backward(&fwd, "OUT", &["C", "D"]).unwrap();
        let report =
            apply_strategy(&mut plan, &CheckpointStrategy::RecomputeAll, &symbols(8)).unwrap();
        assert!(report.recomputed.contains(&"A0".to_string()));
        assert!(report.recomputed.contains(&"A2".to_string()));
        assert!(!plan.free_hints.is_empty());
        plan.sdfg.validate_strict().unwrap();
        // Recomputing A2 costs more than recomputing A0 (longer dependency chain).
        let c0 = report.costs.iter().find(|c| c.array == "A0").unwrap();
        let c2 = report.costs.iter().find(|c| c.array == "A2").unwrap();
        assert!(c2.recompute_flops > c0.recompute_flops);
        assert!(c2.recompute_overhead_bytes > c0.recompute_overhead_bytes);
    }

    #[test]
    fn ilp_prefers_storing_under_loose_limit() {
        let fwd = listing1();
        let mut plan = generate_backward(&fwd, "OUT", &["C", "D"]).unwrap();
        let report = apply_strategy(
            &mut plan,
            &CheckpointStrategy::Ilp {
                memory_limit_bytes: usize::MAX / 2,
            },
            &symbols(8),
        )
        .unwrap();
        assert!(report.feasible);
        for a in ["A0", "A1", "A2"] {
            assert!(
                report.stored.contains(&a.to_string()),
                "{a} should be stored"
            );
        }
    }

    #[test]
    fn ilp_recomputes_cheapest_under_tight_limit() {
        let fwd = listing1();
        // First measure the store-all predicted peak, then set the limit just
        // below it so at least one candidate must be recomputed.
        let mut probe = generate_backward(&fwd, "OUT", &["C", "D"]).unwrap();
        let store_all =
            apply_strategy(&mut probe, &CheckpointStrategy::StoreAll, &symbols(16)).unwrap();
        let one_array = array_bytes(&probe.sdfg, "A0", &symbols(16));
        let limit = store_all.predicted_peak_bytes - one_array / 2;

        let mut plan = generate_backward(&fwd, "OUT", &["C", "D"]).unwrap();
        let report = apply_strategy(
            &mut plan,
            &CheckpointStrategy::Ilp {
                memory_limit_bytes: limit,
            },
            &symbols(16),
        )
        .unwrap();
        assert!(report.feasible, "the limit admits recomputing one array");
        assert!(!report.recomputed.is_empty());
        // The ILP must not pick the most expensive candidate (A2, whose slice
        // re-runs the whole chain) when cheaper ones satisfy the limit (§IV-A).
        assert!(
            !report.recomputed.contains(&"A2".to_string()),
            "A2 is the most expensive recomputation and should stay stored, got {:?}",
            report.recomputed
        );
        assert!(report.predicted_peak_bytes <= limit);
        // The recomputation cost model follows the paper's chain structure.
        let c0 = report.costs.iter().find(|c| c.array == "A0").unwrap();
        let c1 = report.costs.iter().find(|c| c.array == "A1").unwrap();
        let c2 = report.costs.iter().find(|c| c.array == "A2").unwrap();
        assert!(c1.recompute_flops > c0.recompute_flops);
        assert!(c2.recompute_flops > c1.recompute_flops);
        assert_eq!(c0.recompute_overhead_bytes, 0);
        assert!(c1.recompute_overhead_bytes > 0);
        assert!(c2.recompute_overhead_bytes > c1.recompute_overhead_bytes);
    }

    #[test]
    fn manual_strategy_respects_choice() {
        let fwd = listing1();
        let mut plan = generate_backward(&fwd, "OUT", &["C", "D"]).unwrap();
        let report = apply_strategy(
            &mut plan,
            &CheckpointStrategy::Manual {
                store: vec!["A1".into(), "A2".into()],
            },
            &symbols(8),
        )
        .unwrap();
        assert!(report.stored.contains(&"A1".to_string()));
        assert!(report.recomputed.contains(&"A0".to_string()));
    }
}
